//! The two protocol runtimes: deterministic lockstep and threaded
//! message-passing.

use crossbeam::channel::{unbounded, Receiver, Sender};

use ufc_core::repair::assemble_point;
use ufc_core::{AdmgSettings, AdmgState, CoreError, Strategy};
use ufc_model::{evaluate, OperatingPoint, UfcBreakdown, UfcInstance};

use crate::loss::{LossConfig, LossyChannel};
use crate::message::Message;
use crate::node::{DatacenterNode, FrontendNode, NodeResiduals};
use crate::stats::{estimated_wan_seconds, MessageStats};

/// Which execution engine runs the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runtime {
    /// Single-threaded round engine — deterministic and bit-identical to
    /// the in-memory `AdmgSolver`.
    Lockstep,
    /// One OS thread per node over crossbeam channels.
    Threaded,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistRunReport {
    /// Exactly feasible operating point (same polish as the in-memory
    /// solver).
    pub point: OperatingPoint,
    /// UFC breakdown at the point.
    pub breakdown: UfcBreakdown,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual tests passed before the iteration cap.
    pub converged: bool,
    /// Message/byte accounting.
    pub stats: MessageStats,
    /// Estimated wall-clock of a real WAN deployment (see
    /// [`estimated_wan_seconds`]); under a lossy channel this includes the
    /// retransmission stalls.
    pub estimated_wan_seconds: f64,
    /// Failed message attempts (0 unless run through
    /// [`DistributedAdmg::run_lossy`]).
    pub retransmissions: usize,
}

/// Facade: runs the distributed ADM-G protocol on an instance.
#[derive(Debug, Clone, Copy)]
pub struct DistributedAdmg {
    settings: AdmgSettings,
}

impl DistributedAdmg {
    /// Creates a runner with the given ADM-G hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if the settings are invalid.
    #[must_use]
    pub fn new(settings: AdmgSettings) -> Self {
        settings.validate();
        DistributedAdmg { settings }
    }

    /// Runs the protocol to convergence (or the iteration cap).
    ///
    /// # Errors
    ///
    /// * [`CoreError::Unsupported`] for an infeasible `FuelCellOnly`
    ///   restriction.
    /// * [`CoreError::Model`] if the final point cannot be polished or
    ///   evaluated.
    pub fn run(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        runtime: Runtime,
    ) -> Result<DistRunReport, CoreError> {
        let active_mu = strategy != Strategy::GridOnly;
        let active_nu = strategy != Strategy::FuelCellOnly;
        if !active_nu && !instance.fuel_cells_cover_peak() {
            return Err(CoreError::Unsupported {
                context: "FuelCellOnly requires fuel-cell capacity covering peak demand"
                    .to_owned(),
            });
        }
        match runtime {
            Runtime::Lockstep => self.run_lockstep(instance, active_mu, active_nu, None),
            Runtime::Threaded => self.run_threaded(instance, active_mu, active_nu),
        }
    }

    /// Runs the protocol (lockstep engine) over a lossy channel with
    /// retransmission. The iterates — and therefore the solution — are
    /// identical to a lossless run; only the traffic and the estimated WAN
    /// wall-clock grow (see [`crate::loss`]).
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run`].
    pub fn run_lossy(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        loss: LossConfig,
    ) -> Result<DistRunReport, CoreError> {
        let active_mu = strategy != Strategy::GridOnly;
        let active_nu = strategy != Strategy::FuelCellOnly;
        if !active_nu && !instance.fuel_cells_cover_peak() {
            return Err(CoreError::Unsupported {
                context: "FuelCellOnly requires fuel-cell capacity covering peak demand"
                    .to_owned(),
            });
        }
        self.run_lockstep(instance, active_mu, active_nu, Some(loss))
    }

    fn run_lockstep(
        &self,
        instance: &UfcInstance,
        active_mu: bool,
        active_nu: bool,
        loss: Option<LossConfig>,
    ) -> Result<DistRunReport, CoreError> {
        let m = instance.m_frontends();
        let n = instance.n_datacenters();
        let mut frontends: Vec<FrontendNode> = (0..m)
            .map(|i| FrontendNode::new(instance, i, &self.settings))
            .collect();
        let mut datacenters: Vec<DatacenterNode> = (0..n)
            .map(|j| DatacenterNode::new(instance, j, &self.settings, active_mu, active_nu))
            .collect();

        let tolerances = self.settings.scaled_tolerances(instance);
        let mut stats = MessageStats::default();
        let mut converged = false;
        let mut iterations = 0;
        let mut channel = loss.map(LossyChannel::new);
        // Phase-stall accounting: each synchronous phase waits for its
        // slowest message, i.e. the maximum attempt count within the phase.
        let mut stalled_phases = 0.0f64;

        for _ in 0..self.settings.max_iterations {
            iterations += 1;
            // Step 1: front-ends predict and scatter λ̃.
            let rows: Vec<Vec<f64>> = frontends
                .iter_mut()
                .map(FrontendNode::predict_lambda)
                .collect();
            let mut phase_max = 1usize;
            for (i, row) in rows.iter().enumerate() {
                for (j, &value) in row.iter().enumerate() {
                    let msg = Message::LambdaTilde {
                        frontend: i,
                        datacenter: j,
                        value,
                    };
                    stats.record(&msg);
                    if let Some(ch) = channel.as_mut() {
                        let attempts = ch.send();
                        stats.total_bytes += (attempts - 1) * msg.wire_bytes();
                        phase_max = phase_max.max(attempts);
                    }
                }
            }
            stalled_phases += phase_max as f64;

            // Steps 2–4: datacenters process their columns, gather ã.
            let mut dc_residuals = Vec::with_capacity(n);
            let mut a_cols: Vec<Vec<f64>> = Vec::with_capacity(n);
            let mut phase_max = 1usize;
            for (j, dc) in datacenters.iter_mut().enumerate() {
                let col: Vec<f64> = (0..m).map(|i| rows[i][j]).collect();
                let step = dc.process(&col);
                for (i, &value) in step.a_tilde.iter().enumerate() {
                    let msg = Message::ATilde {
                        frontend: i,
                        datacenter: j,
                        value,
                    };
                    stats.record(&msg);
                    if let Some(ch) = channel.as_mut() {
                        let attempts = ch.send();
                        stats.total_bytes += (attempts - 1) * msg.wire_bytes();
                        phase_max = phase_max.max(attempts);
                    }
                }
                dc_residuals.push(step.residuals);
                a_cols.push(step.a_tilde);
            }
            stalled_phases += phase_max as f64;

            // Step 5: front-ends correct from ã.
            let mut fe_residuals = Vec::with_capacity(m);
            for (i, fe) in frontends.iter_mut().enumerate() {
                let a_row: Vec<f64> = (0..n).map(|j| a_cols[j][i]).collect();
                fe_residuals.push(fe.receive_a_and_correct(&a_row));
            }

            // Residual reduction + control broadcast.
            let stop = reduce_and_broadcast(
                &self.settings,
                tolerances,
                &fe_residuals,
                &dc_residuals,
                &mut stats,
                m + n,
            );
            if stop {
                converged = true;
                break;
            }
        }

        let (point, breakdown) = finish(
            instance,
            frontends.iter().map(|f| f.lambda().to_vec()).collect(),
            datacenters.iter().map(DatacenterNode::mu).collect(),
            !active_nu,
        )?;
        // Lossless: 4 phases per iteration. Lossy: the two data phases
        // stall for their slowest message; the two control phases are
        // assumed reliable (coordinator links).
        let l_max = instance
            .latency_s
            .iter()
            .flatten()
            .cloned()
            .fold(0.0f64, f64::max);
        let estimated = if channel.is_some() {
            (stalled_phases + 2.0 * iterations as f64) * l_max
        } else {
            estimated_wan_seconds(iterations, &instance.latency_s)
        };
        Ok(DistRunReport {
            point,
            breakdown,
            iterations,
            converged,
            stats,
            estimated_wan_seconds: estimated,
            retransmissions: channel.map_or(0, |ch| ch.retransmissions),
        })
    }

    fn run_threaded(
        &self,
        instance: &UfcInstance,
        active_mu: bool,
        active_nu: bool,
    ) -> Result<DistRunReport, CoreError> {
        let m = instance.m_frontends();
        let n = instance.n_datacenters();

        enum FeCmd {
            Predict,
            Correct(Vec<f64>),
            Finish,
        }
        enum DcCmd {
            Process(Vec<f64>),
            Finish,
        }
        enum Reply {
            Lambda(usize, Vec<f64>),
            FeResidual(usize, NodeResiduals),
            DcStep(usize, Vec<f64>, NodeResiduals),
            FeFinal(usize, Vec<f64>),
            DcFinal(usize, f64),
        }

        let (reply_tx, reply_rx): (Sender<Reply>, Receiver<Reply>) = unbounded();
        let mut fe_tx = Vec::with_capacity(m);
        let mut dc_tx = Vec::with_capacity(n);
        let mut handles = Vec::new();

        for i in 0..m {
            let (tx, rx): (Sender<FeCmd>, Receiver<FeCmd>) = unbounded();
            fe_tx.push(tx);
            let mut node = FrontendNode::new(instance, i, &self.settings);
            let out = reply_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        FeCmd::Predict => {
                            let row = node.predict_lambda();
                            out.send(Reply::Lambda(i, row)).expect("coordinator gone");
                        }
                        FeCmd::Correct(a_row) => {
                            let res = node.receive_a_and_correct(&a_row);
                            out.send(Reply::FeResidual(i, res)).expect("coordinator gone");
                        }
                        FeCmd::Finish => {
                            out.send(Reply::FeFinal(i, node.lambda().to_vec()))
                                .expect("coordinator gone");
                            break;
                        }
                    }
                }
            }));
        }
        for j in 0..n {
            let (tx, rx): (Sender<DcCmd>, Receiver<DcCmd>) = unbounded();
            dc_tx.push(tx);
            let mut node = DatacenterNode::new(instance, j, &self.settings, active_mu, active_nu);
            let out = reply_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        DcCmd::Process(col) => {
                            let step = node.process(&col);
                            out.send(Reply::DcStep(j, step.a_tilde, step.residuals))
                                .expect("coordinator gone");
                        }
                        DcCmd::Finish => {
                            out.send(Reply::DcFinal(j, node.mu())).expect("coordinator gone");
                            break;
                        }
                    }
                }
            }));
        }
        drop(reply_tx);

        let tolerances = self.settings.scaled_tolerances(instance);
        let mut stats = MessageStats::default();
        let mut converged = false;
        let mut iterations = 0;

        for _ in 0..self.settings.max_iterations {
            iterations += 1;
            for tx in &fe_tx {
                tx.send(FeCmd::Predict).expect("front-end thread gone");
            }
            let mut rows = vec![Vec::new(); m];
            for _ in 0..m {
                match reply_rx.recv().expect("front-end reply lost") {
                    Reply::Lambda(i, row) => {
                        for (j, &value) in row.iter().enumerate() {
                            stats.record(&Message::LambdaTilde {
                                frontend: i,
                                datacenter: j,
                                value,
                            });
                        }
                        rows[i] = row;
                    }
                    _ => unreachable!("protocol violation: expected Lambda"),
                }
            }
            for (j, tx) in dc_tx.iter().enumerate() {
                let col: Vec<f64> = (0..m).map(|i| rows[i][j]).collect();
                tx.send(DcCmd::Process(col)).expect("datacenter thread gone");
            }
            let mut a_cols = vec![Vec::new(); n];
            let mut dc_residuals = vec![NodeResiduals::default(); n];
            for _ in 0..n {
                match reply_rx.recv().expect("datacenter reply lost") {
                    Reply::DcStep(j, a_tilde, res) => {
                        for (i, &value) in a_tilde.iter().enumerate() {
                            stats.record(&Message::ATilde {
                                frontend: i,
                                datacenter: j,
                                value,
                            });
                        }
                        a_cols[j] = a_tilde;
                        dc_residuals[j] = res;
                    }
                    _ => unreachable!("protocol violation: expected DcStep"),
                }
            }
            for (i, tx) in fe_tx.iter().enumerate() {
                let a_row: Vec<f64> = (0..n).map(|j| a_cols[j][i]).collect();
                tx.send(FeCmd::Correct(a_row)).expect("front-end thread gone");
            }
            let mut fe_residuals = vec![NodeResiduals::default(); m];
            for _ in 0..m {
                match reply_rx.recv().expect("front-end reply lost") {
                    Reply::FeResidual(i, res) => fe_residuals[i] = res,
                    _ => unreachable!("protocol violation: expected FeResidual"),
                }
            }
            let stop = reduce_and_broadcast(
                &self.settings,
                tolerances,
                &fe_residuals,
                &dc_residuals,
                &mut stats,
                m + n,
            );
            if stop {
                converged = true;
                break;
            }
        }

        for tx in &fe_tx {
            tx.send(FeCmd::Finish).expect("front-end thread gone");
        }
        for tx in &dc_tx {
            tx.send(DcCmd::Finish).expect("datacenter thread gone");
        }
        let mut lambda = vec![Vec::new(); m];
        let mut mu = vec![0.0; n];
        for _ in 0..m + n {
            match reply_rx.recv().expect("final reply lost") {
                Reply::FeFinal(i, row) => lambda[i] = row,
                Reply::DcFinal(j, v) => mu[j] = v,
                _ => unreachable!("protocol violation: expected finals"),
            }
        }
        for h in handles {
            h.join().expect("node thread panicked");
        }

        let (point, breakdown) = finish(instance, lambda, mu, !active_nu)?;
        Ok(DistRunReport {
            point,
            breakdown,
            iterations,
            converged,
            stats,
            estimated_wan_seconds: estimated_wan_seconds(iterations, &instance.latency_s),
            retransmissions: 0,
        })
    }
}

/// Max-reduces the per-node residuals, accounts the report/control traffic,
/// and returns the stop decision.
fn reduce_and_broadcast(
    settings: &AdmgSettings,
    tolerances: (f64, f64, f64),
    fe: &[NodeResiduals],
    dc: &[NodeResiduals],
    stats: &mut MessageStats,
    node_count: usize,
) -> bool {
    let mut link = 0.0f64;
    let mut balance = 0.0f64;
    let mut movement = 0.0f64;
    for (node, r) in fe.iter().chain(dc).enumerate() {
        stats.record(&Message::ResidualReport {
            node,
            link: r.link,
            balance: r.balance,
            movement: r.movement,
        });
        link = link.max(r.link);
        balance = balance.max(r.balance);
        movement = movement.max(r.movement);
    }
    let (link_tol, balance_tol, dual_tol) = tolerances;
    let stop =
        link <= link_tol && balance <= balance_tol && settings.rho * movement <= dual_tol;
    for _ in 0..node_count {
        stats.record(&Message::Control { stop });
    }
    stop
}

/// Polishes the gathered iterate into a feasible point and evaluates it
/// (same repair as the in-memory solver).
fn finish(
    instance: &UfcInstance,
    lambda_rows: Vec<Vec<f64>>,
    mu: Vec<f64>,
    fuel_cell_only: bool,
) -> Result<(OperatingPoint, UfcBreakdown), CoreError> {
    let mut state = AdmgState::zeros(instance);
    for (i, row) in lambda_rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            let k = state.idx(i, j);
            state.lambda[k] = v;
        }
    }
    state.mu = mu;
    let point = assemble_point(instance, &state, fuel_cell_only)?;
    let breakdown = evaluate(instance, &point)?;
    Ok((point, breakdown))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn lockstep_converges_and_counts_messages() {
        let inst = tiny();
        let report = DistributedAdmg::new(AdmgSettings::default())
            .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
            .unwrap();
        assert!(report.converged);
        // 2·M·N data messages per iteration.
        assert_eq!(report.stats.data_messages, 2 * 2 * 2 * report.iterations);
        // (M+N) reports + (M+N) controls per iteration.
        assert_eq!(report.stats.control_messages, 2 * 4 * report.iterations);
        assert!(report.estimated_wan_seconds > 0.0);
        assert!(report.point.feasibility_residual(&inst) < 1e-8);
    }

    #[test]
    fn threaded_matches_lockstep() {
        let inst = tiny();
        let runner = DistributedAdmg::new(AdmgSettings::default());
        let lockstep = runner.run(&inst, Strategy::Hybrid, Runtime::Lockstep).unwrap();
        let threaded = runner.run(&inst, Strategy::Hybrid, Runtime::Threaded).unwrap();
        assert_eq!(lockstep.iterations, threaded.iterations);
        assert!(
            (lockstep.breakdown.ufc() - threaded.breakdown.ufc()).abs() < 1e-9,
            "lockstep {} vs threaded {}",
            lockstep.breakdown.ufc(),
            threaded.breakdown.ufc()
        );
        assert_eq!(lockstep.stats, threaded.stats);
    }

    #[test]
    fn strategies_run_distributed() {
        let inst = tiny();
        let runner = DistributedAdmg::new(AdmgSettings::default());
        let grid = runner.run(&inst, Strategy::GridOnly, Runtime::Lockstep).unwrap();
        assert!(grid.point.mu.iter().all(|&v| v == 0.0));
        let fc = runner.run(&inst, Strategy::FuelCellOnly, Runtime::Lockstep).unwrap();
        assert!(fc.point.nu.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn fuel_cell_only_validation() {
        let mut inst = tiny();
        inst.mu_max = vec![0.0, 0.0];
        let err = DistributedAdmg::new(AdmgSettings::default())
            .run(&inst, Strategy::FuelCellOnly, Runtime::Lockstep)
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }));
    }
}
