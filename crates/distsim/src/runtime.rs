//! The public runtime facade: picks an execution engine and packages the
//! result.
//!
//! Both engines — the deterministic lockstep rounds
//! (`crate::engine_lockstep`) and the supervised threaded message-passing
//! coordinator (`crate::engine_threaded`) — implement
//! [`ufc_core::engine::Transport`] and are sequenced by the single
//! transport-agnostic driver `ufc_core::engine::drive`, so the prediction
//! order, correction step, and stop rule exist in exactly one place. The
//! fault-injected variants are not separate code paths: a clean run is the
//! [`FaultPlan::none`] degenerate case of the same engines.

use std::path::PathBuf;

use ufc_core::engine::IterationObserver;
use ufc_core::telemetry::{IntegrityCounters, RunTelemetry};
use ufc_core::{AdmgSettings, CoreError, Strategy};
use ufc_model::{OperatingPoint, UfcBreakdown, UfcInstance};

use crate::engine_lockstep::run_lockstep;
use crate::engine_socket::run_socket_engine;
use crate::engine_threaded::run_supervised;
use crate::fault::{CorruptionConfig, FaultPlan, FaultReport};
use crate::loss::LossConfig;
use crate::stats::MessageStats;
use crate::wire::{AuthKey, BindConfig};

/// Configuration of the multi-process socket engine: where the worker
/// binary lives, how many OS processes to spread the nodes over, which
/// address the coordinator listens on, and (for non-loopback binds) the
/// shared authentication key.
#[derive(Debug, Clone)]
pub struct SocketOptions {
    /// Path to the `ufc-node` worker binary (built from
    /// `experiments/src/bin/ufc-node.rs`).
    pub worker: PathBuf,
    /// Worker process count. `0` (the default) means one process per node
    /// (`M + N`); smaller counts co-host nodes round-robin. Process-level
    /// fault injection (kills, partitions) requires the full one-per-node
    /// split so a `SIGKILL` hits exactly the scripted node.
    pub processes: usize,
    /// Listen/advertise addresses. Defaults to an ephemeral loopback port;
    /// a non-loopback listen address is refused unless [`Self::auth`] is
    /// set (see DESIGN.md §17).
    pub bind: BindConfig,
    /// Shared handshake key. When set, every connection must pass the
    /// challenge–response MAC exchange before any iteration state is
    /// exchanged; plain `Hello` handshakes (a downgrade) are rejected.
    pub auth: Option<AuthKey>,
}

impl SocketOptions {
    /// Options for the given worker binary with the default one process
    /// per node on an ephemeral loopback port, unauthenticated.
    pub fn new(worker: impl Into<PathBuf>) -> Self {
        SocketOptions {
            worker: worker.into(),
            processes: 0,
            bind: BindConfig::loopback(),
            auth: None,
        }
    }

    /// Overrides the worker process count.
    #[must_use]
    pub fn with_processes(mut self, processes: usize) -> Self {
        self.processes = processes;
        self
    }

    /// Overrides the listen/advertise addresses.
    #[must_use]
    pub fn with_bind(mut self, bind: BindConfig) -> Self {
        self.bind = bind;
        self
    }

    /// Enables the authenticated challenge–response handshake with the
    /// given shared key.
    #[must_use]
    pub fn with_auth(mut self, key: AuthKey) -> Self {
        self.auth = Some(key);
        self
    }
}

/// Which execution engine runs the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runtime {
    /// Single-threaded round engine — deterministic and bit-identical to
    /// the in-memory `AdmgSolver`.
    Lockstep,
    /// One OS thread per node over std::sync::mpsc channels, driven by the
    /// supervising coordinator.
    Threaded,
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistRunReport {
    /// Exactly feasible operating point (same polish as the in-memory
    /// solver).
    pub point: OperatingPoint,
    /// UFC breakdown at the point.
    pub breakdown: UfcBreakdown,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the residual tests passed before the iteration cap.
    pub converged: bool,
    /// Message/byte accounting.
    pub stats: MessageStats,
    /// Estimated wall-clock of a real WAN deployment (see
    /// [`crate::stats::estimated_wan_seconds`]); under a lossy channel or a
    /// fault plan this includes the retransmission/recovery stalls.
    pub estimated_wan_seconds: f64,
    /// Failed message attempts (0 unless run through
    /// [`DistributedAdmg::run_lossy`]).
    pub retransmissions: usize,
    /// Fault accounting — `Some` for runs driven by a non-trivial
    /// [`FaultPlan`] (see [`DistributedAdmg::run_faulty`]).
    pub fault: Option<FaultReport>,
    /// Payload-integrity accounting — `Some` when the run injected
    /// corruption or verified checksums (see
    /// [`DistributedAdmg::run_corrupt`]).
    pub integrity: Option<IntegrityCounters>,
    /// Run telemetry (phase timings plus solver/traffic/fault counters),
    /// present iff [`AdmgSettings::telemetry`] was enabled. Strictly
    /// observational: the iterate stream is bit-identical whether or not
    /// this is collected.
    pub telemetry: Option<RunTelemetry>,
}

/// Facade: runs the distributed ADM-G protocol on an instance.
#[derive(Debug, Clone, Copy)]
pub struct DistributedAdmg {
    settings: AdmgSettings,
}

impl DistributedAdmg {
    /// Creates a runner with the given ADM-G hyper-parameters.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if the settings are invalid.
    pub fn try_new(settings: AdmgSettings) -> Result<Self, CoreError> {
        settings.check()?;
        Ok(DistributedAdmg { settings })
    }

    /// Creates a runner, panicking on invalid settings (thin wrapper over
    /// [`DistributedAdmg::try_new`]).
    ///
    /// # Panics
    ///
    /// Panics if the settings are invalid.
    #[must_use]
    pub fn new(settings: AdmgSettings) -> Self {
        match Self::try_new(settings) {
            Ok(runner) => runner,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the protocol to convergence (or the iteration cap).
    ///
    /// # Errors
    ///
    /// * [`CoreError::Unsupported`] for an infeasible `FuelCellOnly`
    ///   restriction.
    /// * [`CoreError::Model`] if the final point cannot be polished or
    ///   evaluated.
    /// * [`CoreError::NodeFailure`] if a worker thread dies unexpectedly
    ///   (threaded runtime).
    pub fn run(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        runtime: Runtime,
    ) -> Result<DistRunReport, CoreError> {
        self.run_observed(instance, strategy, runtime, &mut ())
    }

    /// Like [`DistributedAdmg::run`], streaming per-iteration (and, if the
    /// observer asks for them, per-phase) events to a caller-supplied
    /// observer — e.g. a `ufc_core::telemetry::JsonlSink` writing a trace.
    /// The observer never affects the iterate stream.
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run`].
    pub fn run_observed(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        runtime: Runtime,
        observer: &mut dyn IterationObserver,
    ) -> Result<DistRunReport, CoreError> {
        let (active_mu, active_nu) = strategy.block_activation(instance)?;
        match runtime {
            Runtime::Lockstep => {
                let mut report = run_lockstep(
                    &self.settings,
                    instance,
                    active_mu,
                    active_nu,
                    FaultPlan::none(),
                    None,
                    observer,
                )?;
                report.fault = None;
                Ok(report)
            }
            Runtime::Threaded => run_supervised(
                &self.settings,
                instance,
                active_mu,
                active_nu,
                FaultPlan::none(),
                observer,
            ),
        }
    }

    /// Runs the protocol on the multi-process socket engine: every node in
    /// its own OS process (per [`SocketOptions::processes`]) speaking the
    /// checksummed wire framing over loopback TCP. The clean path is
    /// bit-identical to the lockstep engine (asserted in
    /// `experiments/tests/engine_equivalence.rs`).
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run`], plus [`CoreError::NodeFailure`]
    /// when a worker process cannot be spawned or never completes the
    /// handshake.
    pub fn run_sockets(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        options: &SocketOptions,
    ) -> Result<DistRunReport, CoreError> {
        self.run_sockets_observed(instance, strategy, options, &mut ())
    }

    /// Like [`DistributedAdmg::run_sockets`], streaming events to a
    /// caller-supplied observer.
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run_sockets`].
    pub fn run_sockets_observed(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        options: &SocketOptions,
        observer: &mut dyn IterationObserver,
    ) -> Result<DistRunReport, CoreError> {
        let (active_mu, active_nu) = strategy.block_activation(instance)?;
        run_socket_engine(
            &self.settings,
            instance,
            active_mu,
            active_nu,
            FaultPlan::none(),
            options,
            observer,
        )
    }

    /// Runs the socket engine under a deterministic [`FaultPlan`] whose
    /// faults are delivered by the operating system: a scripted crash is a
    /// real `SIGKILL` to the live worker process mid-iteration, and a
    /// partition window tears down the affected TCP connections (the
    /// workers reconnect with backoff when it heals). Recovery is the same
    /// checkpoint-restart protocol as the threaded engine's, and a run
    /// whose every crash recovers reproduces the clean iterates exactly. A
    /// clean fault-free lockstep run is performed first so the returned
    /// [`FaultReport::ufc_delta_vs_clean`] measures the cost of running
    /// degraded.
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run_faulty`], plus
    /// [`CoreError::InvalidConfig`] when the plan injects process-level
    /// faults without the one-process-per-node split.
    pub fn run_sockets_faulty(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        options: &SocketOptions,
        plan: FaultPlan,
    ) -> Result<DistRunReport, CoreError> {
        self.run_sockets_faulty_observed(instance, strategy, options, plan, &mut ())
    }

    /// Like [`DistributedAdmg::run_sockets_faulty`], streaming events from
    /// the faulty run to a caller-supplied observer (the preliminary clean
    /// lockstep run is not observed).
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run_sockets_faulty`].
    pub fn run_sockets_faulty_observed(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        options: &SocketOptions,
        plan: FaultPlan,
        observer: &mut dyn IterationObserver,
    ) -> Result<DistRunReport, CoreError> {
        plan.check()?;
        let (active_mu, active_nu) = strategy.block_activation(instance)?;
        // The clean baseline run is support machinery, not the run the
        // caller asked to watch: no observer, no telemetry.
        let clean = run_lockstep(
            &self.settings.with_telemetry(false),
            instance,
            active_mu,
            active_nu,
            FaultPlan::none(),
            None,
            &mut (),
        )?;
        let mut report = run_socket_engine(
            &self.settings,
            instance,
            active_mu,
            active_nu,
            plan,
            options,
            observer,
        )?;
        let delta = report.breakdown.ufc() - clean.breakdown.ufc();
        if let Some(fault) = report.fault.as_mut() {
            fault.ufc_delta_vs_clean = delta;
        }
        Ok(report)
    }

    /// Runs the socket engine under seeded payload corruption applied to
    /// the actual TCP traffic. Value-level kinds (bit flips, sign flips,
    /// NaN/∞, magnitude scaling — [`CorruptionConfig::kind`] `None` or a
    /// value kind) draw in the exact order of the in-process engines, so a
    /// verified run reproduces [`DistributedAdmg::run_corrupt`]
    /// bit-for-bit. The wire-level kinds
    /// ([`crate::CorruptionKind::FrameTruncate`] /
    /// [`crate::CorruptionKind::FrameDuplicate`] /
    /// [`crate::CorruptionKind::FrameReorder`]) instead mangle whole wire
    /// frames in the socket I/O pumps — truncations are detected by the
    /// framing CRC and repaired over a `Nak`/clean-resend exchange, while
    /// duplicates and reorders are absorbed by the existing dedup and
    /// order-insensitive gather — and require the one-process-per-node
    /// split.
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run_corrupt`], plus
    /// [`CoreError::InvalidConfig`] when a wire-level kind is combined
    /// with co-hosted nodes.
    pub fn run_sockets_corrupt(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        options: &SocketOptions,
        corruption: CorruptionConfig,
    ) -> Result<DistRunReport, CoreError> {
        self.run_sockets_corrupt_observed(instance, strategy, options, corruption, &mut ())
    }

    /// Like [`DistributedAdmg::run_sockets_corrupt`], streaming events to
    /// a caller-supplied observer.
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run_sockets_corrupt`].
    pub fn run_sockets_corrupt_observed(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        options: &SocketOptions,
        corruption: CorruptionConfig,
        observer: &mut dyn IterationObserver,
    ) -> Result<DistRunReport, CoreError> {
        let (active_mu, active_nu) = strategy.block_activation(instance)?;
        let mut plan = FaultPlan::none().with_corruption(corruption);
        if self.settings.divergence_rollback {
            // Same policy as run_corrupt: rollback needs checkpoints.
            plan.checkpoint_interval = 4;
        }
        let mut report = run_socket_engine(
            &self.settings,
            instance,
            active_mu,
            active_nu,
            plan,
            options,
            observer,
        )?;
        if let Some(fault) = report.fault.as_mut() {
            fault.ufc_delta_vs_clean = 0.0;
        }
        Ok(report)
    }

    /// Runs the protocol (lockstep engine) over a lossy channel with
    /// retransmission. The iterates — and therefore the solution — are
    /// identical to a lossless run; only the traffic and the estimated WAN
    /// wall-clock grow (see [`crate::loss`]).
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run`].
    pub fn run_lossy(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        loss: LossConfig,
    ) -> Result<DistRunReport, CoreError> {
        let (active_mu, active_nu) = strategy.block_activation(instance)?;
        let mut report = run_lockstep(
            &self.settings,
            instance,
            active_mu,
            active_nu,
            FaultPlan::none(),
            Some(loss),
            &mut (),
        )?;
        report.fault = None;
        Ok(report)
    }

    /// Runs the protocol under seeded link-level payload corruption (see
    /// [`crate::fault::CorruptionConfig`]). With
    /// [`AdmgSettings::verify_checksums`] on, every data payload travels in
    /// a CRC32-checksummed frame: a corrupted copy is detected on receive
    /// and retransmitted (bounded by the config's budget), so the iterate
    /// stream — and the solution — match a clean run exactly. With
    /// verification off, corrupted payloads are *delivered*; the driver's
    /// divergence gate is then the only line of defense, and the run may
    /// fail with a typed error instead of converging. When
    /// [`AdmgSettings::divergence_rollback`] is on, periodic checkpoints
    /// are taken so a tripped gate can restore the last finite state
    /// instead of failing.
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run`], plus
    /// [`CoreError::CorruptPayload`] when the retransmit budget is
    /// exhausted and [`CoreError::Divergence`] when an undetected
    /// corruption poisons the iterate stream.
    pub fn run_corrupt(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        runtime: Runtime,
        corruption: CorruptionConfig,
    ) -> Result<DistRunReport, CoreError> {
        self.run_corrupt_observed(instance, strategy, runtime, corruption, &mut ())
    }

    /// Like [`DistributedAdmg::run_corrupt`], streaming events to a
    /// caller-supplied observer.
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run_corrupt`].
    pub fn run_corrupt_observed(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        runtime: Runtime,
        corruption: CorruptionConfig,
        observer: &mut dyn IterationObserver,
    ) -> Result<DistRunReport, CoreError> {
        if corruption.kind.is_some_and(|k| k.is_wire_level()) {
            return Err(CoreError::invalid_config(
                "wire-level corruption kinds (frame truncate/duplicate/reorder) need real \
                 TCP frames; use run_sockets_corrupt",
            ));
        }
        let (active_mu, active_nu) = strategy.block_activation(instance)?;
        let mut plan = FaultPlan::none().with_corruption(corruption);
        if self.settings.divergence_rollback {
            // Rollback needs something to roll back to: checkpoint every
            // few iterations so a tripped gate finds a recent finite state.
            plan.checkpoint_interval = 4;
        }
        let mut report = match runtime {
            Runtime::Lockstep => {
                let mut report = run_lockstep(
                    &self.settings,
                    instance,
                    active_mu,
                    active_nu,
                    plan,
                    None,
                    observer,
                )?;
                // Corruption is link-level, not a node-fault scenario: the
                // fault report only stays when checkpointing actually ran.
                if report
                    .fault
                    .as_ref()
                    .is_some_and(|f| f.checkpoints_taken == 0)
                {
                    report.fault = None;
                }
                report
            }
            Runtime::Threaded => run_supervised(
                &self.settings,
                instance,
                active_mu,
                active_nu,
                plan,
                observer,
            )?,
        };
        if let Some(fault) = report.fault.as_mut() {
            fault.ufc_delta_vs_clean = 0.0;
        }
        Ok(report)
    }

    /// Runs the protocol under a deterministic [`FaultPlan`]: scripted
    /// crash-stop failures (with checkpoint-restart recovery), stragglers,
    /// and partition windows. A clean fault-free lockstep run is performed
    /// first so the returned [`FaultReport::ufc_delta_vs_clean`] measures
    /// the cost of running degraded.
    ///
    /// Both runtimes make identical recovery/eviction decisions; a run
    /// whose every crash recovers reproduces the clean iterates exactly
    /// (checkpoint-restart plus input replay is bit-faithful).
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run`], plus [`CoreError::InvalidConfig`]
    /// for an inconsistent plan and [`CoreError::NodeFailure`] for
    /// unrecoverable failures (a permanently dead front-end, or the last
    /// active datacenter).
    pub fn run_faulty(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        runtime: Runtime,
        plan: FaultPlan,
    ) -> Result<DistRunReport, CoreError> {
        self.run_faulty_observed(instance, strategy, runtime, plan, &mut ())
    }

    /// Like [`DistributedAdmg::run_faulty`], streaming events from the
    /// faulty run to a caller-supplied observer (the preliminary clean
    /// lockstep run is not observed).
    ///
    /// # Errors
    ///
    /// As for [`DistributedAdmg::run_faulty`].
    pub fn run_faulty_observed(
        &self,
        instance: &UfcInstance,
        strategy: Strategy,
        runtime: Runtime,
        plan: FaultPlan,
        observer: &mut dyn IterationObserver,
    ) -> Result<DistRunReport, CoreError> {
        plan.check()?;
        let (active_mu, active_nu) = strategy.block_activation(instance)?;
        // The clean baseline run is support machinery, not the run the
        // caller asked to watch: no observer, no telemetry.
        let clean = run_lockstep(
            &self.settings.with_telemetry(false),
            instance,
            active_mu,
            active_nu,
            FaultPlan::none(),
            None,
            &mut (),
        )?;
        let mut report = match runtime {
            Runtime::Lockstep => run_lockstep(
                &self.settings,
                instance,
                active_mu,
                active_nu,
                plan,
                None,
                observer,
            )?,
            Runtime::Threaded => run_supervised(
                &self.settings,
                instance,
                active_mu,
                active_nu,
                plan,
                observer,
            )?,
        };
        let delta = report.breakdown.ufc() - clean.breakdown.ufc();
        if let Some(fault) = report.fault.as_mut() {
            fault.ufc_delta_vs_clean = delta;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn lockstep_converges_and_counts_messages() {
        let inst = tiny();
        let report = DistributedAdmg::new(AdmgSettings::default())
            .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
            .unwrap();
        assert!(report.converged);
        // 2·M·N data messages per iteration.
        assert_eq!(report.stats.data_messages, 2 * 2 * 2 * report.iterations);
        // (M+N) reports + (M+N) controls per iteration.
        assert_eq!(report.stats.control_messages, 2 * 4 * report.iterations);
        assert!(report.estimated_wan_seconds > 0.0);
        assert!(report.point.feasibility_residual(&inst) < 1e-8);
        assert!(report.fault.is_none());
    }

    #[test]
    fn threaded_matches_lockstep() {
        let inst = tiny();
        let runner = DistributedAdmg::new(AdmgSettings::default());
        let lockstep = runner
            .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
            .unwrap();
        let threaded = runner
            .run(&inst, Strategy::Hybrid, Runtime::Threaded)
            .unwrap();
        assert_eq!(lockstep.iterations, threaded.iterations);
        assert!(
            (lockstep.breakdown.ufc() - threaded.breakdown.ufc()).abs() < 1e-9,
            "lockstep {} vs threaded {}",
            lockstep.breakdown.ufc(),
            threaded.breakdown.ufc()
        );
        assert_eq!(lockstep.stats, threaded.stats);
        assert!(threaded.fault.is_none());
    }

    #[test]
    fn strategies_run_distributed() {
        let inst = tiny();
        let runner = DistributedAdmg::new(AdmgSettings::default());
        let grid = runner
            .run(&inst, Strategy::GridOnly, Runtime::Lockstep)
            .unwrap();
        assert!(grid.point.mu.iter().all(|&v| v == 0.0));
        let fc = runner
            .run(&inst, Strategy::FuelCellOnly, Runtime::Lockstep)
            .unwrap();
        assert!(fc.point.nu.iter().all(|&v| v.abs() < 1e-9));
    }

    #[test]
    fn fuel_cell_only_validation() {
        let mut inst = tiny();
        inst.mu_max = vec![0.0, 0.0];
        let err = DistributedAdmg::new(AdmgSettings::default())
            .run(&inst, Strategy::FuelCellOnly, Runtime::Lockstep)
            .unwrap_err();
        assert!(matches!(err, CoreError::Unsupported { .. }));
    }

    #[test]
    fn try_new_rejects_bad_settings() {
        let settings = AdmgSettings {
            rho: -1.0,
            ..AdmgSettings::default()
        };
        assert!(matches!(
            DistributedAdmg::try_new(settings),
            Err(CoreError::InvalidConfig { .. })
        ));
    }
}
