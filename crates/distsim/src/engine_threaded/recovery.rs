//! Crash recovery and checkpointing for the supervised threaded engine.
//!
//! These `Supervisor` methods implement the coordinator side of the
//! checkpoint-restart protocol: snapshot rounds, respawn-and-replay from
//! the last checkpoint, datacenter eviction, and the final iterate
//! gather. They live in a child module purely to keep the engine file
//! focused on the `Transport` phase sequence; the decision machine they
//! serve is `crate::fault::FaultTracker`.

use std::collections::HashSet;

use ufc_core::CoreError;

use crate::coordinator::{column_of, replay_entries, row_of};
use crate::fault::NodeId;
use crate::message::Message;
use crate::node::{DatacenterNode, FrontendNode};
use crate::snapshot::{DatacenterSnapshot, FrontendSnapshot};
use crate::supervision::{gather_phase, DcCmd, FeCmd, Reply};

use super::Supervisor;

impl Supervisor<'_> {
    /// Respawns front-end `i` from its last checkpoint, replays the
    /// buffered inputs since, and re-applies this iteration's membership
    /// deltas, so its state is exactly what the crashed worker's would
    /// have been entering iteration `k`.
    pub(super) fn respawn_frontend(&mut self, i: usize, k: usize) -> Result<(), CoreError> {
        let mut node = FrontendNode::new(self.instance, i, &self.settings);
        let mut base = 0usize;
        if let Some((it, blob)) = self.store.frontend(i) {
            node.restore(&FrontendSnapshot::from_bytes(blob)?)?;
            base = it;
        }
        self.spawn_frontend(i, node, k);
        let mut replayed = 0usize;
        for entry in replay_entries(&self.history, base, k) {
            self.send_fe(
                i,
                FeCmd::Predict {
                    iteration: entry.iteration,
                },
            );
            self.send_fe(
                i,
                FeCmd::Correct {
                    iteration: entry.iteration,
                    a_row: row_of(&entry.a_cols, i),
                },
            );
            replayed += 1;
        }
        self.tracker.report.recomputed_iterations += replayed;
        for &j in &self.readmitted_now {
            self.send_fe(
                i,
                FeCmd::Membership {
                    datacenter: j,
                    evict: false,
                },
            );
        }
        Ok(())
    }

    /// Respawns datacenter `j` from its last checkpoint and replays the
    /// buffered λ̃ columns since.
    pub(super) fn respawn_datacenter(&mut self, j: usize, k: usize) -> Result<(), CoreError> {
        let mut node = DatacenterNode::new(
            self.instance,
            j,
            &self.settings,
            self.active_mu,
            self.active_nu,
        );
        let mut base = 0usize;
        if let Some((it, blob)) = self.store.datacenter(j) {
            node.restore(&DatacenterSnapshot::from_bytes(blob)?)?;
            base = it;
        }
        self.spawn_datacenter(j, node, k);
        let mut replayed = 0usize;
        for entry in replay_entries(&self.history, base, k) {
            self.send_dc(
                j,
                DcCmd::Process {
                    iteration: entry.iteration,
                    column: column_of(&entry.rows, j),
                },
            );
            replayed += 1;
        }
        self.tracker.report.recomputed_iterations += replayed;
        Ok(())
    }

    /// Evicts datacenter `j`: drops its command channel, joins the dead
    /// worker, and broadcasts the membership change to every front-end.
    pub(super) fn evict_datacenter(&mut self, j: usize) {
        self.dc_tx[j] = None;
        if let Some(handle) = self.dc_handles[j].take() {
            let _ = handle.join();
        }
        for i in 0..self.m {
            self.send_fe(
                i,
                FeCmd::Membership {
                    datacenter: j,
                    evict: true,
                },
            );
            self.stats.record(&Message::Membership {
                datacenter: j,
                evict: true,
            });
        }
    }

    /// One checkpoint round: every live node snapshots its iterate slice
    /// and ships it to the coordinator, which accounts the traffic and
    /// clears the replay buffer.
    pub(super) fn checkpoint_round(&mut self, k: usize) -> Result<(), CoreError> {
        let (m, n) = (self.m, self.n);
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        for i in 0..m {
            self.send_fe(i, FeCmd::Snapshot { iteration: k });
        }
        for j in 0..n {
            if !self.tracker.is_evicted(j) {
                self.send_dc(j, DcCmd::Snapshot { iteration: k });
                pending.insert(NodeId::Datacenter(j));
            }
        }
        let mut fe_blobs: Vec<Option<Vec<u8>>> = vec![None; m];
        let mut dc_blobs: Vec<Option<Vec<u8>>> = vec![None; n];
        let missing = gather_phase(
            &self.reply_rx,
            &mut pending,
            self.timeout,
            self.rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeSnapshot { i, iteration, blob } if iteration == k => {
                    fe_blobs[i] = Some(blob);
                    Some(NodeId::Frontend(i))
                }
                Reply::DcSnapshot { j, iteration, blob } if iteration == k => {
                    dc_blobs[j] = Some(blob);
                    Some(NodeId::Datacenter(j))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                k,
                "no reply to the checkpoint request",
            ));
        }
        for (i, blob) in fe_blobs.into_iter().enumerate() {
            let blob = blob.ok_or_else(|| {
                CoreError::node_failure(
                    NodeId::Frontend(i).to_string(),
                    k,
                    "checkpoint blob missing after gather",
                )
            })?;
            self.stats.record(&Message::Checkpoint {
                node: i,
                payload_bytes: blob.len(),
            });
            self.store.put_frontend(i, k, blob);
        }
        for (j, blob) in dc_blobs.into_iter().enumerate() {
            let Some(blob) = blob else { continue };
            self.stats.record(&Message::Checkpoint {
                node: m + j,
                payload_bytes: blob.len(),
            });
            self.store.put_datacenter(j, k, blob);
        }
        self.tracker.report.checkpoints_taken += 1;
        self.history.clear();
        Ok(())
    }

    /// Ships `Finish` to every live worker and gathers the final iterate.
    #[allow(clippy::type_complexity)]
    pub(super) fn final_gather(
        &mut self,
        iterations: usize,
    ) -> Result<(Vec<Vec<f64>>, Vec<f64>, Vec<f64>), CoreError> {
        let (m, n) = (self.m, self.n);
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        for i in 0..m {
            self.send_fe(i, FeCmd::Finish);
        }
        for j in 0..n {
            if !self.tracker.is_evicted(j) {
                self.send_dc(j, DcCmd::Finish);
                pending.insert(NodeId::Datacenter(j));
            }
        }
        let mut lambda_rows: Vec<Vec<f64>> = vec![Vec::new(); m];
        let mut mu = vec![0.0; n];
        let mut d = vec![0.0; n];
        let missing = gather_phase(
            &self.reply_rx,
            &mut pending,
            self.timeout,
            self.rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeFinal { i, lambda } => {
                    lambda_rows[i] = lambda;
                    Some(NodeId::Frontend(i))
                }
                Reply::DcFinal { j, mu: v, d: dv } => {
                    mu[j] = v;
                    d[j] = dv;
                    Some(NodeId::Datacenter(j))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                iterations,
                "no reply to the final gather",
            ));
        }
        Ok((lambda_rows, mu, d))
    }
}
