//! Wire messages of the distributed protocol (paper Fig. 2).
//!
//! Each variant carries the logical payload exchanged between a front-end
//! and a datacenter (or the coordinator); [`Message::wire_bytes`] gives the
//! size a real deployment would put on the wire (payload + a fixed header),
//! which the statistics use for byte accounting.
//!
//! # Checksummed framing
//!
//! [`Message::encode`] serializes a message into a self-verifying frame —
//! `[magic, kind, payload (LE fields), crc32 (LE)]` — and
//! [`Message::decode`] rejects any frame whose CRC32 does not match with a
//! typed [`ufc_core::CoreError::CorruptPayload`]. This is the verify-on-
//! receive layer the corruption-injection machinery (see [`crate::fault`])
//! exercises: a receiver that checks the trailer detects a poisoned payload
//! and requests a retransmit instead of folding garbage into its iterate.
//! The CRC is the standard IEEE-reflected polynomial (`0xEDB88320`),
//! hand-rolled over a const-built table so the crate stays std-only.

use ufc_core::CoreError;

/// Fixed per-message header: sender, receiver, iteration, type tag.
pub const HEADER_BYTES: usize = 16;

/// Extra on-wire bytes a checksummed frame carries over the plain payload
/// accounting: the magic byte plus the 4-byte CRC32 trailer.
pub const CHECKSUM_OVERHEAD_BYTES: usize = 5;

/// First byte of every encoded frame.
pub const FRAME_MAGIC: u8 = 0xFC;

/// Hard upper bound on an encoded [`Message`] frame. The largest legal
/// frame is a `ResidualReport` (magic + kind + 28 payload bytes + CRC =
/// 34 bytes); anything bigger is rejected before any field is parsed, so
/// a hostile or garbled length prefix can never drive an allocation or a
/// deep parse.
pub const MAX_FRAME_BYTES: usize = 64;

/// Byte offset of the f64 value field inside an encoded
/// [`Message::LambdaTilde`]/[`Message::ATilde`] frame (after magic, kind,
/// and the two u32 endpoint indices) — the bytes corruption injection
/// targets.
pub(crate) const VALUE_OFFSET: usize = 10;

/// CRC32 lookup table for the IEEE-reflected polynomial, built at compile
/// time.
const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// CRC32 (IEEE 802.3, reflected) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn corrupt(context: String) -> CoreError {
    CoreError::corrupt_payload("wire", 0, context)
}

/// Cursor-style field readers for [`Message::decode`]; every truncation is
/// a typed decode error, never a panic.
fn take<const N: usize>(bytes: &[u8], pos: &mut usize) -> Result<[u8; N], CoreError> {
    let end = *pos + N;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| corrupt(format!("frame truncated at byte {pos}")))?;
    *pos = end;
    <[u8; N]>::try_from(slice).map_err(|_| corrupt(format!("frame truncated at byte {pos}")))
}

fn get_u32(bytes: &[u8], pos: &mut usize) -> Result<usize, CoreError> {
    Ok(u32::from_le_bytes(take::<4>(bytes, pos)?) as usize)
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<usize, CoreError> {
    Ok(u64::from_le_bytes(take::<8>(bytes, pos)?) as usize)
}

fn get_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, CoreError> {
    Ok(f64::from_le_bytes(take::<8>(bytes, pos)?))
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Step 1 — front-end `i` sends its predicted routing share to
    /// datacenter `j`.
    LambdaTilde {
        /// Originating front-end.
        frontend: usize,
        /// Destination datacenter.
        datacenter: usize,
        /// Predicted `λ̃_ij` (kilo-servers).
        value: f64,
    },
    /// Step 4 — datacenter `j` sends the corrected auxiliary routing share
    /// back to front-end `i`.
    ATilde {
        /// Destination front-end.
        frontend: usize,
        /// Originating datacenter.
        datacenter: usize,
        /// Predicted `ã_ij` (kilo-servers).
        value: f64,
    },
    /// Step 5 — a node reports its local residual contributions to the
    /// coordinator.
    ResidualReport {
        /// Reporting node (front-ends then datacenters).
        node: usize,
        /// Local link residual (kilo-servers).
        link: f64,
        /// Local balance residual (MW; zero for front-ends).
        balance: f64,
        /// Local dual/iterate movement.
        movement: f64,
    },
    /// Coordinator broadcast: continue to the next iteration or stop.
    Control {
        /// `true` to stop (converged or iteration cap).
        stop: bool,
    },
    /// Checkpoint round-trip: the coordinator requests a snapshot and a
    /// node ships back its serialized iterate slice.
    Checkpoint {
        /// Node whose state is snapshotted (front-ends then datacenters).
        node: usize,
        /// Serialized snapshot size (bytes) — the payload put on the wire.
        payload_bytes: usize,
    },
    /// Coordinator broadcast announcing a membership change (datacenter
    /// eviction or readmission) to every surviving front-end.
    Membership {
        /// Datacenter whose status changed.
        datacenter: usize,
        /// `true` for eviction, `false` for readmission.
        evict: bool,
    },
    /// A datacenter reports one scheduled extension block's corrected value
    /// to the coordinator (e.g. the storage block's net discharge `d_j`).
    /// The block is identified by its stable [`BlockKind`] wire id, so the
    /// message generalizes to any future block without a new kind tag.
    ///
    /// [`BlockKind`]: ufc_core::BlockKind
    BlockReport {
        /// Reporting datacenter.
        datacenter: usize,
        /// The block's [`ufc_core::BlockKind::wire_id`].
        block: u8,
        /// The block's corrected scalar value this iteration.
        value: f64,
    },
}

impl Message {
    /// Bytes this message would occupy on the wire.
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        let payload = match self {
            Message::LambdaTilde { .. } | Message::ATilde { .. } => 8,
            Message::ResidualReport { .. } => 24,
            Message::Control { .. } => 1,
            Message::Checkpoint { payload_bytes, .. } => *payload_bytes,
            Message::Membership { .. } => 2,
            Message::BlockReport { .. } => 13,
        };
        HEADER_BYTES + payload
    }

    /// `true` for the per-pair data messages (λ̃/ã), `false` for control
    /// traffic.
    #[must_use]
    pub fn is_data(&self) -> bool {
        matches!(self, Message::LambdaTilde { .. } | Message::ATilde { .. })
    }

    /// The f64 payload of a data message (`None` for control traffic).
    #[must_use]
    pub fn data_value(&self) -> Option<f64> {
        match self {
            Message::LambdaTilde { value, .. } | Message::ATilde { value, .. } => Some(*value),
            _ => None,
        }
    }

    fn kind_tag(&self) -> u8 {
        match self {
            Message::LambdaTilde { .. } => 0,
            Message::ATilde { .. } => 1,
            Message::ResidualReport { .. } => 2,
            Message::Control { .. } => 3,
            Message::Checkpoint { .. } => 4,
            Message::Membership { .. } => 5,
            Message::BlockReport { .. } => 6,
        }
    }

    /// Serializes this message into a self-verifying frame:
    /// `[FRAME_MAGIC, kind, payload fields (LE), crc32 (LE)]`.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![FRAME_MAGIC, self.kind_tag()];
        match self {
            Message::LambdaTilde {
                frontend,
                datacenter,
                value,
            }
            | Message::ATilde {
                frontend,
                datacenter,
                value,
            } => {
                buf.extend_from_slice(&(*frontend as u32).to_le_bytes());
                buf.extend_from_slice(&(*datacenter as u32).to_le_bytes());
                debug_assert_eq!(buf.len(), VALUE_OFFSET);
                buf.extend_from_slice(&value.to_le_bytes());
            }
            Message::ResidualReport {
                node,
                link,
                balance,
                movement,
            } => {
                buf.extend_from_slice(&(*node as u32).to_le_bytes());
                buf.extend_from_slice(&link.to_le_bytes());
                buf.extend_from_slice(&balance.to_le_bytes());
                buf.extend_from_slice(&movement.to_le_bytes());
            }
            Message::Control { stop } => buf.push(u8::from(*stop)),
            Message::Checkpoint {
                node,
                payload_bytes,
            } => {
                buf.extend_from_slice(&(*node as u32).to_le_bytes());
                buf.extend_from_slice(&(*payload_bytes as u64).to_le_bytes());
            }
            Message::Membership { datacenter, evict } => {
                buf.extend_from_slice(&(*datacenter as u32).to_le_bytes());
                buf.push(u8::from(*evict));
            }
            Message::BlockReport {
                datacenter,
                block,
                value,
            } => {
                buf.extend_from_slice(&(*datacenter as u32).to_le_bytes());
                buf.push(*block);
                buf.extend_from_slice(&value.to_le_bytes());
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Verifies and parses a frame produced by [`Message::encode`].
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptPayload`] if the frame is truncated, oversized
    /// (see [`MAX_FRAME_BYTES`]), carries the wrong magic or an unknown
    /// kind, has trailing garbage, or fails its CRC32 check. Never panics,
    /// whatever the input bytes.
    pub fn decode(bytes: &[u8]) -> Result<Message, CoreError> {
        if bytes.len() < 2 + 4 {
            return Err(corrupt(format!("frame too short ({} bytes)", bytes.len())));
        }
        if bytes.len() > MAX_FRAME_BYTES {
            return Err(corrupt(format!(
                "frame too long ({} bytes, max {MAX_FRAME_BYTES})",
                bytes.len()
            )));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = <[u8; 4]>::try_from(trailer)
            .map(u32::from_le_bytes)
            .map_err(|_| corrupt("frame trailer is not 4 bytes".to_owned()))?;
        let computed = crc32(body);
        if stored != computed {
            return Err(corrupt(format!(
                "crc32 mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        if body[0] != FRAME_MAGIC {
            return Err(corrupt(format!("bad frame magic {:#04x}", body[0])));
        }
        let kind = body[1];
        let mut pos = 2;
        let msg = match kind {
            0 | 1 => {
                let frontend = get_u32(body, &mut pos)?;
                let datacenter = get_u32(body, &mut pos)?;
                let value = get_f64(body, &mut pos)?;
                if kind == 0 {
                    Message::LambdaTilde {
                        frontend,
                        datacenter,
                        value,
                    }
                } else {
                    Message::ATilde {
                        frontend,
                        datacenter,
                        value,
                    }
                }
            }
            2 => Message::ResidualReport {
                node: get_u32(body, &mut pos)?,
                link: get_f64(body, &mut pos)?,
                balance: get_f64(body, &mut pos)?,
                movement: get_f64(body, &mut pos)?,
            },
            3 => Message::Control {
                stop: take::<1>(body, &mut pos)?[0] != 0,
            },
            4 => Message::Checkpoint {
                node: get_u32(body, &mut pos)?,
                payload_bytes: get_u64(body, &mut pos)?,
            },
            5 => Message::Membership {
                datacenter: get_u32(body, &mut pos)?,
                evict: take::<1>(body, &mut pos)?[0] != 0,
            },
            6 => {
                let datacenter = get_u32(body, &mut pos)?;
                let block = take::<1>(body, &mut pos)?[0];
                if ufc_core::BlockKind::from_wire_id(block).is_none() {
                    return Err(corrupt(format!("unknown block wire id {block}")));
                }
                Message::BlockReport {
                    datacenter,
                    block,
                    value: get_f64(body, &mut pos)?,
                }
            }
            other => return Err(corrupt(format!("unknown message kind {other}"))),
        };
        if pos != body.len() {
            return Err(corrupt(format!(
                "trailing garbage: frame body is {} bytes, parsed {pos}",
                body.len()
            )));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let m = Message::LambdaTilde {
            frontend: 0,
            datacenter: 1,
            value: 1.5,
        };
        assert_eq!(m.wire_bytes(), HEADER_BYTES + 8);
        assert!(m.is_data());

        let r = Message::ResidualReport {
            node: 3,
            link: 0.0,
            balance: 0.0,
            movement: 0.0,
        };
        assert_eq!(r.wire_bytes(), HEADER_BYTES + 24);
        assert!(!r.is_data());

        let c = Message::Control { stop: true };
        assert_eq!(c.wire_bytes(), HEADER_BYTES + 1);
        assert!(!c.is_data());
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn all_variants() -> Vec<Message> {
        vec![
            Message::LambdaTilde {
                frontend: 3,
                datacenter: 1,
                value: -0.75,
            },
            Message::ATilde {
                frontend: 0,
                datacenter: 2,
                value: 1.5e-3,
            },
            Message::ResidualReport {
                node: 7,
                link: 0.1,
                balance: 0.2,
                movement: 0.3,
            },
            Message::Control { stop: true },
            Message::Checkpoint {
                node: 4,
                payload_bytes: 321,
            },
            Message::Membership {
                datacenter: 1,
                evict: false,
            },
            Message::BlockReport {
                datacenter: 2,
                block: ufc_core::BlockKind::Storage.wire_id(),
                value: -0.125,
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_variant() {
        for msg in all_variants() {
            let frame = msg.encode();
            assert_eq!(Message::decode(&frame).unwrap(), msg);
        }
    }

    #[test]
    fn data_frames_put_the_value_at_the_documented_offset() {
        let msg = Message::LambdaTilde {
            frontend: 1,
            datacenter: 0,
            value: 2.25,
        };
        let frame = msg.encode();
        let bytes: [u8; 8] = frame[VALUE_OFFSET..VALUE_OFFSET + 8].try_into().unwrap();
        assert_eq!(f64::from_le_bytes(bytes), 2.25);
        assert_eq!(
            frame.len(),
            VALUE_OFFSET + 8 + 4,
            "frame = magic+kind+indices+value+crc"
        );
        assert_eq!(CHECKSUM_OVERHEAD_BYTES, 5);
    }

    #[test]
    fn decode_rejects_tampered_frames_with_typed_errors() {
        let frame = Message::ATilde {
            frontend: 2,
            datacenter: 5,
            value: 0.5,
        }
        .encode();
        // Any single corrupted byte — payload, magic, kind, or trailer —
        // must surface as a typed error.
        for pos in 0..frame.len() {
            let mut bad = frame.clone();
            bad[pos] ^= 0x10;
            let err = Message::decode(&bad).unwrap_err();
            assert!(
                matches!(err, CoreError::CorruptPayload { .. }),
                "byte {pos}: {err}"
            );
        }
        // Truncations never panic either.
        for len in 0..frame.len() {
            assert!(Message::decode(&frame[..len]).is_err());
        }
    }

    #[test]
    fn block_report_rejects_tampering_truncation_and_unknown_blocks() {
        let frame = Message::BlockReport {
            datacenter: 3,
            block: ufc_core::BlockKind::Storage.wire_id(),
            value: 0.75,
        }
        .encode();
        assert_eq!(frame.len(), 2 + 13 + 4, "magic+kind+payload+crc");
        // Every single-byte flip and every truncation is a typed error.
        for pos in 0..frame.len() {
            let mut bad = frame.clone();
            bad[pos] ^= 0x08;
            assert!(
                matches!(
                    Message::decode(&bad).unwrap_err(),
                    CoreError::CorruptPayload { .. }
                ),
                "flipped byte {pos} must fail typed"
            );
            assert!(Message::decode(&frame[..pos]).is_err());
        }
        // A block id outside the registered kinds fails even with a valid
        // CRC (a peer speaking a newer schedule revision).
        let mut body = frame[..frame.len() - 4].to_vec();
        body[6] = 0xEE; // magic+kind+4-byte datacenter, then the block id
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        let err = Message::decode(&body).unwrap_err();
        assert!(err.to_string().contains("unknown block wire id"), "{err}");
    }

    #[test]
    fn decode_rejects_oversized_frames_before_parsing() {
        // A frame padded past the bound is rejected up front — even when
        // the prefix would otherwise parse.
        let mut bloated = Message::Control { stop: false }.encode();
        bloated.resize(MAX_FRAME_BYTES + 1, 0);
        let err = Message::decode(&bloated).unwrap_err();
        assert!(
            matches!(err, CoreError::CorruptPayload { .. }),
            "oversized frame must fail typed: {err}"
        );
        assert!(err.to_string().contains("too long"), "{err}");
        // Every legal frame fits the bound with headroom.
        for msg in all_variants() {
            assert!(msg.encode().len() <= MAX_FRAME_BYTES);
        }
    }
}
