//! Wire messages of the distributed protocol (paper Fig. 2).
//!
//! Each variant carries the logical payload exchanged between a front-end
//! and a datacenter (or the coordinator); [`Message::wire_bytes`] gives the
//! size a real deployment would put on the wire (payload + a fixed header),
//! which the statistics use for byte accounting.

/// Fixed per-message header: sender, receiver, iteration, type tag.
pub const HEADER_BYTES: usize = 16;

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Step 1 — front-end `i` sends its predicted routing share to
    /// datacenter `j`.
    LambdaTilde {
        /// Originating front-end.
        frontend: usize,
        /// Destination datacenter.
        datacenter: usize,
        /// Predicted `λ̃_ij` (kilo-servers).
        value: f64,
    },
    /// Step 4 — datacenter `j` sends the corrected auxiliary routing share
    /// back to front-end `i`.
    ATilde {
        /// Destination front-end.
        frontend: usize,
        /// Originating datacenter.
        datacenter: usize,
        /// Predicted `ã_ij` (kilo-servers).
        value: f64,
    },
    /// Step 5 — a node reports its local residual contributions to the
    /// coordinator.
    ResidualReport {
        /// Reporting node (front-ends then datacenters).
        node: usize,
        /// Local link residual (kilo-servers).
        link: f64,
        /// Local balance residual (MW; zero for front-ends).
        balance: f64,
        /// Local dual/iterate movement.
        movement: f64,
    },
    /// Coordinator broadcast: continue to the next iteration or stop.
    Control {
        /// `true` to stop (converged or iteration cap).
        stop: bool,
    },
    /// Checkpoint round-trip: the coordinator requests a snapshot and a
    /// node ships back its serialized iterate slice.
    Checkpoint {
        /// Node whose state is snapshotted (front-ends then datacenters).
        node: usize,
        /// Serialized snapshot size (bytes) — the payload put on the wire.
        payload_bytes: usize,
    },
    /// Coordinator broadcast announcing a membership change (datacenter
    /// eviction or readmission) to every surviving front-end.
    Membership {
        /// Datacenter whose status changed.
        datacenter: usize,
        /// `true` for eviction, `false` for readmission.
        evict: bool,
    },
}

impl Message {
    /// Bytes this message would occupy on the wire.
    #[must_use]
    pub fn wire_bytes(&self) -> usize {
        let payload = match self {
            Message::LambdaTilde { .. } | Message::ATilde { .. } => 8,
            Message::ResidualReport { .. } => 24,
            Message::Control { .. } => 1,
            Message::Checkpoint { payload_bytes, .. } => *payload_bytes,
            Message::Membership { .. } => 2,
        };
        HEADER_BYTES + payload
    }

    /// `true` for the per-pair data messages (λ̃/ã), `false` for control
    /// traffic.
    #[must_use]
    pub fn is_data(&self) -> bool {
        matches!(self, Message::LambdaTilde { .. } | Message::ATilde { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let m = Message::LambdaTilde {
            frontend: 0,
            datacenter: 1,
            value: 1.5,
        };
        assert_eq!(m.wire_bytes(), HEADER_BYTES + 8);
        assert!(m.is_data());

        let r = Message::ResidualReport {
            node: 3,
            link: 0.0,
            balance: 0.0,
            movement: 0.0,
        };
        assert_eq!(r.wire_bytes(), HEADER_BYTES + 24);
        assert!(!r.is_data());

        let c = Message::Control { stop: true };
        assert_eq!(c.wire_bytes(), HEADER_BYTES + 1);
        assert!(!c.is_data());
    }
}
