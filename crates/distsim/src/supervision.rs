//! The worker-thread protocol of the supervised runtime: typed commands
//! and replies, per-worker fault scripts, the exponential-backoff gather,
//! and the worker thread bodies themselves.
//!
//! The supervising coordinator (`crate::engine_threaded`) drives one OS
//! thread per node through these channels. Every reply is iteration-tagged
//! so stale replay traffic is discarded, and [`gather_phase`] only declares
//! a silent node dead once its thread has actually exited.

use std::collections::HashSet;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ufc_core::CoreError;

use crate::fault::{FaultPlan, NodeId};
use crate::node::{DatacenterNode, FrontendNode, NodeResiduals};

/// Commands to a front-end worker.
pub(crate) enum FeCmd {
    /// Run the λ prediction for `iteration`.
    Predict { iteration: usize },
    /// Apply the gathered ã row and correct.
    Correct { iteration: usize, a_row: Vec<f64> },
    /// Serialize the iterate slice for a checkpoint round.
    Snapshot { iteration: usize },
    /// Apply a membership change for `datacenter`.
    Membership { datacenter: usize, evict: bool },
    /// Ship the final λ row and exit.
    Finish,
}

/// Commands to a datacenter worker.
pub(crate) enum DcCmd {
    /// Run the μ/ν/a steps on the gathered λ̃ column for `iteration`.
    Process { iteration: usize, column: Vec<f64> },
    /// Serialize the iterate slice for a checkpoint round.
    Snapshot { iteration: usize },
    /// Ship the final μ and exit.
    Finish,
}

/// Worker replies, tagged with node and iteration so the coordinator can
/// discard stale replay traffic.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Reply {
    Lambda {
        i: usize,
        iteration: usize,
        row: Vec<f64>,
    },
    FeResidual {
        i: usize,
        iteration: usize,
        residuals: NodeResiduals,
    },
    DcStep {
        j: usize,
        iteration: usize,
        a_tilde: Vec<f64>,
        d: f64,
        residuals: NodeResiduals,
    },
    FeSnapshot {
        i: usize,
        iteration: usize,
        blob: Vec<u8>,
    },
    DcSnapshot {
        j: usize,
        iteration: usize,
        blob: Vec<u8>,
    },
    FeFinal {
        i: usize,
        lambda: Vec<f64>,
    },
    DcFinal {
        j: usize,
        mu: f64,
        d: f64,
    },
    /// A node's sub-problem rejected its inputs (e.g. NaN-poisoned
    /// replicas under unverified corruption). The worker reports the typed
    /// error and stops; the coordinator aborts the run with it instead of
    /// respawning into the same poison. Over the socket wire this variant
    /// is degraded to a rendered [`CoreError::NodeFailure`] (the full error
    /// enum has no wire codec); in-process channels carry it verbatim.
    NodeError {
        node: NodeId,
        iteration: usize,
        error: CoreError,
    },
}

/// The fault injections one worker carries: iterations at which it
/// crash-stops, and scripted reply delays.
pub(crate) struct FaultScript {
    crash_iterations: Vec<usize>,
    stragglers: Vec<(usize, Duration)>,
}

impl FaultScript {
    /// Script for `node`, keeping only events after iteration `after`
    /// (respawned workers must not re-fire events that already happened).
    pub(crate) fn for_node(plan: &FaultPlan, node: NodeId, after: usize) -> Self {
        FaultScript {
            crash_iterations: plan
                .crash_iterations_for(node)
                .into_iter()
                .filter(|&t| t > after)
                .collect(),
            stragglers: plan
                .stragglers_for(node)
                .into_iter()
                .filter(|&(t, _)| t > after)
                .collect(),
        }
    }

    fn crashes_at(&self, iteration: usize) -> bool {
        self.crash_iterations.contains(&iteration)
    }

    fn straggle(&self, iteration: usize) {
        if let Some(&(_, delay)) = self.stragglers.iter().find(|&&(t, _)| t == iteration) {
            std::thread::sleep(delay);
        }
    }
}

/// Spawns front-end `i`'s worker thread, returning its command channel and
/// join handle. The worker loops on commands until `Finish`, a crash-stop
/// injection, or a closed channel.
pub(crate) fn spawn_frontend_worker(
    i: usize,
    mut node: FrontendNode,
    script: FaultScript,
    out: Sender<Reply>,
) -> (Sender<FeCmd>, JoinHandle<()>) {
    let (tx, rx) = channel::<FeCmd>();
    let handle = std::thread::spawn(move || {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                FeCmd::Predict { iteration } => {
                    if script.crashes_at(iteration) {
                        return; // crash-stop: die silently
                    }
                    script.straggle(iteration);
                    let reply = match node.predict_lambda() {
                        Ok(row) => Reply::Lambda { i, iteration, row },
                        // Poisoned iterate: report the typed rejection and
                        // stop — the coordinator aborts with it.
                        Err(error) => Reply::NodeError {
                            node: NodeId::Frontend(i),
                            iteration,
                            error,
                        },
                    };
                    let failed = matches!(reply, Reply::NodeError { .. });
                    if out.send(reply).is_err() || failed {
                        return;
                    }
                }
                FeCmd::Correct { iteration, a_row } => {
                    let residuals = node.receive_a_and_correct(&a_row);
                    if out
                        .send(Reply::FeResidual {
                            i,
                            iteration,
                            residuals,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                FeCmd::Snapshot { iteration } => {
                    let blob = node.snapshot().to_bytes();
                    if out.send(Reply::FeSnapshot { i, iteration, blob }).is_err() {
                        return;
                    }
                }
                FeCmd::Membership { datacenter, evict } => {
                    if evict {
                        node.set_evicted(datacenter);
                    } else {
                        node.clear_evicted(datacenter);
                    }
                }
                FeCmd::Finish => {
                    let _ = out.send(Reply::FeFinal {
                        i,
                        lambda: node.lambda().to_vec(),
                    });
                    return;
                }
            }
        }
    });
    (tx, handle)
}

/// Spawns datacenter `j`'s worker thread (mirror of
/// [`spawn_frontend_worker`]).
pub(crate) fn spawn_datacenter_worker(
    j: usize,
    mut node: DatacenterNode,
    script: FaultScript,
    out: Sender<Reply>,
) -> (Sender<DcCmd>, JoinHandle<()>) {
    let (tx, rx) = channel::<DcCmd>();
    let handle = std::thread::spawn(move || {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                DcCmd::Process { iteration, column } => {
                    if script.crashes_at(iteration) {
                        return;
                    }
                    script.straggle(iteration);
                    let reply = match node.process(&column) {
                        Ok(step) => Reply::DcStep {
                            j,
                            iteration,
                            a_tilde: step.a_tilde,
                            d: step.d,
                            residuals: step.residuals,
                        },
                        Err(error) => Reply::NodeError {
                            node: NodeId::Datacenter(j),
                            iteration,
                            error,
                        },
                    };
                    let failed = matches!(reply, Reply::NodeError { .. });
                    if out.send(reply).is_err() || failed {
                        return;
                    }
                }
                DcCmd::Snapshot { iteration } => {
                    let blob = node.snapshot().to_bytes();
                    if out.send(Reply::DcSnapshot { j, iteration, blob }).is_err() {
                        return;
                    }
                }
                DcCmd::Finish => {
                    let _ = out.send(Reply::DcFinal {
                        j,
                        mu: node.mu(),
                        d: node.d(),
                    });
                    return;
                }
            }
        }
    });
    (tx, handle)
}

/// Hard cap on ladder restarts granted to silent-but-running workers. At
/// 1000 restarts of the full ladder a worker is treated as wedged and
/// returned as missing regardless of thread liveness.
const MAX_EXTENSIONS: u32 = 1000;

/// Waits for the pending nodes' replies with an exponential-backoff ladder.
///
/// Each rung of the ladder is a fixed *phase deadline* (`base_timeout`
/// doubled per rung, `rounds` rungs): timely replies drain the queue but
/// never push the deadline out, so a trickle of replies cannot stretch the
/// wait. When the ladder is exhausted, any pending node whose thread has
/// actually exited (`alive` is false) is immediately returned as
/// suspected-dead, in deterministic node order — a live straggler elsewhere
/// in the pending set does not delay that verdict. Silent-but-running
/// workers (long sub-problem, scheduling hiccup) get the ladder restarted,
/// up to [`MAX_EXTENSIONS`] times.
///
/// # Worst-case bound
///
/// One ladder blocks for at most `Σ_{r<rounds} base_timeout·2^r =
/// base_timeout·(2^rounds − 1)` — i.e. [`FaultPlan::ladder_seconds`] —
/// *independent of how many replies arrive*. A dead node is therefore
/// declared within one ladder of the moment its thread exits; with `E`
/// ladder extensions granted to live stragglers the total wait is at most
/// `(1 + E)` ladders, `E ≤ MAX_EXTENSIONS`.
pub(crate) fn gather_phase(
    rx: &Receiver<Reply>,
    pending: &mut HashSet<NodeId>,
    base_timeout: Duration,
    rounds: u32,
    alive: impl Fn(NodeId) -> bool,
    mut accept: impl FnMut(Reply) -> Option<NodeId>,
) -> Vec<NodeId> {
    let rounds = rounds.max(1);
    let mut round = 0u32;
    let mut wait = base_timeout;
    let mut extensions = 0u32;
    let mut deadline = Instant::now() + wait;
    let mut missing: Vec<NodeId> = loop {
        if pending.is_empty() {
            break Vec::new();
        }
        // `recv_timeout` polls the queue before blocking, so a zero
        // remaining budget still drains replies that already arrived.
        let remaining = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(remaining) {
            Ok(reply) => {
                if let Some(node) = accept(reply) {
                    pending.remove(&node);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                round += 1;
                if round < rounds {
                    wait = wait.saturating_mul(2);
                    deadline = Instant::now() + wait;
                    continue;
                }
                // Ladder exhausted: declare exited threads dead right away.
                let dead: Vec<NodeId> = pending.iter().copied().filter(|&n| !alive(n)).collect();
                if !dead.is_empty() {
                    for node in &dead {
                        pending.remove(node);
                    }
                    break dead;
                }
                if extensions >= MAX_EXTENSIONS {
                    break pending.drain().collect();
                }
                extensions += 1;
                round = 0;
                wait = base_timeout;
                deadline = Instant::now() + wait;
            }
            Err(RecvTimeoutError::Disconnected) => break pending.drain().collect(),
        }
    };
    missing.sort_by_key(|node| match node {
        NodeId::Frontend(i) => (0, *i),
        NodeId::Datacenter(j) => (1, *j),
    });
    missing
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One live straggler (replies late) and one crash-stopped worker
    /// (thread exited, never replies) in the same gather: the dead node
    /// must be declared within the ladder budget, not after the straggler
    /// wakes. Pre-fix, `any(alive)` restarted the whole ladder while the
    /// straggler slept, stalling the dead-node verdict by ~1.2 s.
    #[test]
    fn dead_node_declared_while_straggler_sleeps() {
        let (tx, rx) = channel::<Reply>();
        let mut pending: HashSet<NodeId> = [NodeId::Frontend(0), NodeId::Frontend(1)]
            .into_iter()
            .collect();
        // Frontend(0) is a live straggler replying long after the ladder;
        // Frontend(1)'s thread has already exited.
        let straggler = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(1200));
            let _ = tx.send(Reply::Lambda {
                i: 0,
                iteration: 1,
                row: vec![1.0],
            });
        });
        let start = Instant::now();
        let missing = gather_phase(
            &rx,
            &mut pending,
            Duration::from_millis(20),
            3, // ladder = 20 + 40 + 80 = 140 ms
            |node| node == NodeId::Frontend(0),
            |reply| match reply {
                Reply::Lambda { i, .. } => Some(NodeId::Frontend(i)),
                _ => None,
            },
        );
        let elapsed = start.elapsed();
        assert_eq!(missing, vec![NodeId::Frontend(1)]);
        assert!(
            pending.contains(&NodeId::Frontend(0)),
            "the live straggler must stay pending, not be declared dead"
        );
        assert!(
            elapsed < Duration::from_millis(600),
            "dead node took {elapsed:?} to declare — gated on the straggler"
        );
        straggler.join().expect("straggler thread panicked");
    }

    /// A trickle of timely replies must not re-arm the rung: the ladder is
    /// a phase deadline, so the worst case is `base·(2^rounds − 1)` per
    /// ladder regardless of reply count. Pre-fix, each reply restarted the
    /// (possibly doubled) `recv_timeout`, stretching the phase to ~N×.
    #[test]
    fn timely_replies_do_not_extend_the_phase_deadline() {
        let (tx, rx) = channel::<Reply>();
        let mut pending: HashSet<NodeId> = (0..11).map(NodeId::Frontend).collect();
        // Frontend(0) is dead and silent; frontends 1..=10 trickle replies
        // every 80 ms — each inside a fresh base timeout of 100 ms, so the
        // pre-fix per-message wait never fires until the trickle ends.
        let trickle = std::thread::spawn(move || {
            for i in 1..11usize {
                std::thread::sleep(Duration::from_millis(80));
                let _ = tx.send(Reply::Lambda {
                    i,
                    iteration: 1,
                    row: vec![1.0],
                });
            }
        });
        let start = Instant::now();
        let missing = gather_phase(
            &rx,
            &mut pending,
            Duration::from_millis(100),
            2, // ladder = 100 + 200 = 300 ms
            |node| node != NodeId::Frontend(0),
            |reply| match reply {
                Reply::Lambda { i, .. } => Some(NodeId::Frontend(i)),
                _ => None,
            },
        );
        let elapsed = start.elapsed();
        assert_eq!(missing, vec![NodeId::Frontend(0)]);
        assert!(
            elapsed < Duration::from_millis(700),
            "phase took {elapsed:?} — replies re-armed the rung timeout \
             (trickle alone spans 800 ms)"
        );
        trickle.join().expect("trickle thread panicked");
    }
}
