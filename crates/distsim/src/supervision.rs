//! The worker-thread protocol of the supervised runtime: typed commands
//! and replies, per-worker fault scripts, the exponential-backoff gather,
//! and the worker thread bodies themselves.
//!
//! The supervising coordinator (`crate::engine_threaded`) drives one OS
//! thread per node through these channels. Every reply is iteration-tagged
//! so stale replay traffic is discarded, and [`gather_phase`] only declares
//! a silent node dead once its thread has actually exited.

use std::collections::HashSet;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::fault::{FaultPlan, NodeId};
use crate::node::{DatacenterNode, FrontendNode, NodeResiduals};

/// Commands to a front-end worker.
pub(crate) enum FeCmd {
    /// Run the λ prediction for `iteration`.
    Predict { iteration: usize },
    /// Apply the gathered ã row and correct.
    Correct { iteration: usize, a_row: Vec<f64> },
    /// Serialize the iterate slice for a checkpoint round.
    Snapshot { iteration: usize },
    /// Apply a membership change for `datacenter`.
    Membership { datacenter: usize, evict: bool },
    /// Ship the final λ row and exit.
    Finish,
}

/// Commands to a datacenter worker.
pub(crate) enum DcCmd {
    /// Run the μ/ν/a steps on the gathered λ̃ column for `iteration`.
    Process { iteration: usize, column: Vec<f64> },
    /// Serialize the iterate slice for a checkpoint round.
    Snapshot { iteration: usize },
    /// Ship the final μ and exit.
    Finish,
}

/// Worker replies, tagged with node and iteration so the coordinator can
/// discard stale replay traffic.
pub(crate) enum Reply {
    Lambda {
        i: usize,
        iteration: usize,
        row: Vec<f64>,
    },
    FeResidual {
        i: usize,
        iteration: usize,
        residuals: NodeResiduals,
    },
    DcStep {
        j: usize,
        iteration: usize,
        a_tilde: Vec<f64>,
        residuals: NodeResiduals,
    },
    FeSnapshot {
        i: usize,
        iteration: usize,
        blob: Vec<u8>,
    },
    DcSnapshot {
        j: usize,
        iteration: usize,
        blob: Vec<u8>,
    },
    FeFinal {
        i: usize,
        lambda: Vec<f64>,
    },
    DcFinal {
        j: usize,
        mu: f64,
    },
}

/// The fault injections one worker carries: iterations at which it
/// crash-stops, and scripted reply delays.
pub(crate) struct FaultScript {
    crash_iterations: Vec<usize>,
    stragglers: Vec<(usize, Duration)>,
}

impl FaultScript {
    /// Script for `node`, keeping only events after iteration `after`
    /// (respawned workers must not re-fire events that already happened).
    pub(crate) fn for_node(plan: &FaultPlan, node: NodeId, after: usize) -> Self {
        FaultScript {
            crash_iterations: plan
                .crash_iterations_for(node)
                .into_iter()
                .filter(|&t| t > after)
                .collect(),
            stragglers: plan
                .stragglers_for(node)
                .into_iter()
                .filter(|&(t, _)| t > after)
                .collect(),
        }
    }

    fn crashes_at(&self, iteration: usize) -> bool {
        self.crash_iterations.contains(&iteration)
    }

    fn straggle(&self, iteration: usize) {
        if let Some(&(_, delay)) = self.stragglers.iter().find(|&&(t, _)| t == iteration) {
            std::thread::sleep(delay);
        }
    }
}

/// Spawns front-end `i`'s worker thread, returning its command channel and
/// join handle. The worker loops on commands until `Finish`, a crash-stop
/// injection, or a closed channel.
pub(crate) fn spawn_frontend_worker(
    i: usize,
    mut node: FrontendNode,
    script: FaultScript,
    out: Sender<Reply>,
) -> (Sender<FeCmd>, JoinHandle<()>) {
    let (tx, rx) = channel::<FeCmd>();
    let handle = std::thread::spawn(move || {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                FeCmd::Predict { iteration } => {
                    if script.crashes_at(iteration) {
                        return; // crash-stop: die silently
                    }
                    script.straggle(iteration);
                    let row = node.predict_lambda();
                    if out.send(Reply::Lambda { i, iteration, row }).is_err() {
                        return;
                    }
                }
                FeCmd::Correct { iteration, a_row } => {
                    let residuals = node.receive_a_and_correct(&a_row);
                    if out
                        .send(Reply::FeResidual {
                            i,
                            iteration,
                            residuals,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                FeCmd::Snapshot { iteration } => {
                    let blob = node.snapshot().to_bytes();
                    if out.send(Reply::FeSnapshot { i, iteration, blob }).is_err() {
                        return;
                    }
                }
                FeCmd::Membership { datacenter, evict } => {
                    if evict {
                        node.set_evicted(datacenter);
                    } else {
                        node.clear_evicted(datacenter);
                    }
                }
                FeCmd::Finish => {
                    let _ = out.send(Reply::FeFinal {
                        i,
                        lambda: node.lambda().to_vec(),
                    });
                    return;
                }
            }
        }
    });
    (tx, handle)
}

/// Spawns datacenter `j`'s worker thread (mirror of
/// [`spawn_frontend_worker`]).
pub(crate) fn spawn_datacenter_worker(
    j: usize,
    mut node: DatacenterNode,
    script: FaultScript,
    out: Sender<Reply>,
) -> (Sender<DcCmd>, JoinHandle<()>) {
    let (tx, rx) = channel::<DcCmd>();
    let handle = std::thread::spawn(move || {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                DcCmd::Process { iteration, column } => {
                    if script.crashes_at(iteration) {
                        return;
                    }
                    script.straggle(iteration);
                    let step = node.process(&column);
                    if out
                        .send(Reply::DcStep {
                            j,
                            iteration,
                            a_tilde: step.a_tilde,
                            residuals: step.residuals,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                DcCmd::Snapshot { iteration } => {
                    let blob = node.snapshot().to_bytes();
                    if out.send(Reply::DcSnapshot { j, iteration, blob }).is_err() {
                        return;
                    }
                }
                DcCmd::Finish => {
                    let _ = out.send(Reply::DcFinal { j, mu: node.mu() });
                    return;
                }
            }
        }
    });
    (tx, handle)
}

/// Waits for the pending nodes' replies with an exponential-backoff ladder.
/// Nodes still silent after the ladder — and whose threads have actually
/// exited (`alive` is false) — are returned as suspected-dead, in
/// deterministic node order. A silent-but-running worker (long sub-problem,
/// scheduling hiccup) gets its ladder restarted instead of being declared
/// dead.
pub(crate) fn gather_phase(
    rx: &Receiver<Reply>,
    pending: &mut HashSet<NodeId>,
    base_timeout: Duration,
    rounds: u32,
    alive: impl Fn(NodeId) -> bool,
    mut accept: impl FnMut(Reply) -> Option<NodeId>,
) -> Vec<NodeId> {
    let rounds = rounds.max(1);
    let mut round = 0u32;
    let mut wait = base_timeout;
    let mut extensions = 0u32;
    while !pending.is_empty() {
        match rx.recv_timeout(wait) {
            Ok(reply) => {
                if let Some(node) = accept(reply) {
                    pending.remove(&node);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                round += 1;
                if round >= rounds {
                    if pending.iter().any(|&node| alive(node)) && extensions < 1000 {
                        extensions += 1;
                        round = 0;
                        wait = base_timeout;
                        continue;
                    }
                    break;
                }
                wait = wait.saturating_mul(2);
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    let mut missing: Vec<NodeId> = pending.drain().collect();
    missing.sort_by_key(|node| match node {
        NodeId::Frontend(i) => (0, *i),
        NodeId::Datacenter(j) => (1, *j),
    });
    missing
}
