//! Per-node checkpoint snapshots for crash-restart.
//!
//! Each node's iterate slice serializes to the same self-describing
//! little-endian layout as [`ufc_core::AdmgState::to_bytes`], built entirely
//! from the shared primitives in `ufc_core::state::codec` (magic check,
//! length-prefixed `f64` slices, packed boolean masks) — this crate defines
//! no byte-format logic of its own. A [`CheckpointStore`] holds the most
//! recent blob per node plus the iteration it was taken at, so the
//! supervisor can respawn a crashed worker from the last checkpoint and
//! replay only the iterations since.

use ufc_core::state::codec;
use ufc_core::CoreError;

/// Magic prefix of front-end snapshot blobs (`UFCF` + version 2: the
/// eviction mask moved from an f64 vector to the codec's packed byte mask).
pub const FRONTEND_MAGIC: &[u8] = b"UFCF\x02";
/// Magic prefix of datacenter snapshot blobs (`UFCD` + version 2: the
/// scalar block grew a fourth slot for the battery net discharge `d_j`).
pub const DATACENTER_MAGIC: &[u8] = b"UFCD\x02";

/// A front-end's iterate slice: `λ_i·`, its last prediction, and the local
/// replicas of `a_i·` and the link duals `φ_i·`, plus the eviction mask.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendSnapshot {
    /// Corrected routing row `λ_i·`.
    pub lambda: Vec<f64>,
    /// Last predicted row `λ̃_i·`.
    pub lambda_tilde: Vec<f64>,
    /// Auxiliary replica `a_i·`.
    pub a: Vec<f64>,
    /// Link-dual replica `φ_i·`.
    pub varphi: Vec<f64>,
    /// Datacenters this front-end currently treats as evicted.
    pub evicted: Vec<bool>,
}

impl FrontendSnapshot {
    /// Serializes the snapshot.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + 8 * 4 * self.lambda.len());
        buf.extend_from_slice(FRONTEND_MAGIC);
        codec::put_f64s(&mut buf, &self.lambda);
        codec::put_f64s(&mut buf, &self.lambda_tilde);
        codec::put_f64s(&mut buf, &self.a);
        codec::put_f64s(&mut buf, &self.varphi);
        codec::put_mask(&mut buf, &self.evicted);
        buf
    }

    /// Deserializes a blob produced by [`FrontendSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] on bad magic, truncation, or blocks of
    /// inconsistent length.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CoreError> {
        let mut pos = codec::check_magic(buf, FRONTEND_MAGIC)?;
        let snap = FrontendSnapshot {
            lambda: codec::get_f64s(buf, &mut pos)?,
            lambda_tilde: codec::get_f64s(buf, &mut pos)?,
            a: codec::get_f64s(buf, &mut pos)?,
            varphi: codec::get_f64s(buf, &mut pos)?,
            evicted: codec::get_mask(buf, &mut pos)?,
        };
        let n = snap.lambda.len();
        if [
            snap.lambda_tilde.len(),
            snap.a.len(),
            snap.varphi.len(),
            snap.evicted.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err(CoreError::checkpoint("front-end block lengths disagree"));
        }
        Ok(snap)
    }

    /// Whether every stored value is finite — a poisoned snapshot is no
    /// rollback target.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.lambda
            .iter()
            .chain(&self.lambda_tilde)
            .chain(&self.a)
            .chain(&self.varphi)
            .all(|v| v.is_finite())
    }
}

/// A datacenter's iterate slice: `μ_j`, `ν_j`, the balance dual `φ_j`, the
/// battery net discharge `d_j`, and its column replicas `a_·j`, `φ_·j`.
#[derive(Debug, Clone, PartialEq)]
pub struct DatacenterSnapshot {
    /// Fuel-cell output `μ_j` (MW).
    pub mu: f64,
    /// Grid draw `ν_j` (MW).
    pub nu: f64,
    /// Balance dual `φ_j`.
    pub phi: f64,
    /// Battery net discharge `d_j` (MW; `0.0` without a storage block).
    pub d: f64,
    /// Auxiliary column `a_·j`.
    pub a: Vec<f64>,
    /// Link-dual replica `φ_·j`.
    pub varphi: Vec<f64>,
}

impl DatacenterSnapshot {
    /// Serializes the snapshot.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + 8 * (4 + 2 * self.a.len()));
        buf.extend_from_slice(DATACENTER_MAGIC);
        codec::put_f64s(&mut buf, &[self.mu, self.nu, self.phi, self.d]);
        codec::put_f64s(&mut buf, &self.a);
        codec::put_f64s(&mut buf, &self.varphi);
        buf
    }

    /// Deserializes a blob produced by [`DatacenterSnapshot::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] on bad magic, truncation, or blocks of
    /// inconsistent length.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CoreError> {
        let mut pos = codec::check_magic(buf, DATACENTER_MAGIC)?;
        let scalars = codec::get_f64s(buf, &mut pos)?;
        if scalars.len() != 4 {
            return Err(CoreError::checkpoint("datacenter scalar block malformed"));
        }
        let snap = DatacenterSnapshot {
            mu: scalars[0],
            nu: scalars[1],
            phi: scalars[2],
            d: scalars[3],
            a: codec::get_f64s(buf, &mut pos)?,
            varphi: codec::get_f64s(buf, &mut pos)?,
        };
        if snap.a.len() != snap.varphi.len() {
            return Err(CoreError::checkpoint("datacenter block lengths disagree"));
        }
        Ok(snap)
    }

    /// Whether every stored value is finite — a poisoned snapshot is no
    /// rollback target.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        [self.mu, self.nu, self.phi, self.d]
            .iter()
            .chain(&self.a)
            .chain(&self.varphi)
            .all(|v| v.is_finite())
    }
}

/// The supervisor's per-run checkpoint store: one slot per node (front-ends
/// first, then datacenters), each holding the latest serialized snapshot
/// and the iteration *after* which it was taken.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    m: usize,
    slots: Vec<Option<(usize, Vec<u8>)>>,
    taken: usize,
}

impl CheckpointStore {
    /// Empty store for `m` front-ends and `n` datacenters.
    #[must_use]
    pub fn new(m: usize, n: usize) -> Self {
        CheckpointStore {
            m,
            slots: vec![None; m + n],
            taken: 0,
        }
    }

    /// Records front-end `i`'s blob taken after `iteration`.
    pub fn put_frontend(&mut self, i: usize, iteration: usize, blob: Vec<u8>) {
        self.slots[i] = Some((iteration, blob));
    }

    /// Records datacenter `j`'s blob taken after `iteration`.
    pub fn put_datacenter(&mut self, j: usize, iteration: usize, blob: Vec<u8>) {
        self.slots[self.m + j] = Some((iteration, blob));
    }

    /// Latest front-end blob, as `(iteration, bytes)`.
    #[must_use]
    pub fn frontend(&self, i: usize) -> Option<(usize, &[u8])> {
        self.slots[i].as_ref().map(|(it, b)| (*it, b.as_slice()))
    }

    /// Latest datacenter blob, as `(iteration, bytes)`.
    #[must_use]
    pub fn datacenter(&self, j: usize) -> Option<(usize, &[u8])> {
        self.slots[self.m + j]
            .as_ref()
            .map(|(it, b)| (*it, b.as_slice()))
    }

    /// Marks one complete checkpoint round (for reporting).
    pub fn mark_round(&mut self) {
        self.taken += 1;
    }

    /// Complete checkpoint rounds taken so far.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.taken
    }

    /// Total bytes currently held (for wire accounting of one round).
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.slots.iter().flatten().map(|(_, b)| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_round_trip() {
        let snap = FrontendSnapshot {
            lambda: vec![0.5, 0.25, 0.0],
            lambda_tilde: vec![0.5, 0.125, 0.125],
            a: vec![0.4, 0.3, 0.05],
            varphi: vec![-1.5, 0.0, 2.25],
            evicted: vec![false, true, false],
        };
        let back = FrontendSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn datacenter_round_trip() {
        let snap = DatacenterSnapshot {
            mu: 0.42,
            nu: 1e-300,
            phi: -7.5,
            d: -0.25,
            a: vec![0.1, 0.9],
            varphi: vec![2.0, -2.0],
        };
        let back = DatacenterSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn rejects_cross_kind_and_corrupt_blobs() {
        let fe = FrontendSnapshot {
            lambda: vec![1.0],
            lambda_tilde: vec![1.0],
            a: vec![1.0],
            varphi: vec![0.0],
            evicted: vec![false],
        };
        let blob = fe.to_bytes();
        assert!(DatacenterSnapshot::from_bytes(&blob).is_err());
        assert!(FrontendSnapshot::from_bytes(&blob[..blob.len() - 2]).is_err());
        let mut bad = blob;
        bad[0] = b'X';
        assert!(FrontendSnapshot::from_bytes(&bad).is_err());
    }

    #[test]
    fn store_tracks_latest_blob_per_node() {
        let mut store = CheckpointStore::new(1, 2);
        assert!(store.frontend(0).is_none());
        store.put_frontend(0, 4, vec![1, 2, 3]);
        store.put_datacenter(1, 4, vec![9]);
        store.put_frontend(0, 8, vec![4, 5]);
        assert_eq!(store.frontend(0), Some((8, &[4u8, 5][..])));
        assert_eq!(store.datacenter(1), Some((4, &[9u8][..])));
        assert!(store.datacenter(0).is_none());
        assert_eq!(store.total_bytes(), 3);
        store.mark_round();
        assert_eq!(store.rounds(), 1);
    }
}
