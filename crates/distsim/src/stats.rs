//! Message and wall-clock accounting for the distributed protocol.

use crate::message::Message;

/// Aggregate traffic statistics of one distributed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MessageStats {
    /// λ̃/ã data messages (the per-pair payloads of Fig. 2).
    pub data_messages: usize,
    /// Residual reports and control broadcasts.
    pub control_messages: usize,
    /// Total bytes on the wire (payload + headers).
    pub total_bytes: usize,
}

impl MessageStats {
    /// Records one message.
    pub fn record(&mut self, message: &Message) {
        if message.is_data() {
            self.data_messages += 1;
        } else {
            self.control_messages += 1;
        }
        self.total_bytes += message.wire_bytes();
    }

    /// Total message count.
    #[must_use]
    pub fn total_messages(&self) -> usize {
        self.data_messages + self.control_messages
    }
}

/// Estimates the WAN wall-clock cost of the synchronous protocol.
///
/// Each iteration has four sequential latency-bound phases: the λ̃ scatter,
/// the ã gather, the residual reports, and the control broadcast. With a
/// coordinator co-located at the worst-positioned site, each phase costs at
/// most the maximum front-end↔datacenter latency, so
///
/// ```text
/// wall ≈ iterations × 4 × max_ij L_ij
/// ```
///
/// (computation is negligible next to WAN round trips at the paper's
/// sub-problem sizes).
#[must_use]
pub fn estimated_wan_seconds(iterations: usize, latency_s: &[Vec<f64>]) -> f64 {
    estimated_wan_seconds_live(iterations, latency_s, &[])
}

/// [`estimated_wan_seconds`] restricted to *live* links: latency columns of
/// evicted datacenters carry no protocol traffic in degraded mode, so they
/// must not set the per-phase stall unit. `evicted[j]` marks datacenter `j`
/// evicted; columns past the mask's length count as live. With every
/// datacenter evicted there is no WAN traffic at all and the estimate is 0.
#[must_use]
pub fn estimated_wan_seconds_live(
    iterations: usize,
    latency_s: &[Vec<f64>],
    evicted: &[bool],
) -> f64 {
    let l_max = latency_s
        .iter()
        .flat_map(|row| {
            row.iter()
                .enumerate()
                .filter(|&(j, _)| !evicted.get(j).copied().unwrap_or(false))
                .map(|(_, &l)| l)
        })
        .fold(0.0f64, f64::max);
    iterations as f64 * 4.0 * l_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::HEADER_BYTES;

    #[test]
    fn records_by_kind() {
        let mut s = MessageStats::default();
        s.record(&Message::LambdaTilde {
            frontend: 0,
            datacenter: 0,
            value: 1.0,
        });
        s.record(&Message::Control { stop: false });
        assert_eq!(s.data_messages, 1);
        assert_eq!(s.control_messages, 1);
        assert_eq!(s.total_messages(), 2);
        assert_eq!(s.total_bytes, HEADER_BYTES + 8 + HEADER_BYTES + 1);
    }

    #[test]
    fn wan_estimate_scales_with_iterations_and_latency() {
        let lat = vec![vec![0.010, 0.020], vec![0.015, 0.005]];
        let t = estimated_wan_seconds(100, &lat);
        assert!((t - 100.0 * 4.0 * 0.020).abs() < 1e-12);
        assert_eq!(estimated_wan_seconds(0, &lat), 0.0);
    }

    #[test]
    fn wan_estimate_ignores_evicted_links() {
        let lat = vec![vec![0.010, 0.020], vec![0.015, 0.005]];
        // Column 1 (the worst link) is evicted: the live max is 0.015.
        let t = estimated_wan_seconds_live(100, &lat, &[false, true]);
        assert!((t - 100.0 * 4.0 * 0.015).abs() < 1e-12);
        // An empty mask treats every link as live.
        assert_eq!(
            estimated_wan_seconds_live(100, &lat, &[]),
            estimated_wan_seconds(100, &lat)
        );
        // All datacenters evicted: no WAN traffic, zero estimate.
        assert_eq!(estimated_wan_seconds_live(100, &lat, &[true, true]), 0.0);
    }
}
