//! The supervised threaded engine as a `Transport` for the unified ADM-G
//! driver (`ufc_core::engine::drive`).
//!
//! The supervising coordinator owns one OS thread per node (spawned via
//! `crate::supervision`) and awaits every reply with `recv_timeout`
//! deadlines and an exponential backoff ladder; a worker that stays silent
//! past the ladder (and whose thread has exited) is resolved through the
//! [`FaultTracker`] state machine — respawned from the last checkpoint and
//! replayed, evicted (datacenters only), or reported as a typed
//! [`CoreError::NodeFailure`]. Worker threads are joined on every exit
//! path, including errors.
//!
//! The lockstep engine (`crate::engine_lockstep`) mirrors the same decision
//! machine step for step — both run under the same driver and share the
//! coordinator helpers — so a faulty lockstep run and a faulty threaded run
//! with the same [`FaultPlan`] produce identical iterates, statistics, and
//! fault reports (asserted in `tests/fault_injection.rs`).

use std::collections::HashSet;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use ufc_core::engine::{drive, BlockResiduals, IterationObserver, Transport};
use ufc_core::telemetry::{ObserverChain, TelemetryCollector, TrafficCounters};
use ufc_core::{AdmgSettings, BlockKind, BlockSchedule, CoreError};
use ufc_model::UfcInstance;

use crate::coordinator::{
    account_stragglers, column_of, finish, max_latency, record_a_traffic, record_control,
    record_lambda_traffic, reduce_residuals, row_of, HistoryEntry,
};
use crate::fault::{FaultPlan, FaultTracker, IntegrityState, NodeId, Resolution};
use crate::message::Message;
use crate::node::{DatacenterNode, FrontendNode, NodeResiduals};
use crate::runtime::DistRunReport;
use crate::snapshot::{CheckpointStore, DatacenterSnapshot, FrontendSnapshot};
use crate::stats::{estimated_wan_seconds_live, MessageStats};
use crate::supervision::{
    gather_phase, spawn_datacenter_worker, spawn_frontend_worker, DcCmd, FaultScript, FeCmd, Reply,
};

mod recovery;

/// Runs the supervised threaded engine under a fault plan. A trivial plan
/// (no scripted faults, checkpointing off — [`FaultPlan::none`]) reduces to
/// the plain threaded runtime: no extra traffic, byte-identical iterates,
/// and `fault: None` in the report.
pub(crate) fn run_supervised(
    settings: &AdmgSettings,
    instance: &UfcInstance,
    active_mu: bool,
    active_nu: bool,
    plan: FaultPlan,
    observer: &mut dyn IterationObserver,
) -> Result<DistRunReport, CoreError> {
    let tolerances = settings.scaled_tolerances(instance);
    let mut sup = Supervisor::new(instance, *settings, active_mu, active_nu, plan);
    let mut collector = settings.telemetry.then(TelemetryCollector::default);
    let outcome = match collector.as_mut() {
        Some(c) => {
            let mut chain = ObserverChain(&mut *c, observer);
            drive(&mut sup, settings, tolerances, &mut chain)
        }
        None => drive(&mut sup, settings, tolerances, observer),
    }
    .and_then(|outcome| {
        sup.final_gather(outcome.iterations)
            .map(|(lambda_rows, mu, d)| (outcome, lambda_rows, mu, d))
    });
    // Extract everything the report needs before the supervisor is consumed
    // by shutdown; the error path still joins every worker thread.
    let stats = sup.stats;
    let fault_report = sup.tracker.report.clone();
    let plan_trivial = sup.tracker.plan().is_trivial();
    let evicted = sup.tracker.evicted_mask();
    let stall_phases = sup.stall_phases;
    let integrity = sup.integrity.active().then_some(sup.integrity.counters);
    let shutdown = sup.shutdown();
    let (outcome, lambda_rows, mu, d) = outcome?;
    shutdown?;

    let (point, breakdown) = finish(instance, lambda_rows, mu, d, !active_nu)?;
    let estimated = estimated_wan_seconds_live(outcome.iterations, &instance.latency_s, &evicted)
        + fault_report.downtime_seconds
        + fault_report.straggler_seconds
        + stall_phases * max_latency(instance, &evicted);
    let report_fault = !plan_trivial || fault_report.checkpoints_taken > 0;
    let telemetry = collector.map(|c| {
        let mut t = c.into_telemetry();
        // Solver counters stay zero here: the per-node kernels live inside
        // the worker threads and are dropped with them at shutdown, so the
        // supervisor has nothing to read. Use the lockstep engine (which is
        // bit-identical) to observe the solver layer.
        t.traffic = Some(TrafficCounters {
            data_messages: stats.data_messages as u64,
            control_messages: stats.control_messages as u64,
            total_bytes: stats.total_bytes as u64,
            retransmissions: 0,
        });
        if report_fault {
            t.fault = Some(fault_report.counters());
        }
        t.integrity = integrity;
        t
    });
    Ok(DistRunReport {
        point,
        breakdown,
        iterations: outcome.iterations,
        converged: outcome.converged,
        stats,
        estimated_wan_seconds: estimated,
        retransmissions: 0,
        fault: report_fault.then_some(fault_report),
        integrity,
        telemetry,
    })
}

/// The supervising coordinator of the threaded runtime.
struct Supervisor<'a> {
    instance: &'a UfcInstance,
    settings: AdmgSettings,
    active_mu: bool,
    active_nu: bool,
    m: usize,
    n: usize,
    tracker: FaultTracker,
    store: CheckpointStore,
    history: Vec<HistoryEntry>,
    reply_tx: Sender<Reply>,
    reply_rx: Receiver<Reply>,
    fe_tx: Vec<Option<Sender<FeCmd>>>,
    dc_tx: Vec<Option<Sender<DcCmd>>>,
    fe_handles: Vec<Option<JoinHandle<()>>>,
    dc_handles: Vec<Option<JoinHandle<()>>>,
    stats: MessageStats,
    integrity: IntegrityState,
    /// First node whose residual report was non-finite this iteration —
    /// the divergence gate's suspect.
    suspect: Option<NodeId>,
    timeout: Duration,
    rounds: u32,
    checkpoint_interval: usize,
    /// Fault-induced full-phase stalls (partition windows), in phases.
    stall_phases: f64,
    // Per-iteration scratch, produced by one phase and consumed by the next.
    rows: Vec<Vec<f64>>,
    a_cols: Vec<Vec<f64>>,
    dc_residuals: Vec<Option<NodeResiduals>>,
    readmitted_now: Vec<usize>,
    membership_changed: bool,
    node_count: usize,
}

impl<'a> Supervisor<'a> {
    fn new(
        instance: &'a UfcInstance,
        settings: AdmgSettings,
        active_mu: bool,
        active_nu: bool,
        plan: FaultPlan,
    ) -> Self {
        let m = instance.m_frontends();
        let n = instance.n_datacenters();
        let (reply_tx, reply_rx) = channel::<Reply>();
        let timeout = plan.phase_timeout;
        let rounds = plan.backoff_rounds;
        let checkpoint_interval = plan.checkpoint_interval;
        let integrity = IntegrityState::new(plan.corruption.as_ref(), settings.verify_checksums);
        let mut sup = Supervisor {
            instance,
            settings,
            active_mu,
            active_nu,
            m,
            n,
            tracker: FaultTracker::new(plan, m, n),
            store: CheckpointStore::new(m, n),
            history: Vec::new(),
            reply_tx,
            reply_rx,
            fe_tx: (0..m).map(|_| None).collect(),
            dc_tx: (0..n).map(|_| None).collect(),
            fe_handles: (0..m).map(|_| None).collect(),
            dc_handles: (0..n).map(|_| None).collect(),
            stats: MessageStats::default(),
            integrity,
            suspect: None,
            timeout,
            rounds,
            checkpoint_interval,
            stall_phases: 0.0,
            rows: Vec::new(),
            a_cols: Vec::new(),
            dc_residuals: Vec::new(),
            readmitted_now: Vec::new(),
            membership_changed: false,
            node_count: m + n,
        };
        for i in 0..m {
            let node = FrontendNode::new(instance, i, &sup.settings);
            sup.spawn_frontend(i, node, 0);
        }
        for j in 0..n {
            let node = DatacenterNode::new(instance, j, &sup.settings, active_mu, active_nu);
            sup.spawn_datacenter(j, node, 0);
        }
        sup
    }

    fn spawn_frontend(&mut self, i: usize, node: FrontendNode, after: usize) {
        if let Some(old) = self.fe_handles[i].take() {
            let _ = old.join();
        }
        let script = FaultScript::for_node(self.tracker.plan(), NodeId::Frontend(i), after);
        let (tx, handle) = spawn_frontend_worker(i, node, script, self.reply_tx.clone());
        self.fe_tx[i] = Some(tx);
        self.fe_handles[i] = Some(handle);
    }

    fn spawn_datacenter(&mut self, j: usize, node: DatacenterNode, after: usize) {
        if let Some(old) = self.dc_handles[j].take() {
            let _ = old.join();
        }
        let script = FaultScript::for_node(self.tracker.plan(), NodeId::Datacenter(j), after);
        let (tx, handle) = spawn_datacenter_worker(j, node, script, self.reply_tx.clone());
        self.dc_tx[j] = Some(tx);
        self.dc_handles[j] = Some(handle);
    }

    fn send_fe(&self, i: usize, cmd: FeCmd) {
        if let Some(tx) = &self.fe_tx[i] {
            let _ = tx.send(cmd);
        }
    }

    fn send_dc(&self, j: usize, cmd: DcCmd) {
        if let Some(tx) = &self.dc_tx[j] {
            let _ = tx.send(cmd);
        }
    }

    fn alive(&self, node: NodeId) -> bool {
        match node {
            NodeId::Frontend(i) => self.fe_handles[i]
                .as_ref()
                .is_some_and(|h| !h.is_finished()),
            NodeId::Datacenter(j) => self.dc_handles[j]
                .as_ref()
                .is_some_and(|h| !h.is_finished()),
        }
    }

    /// Closes every command channel (ending the worker loops) and joins
    /// all threads. Called on every exit path, success or error.
    fn shutdown(mut self) -> Result<(), CoreError> {
        self.fe_tx.clear();
        self.dc_tx.clear();
        let mut first_panic = None;
        for slot in self.fe_handles.iter_mut().chain(self.dc_handles.iter_mut()) {
            if let Some(handle) = slot.take() {
                if handle.join().is_err() && first_panic.is_none() {
                    first_panic = Some(CoreError::node_failure(
                        "worker",
                        0,
                        "node thread panicked during shutdown",
                    ));
                }
            }
        }
        first_panic.map_or(Ok(()), Err)
    }
}

impl Transport for Supervisor<'_> {
    fn schedule(&self) -> BlockSchedule {
        BlockSchedule::for_instance(self.instance)
    }

    fn begin_iteration(&mut self, k: usize) -> Result<(), CoreError> {
        self.membership_changed = false;
        let readmitted_now = self.tracker.probe_readmissions();
        for &j in &readmitted_now {
            let node = DatacenterNode::new(
                self.instance,
                j,
                &self.settings,
                self.active_mu,
                self.active_nu,
            );
            self.store
                .put_datacenter(j, k - 1, node.snapshot().to_bytes());
            self.spawn_datacenter(j, node, k - 1);
            for i in 0..self.m {
                self.send_fe(
                    i,
                    FeCmd::Membership {
                        datacenter: j,
                        evict: false,
                    },
                );
                self.stats.record(&Message::Membership {
                    datacenter: j,
                    evict: false,
                });
            }
            self.membership_changed = true;
        }
        self.readmitted_now = readmitted_now;
        account_stragglers(&mut self.tracker, self.m, self.n, k);
        if self.tracker.plan().partition_active(k) {
            self.stall_phases += 2.0;
        }
        Ok(())
    }

    fn predict_lambda(&mut self, k: usize) -> Result<(), CoreError> {
        let m = self.m;
        for i in 0..m {
            self.send_fe(i, FeCmd::Predict { iteration: k });
        }
        let mut rows: Vec<Option<Vec<f64>>> = vec![None; m];
        let mut errors: Vec<Option<CoreError>> = vec![None; m];
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        // One broad gather loop: dead nodes surface per-ladder while live
        // stragglers stay pending, and a respawned node rejoins the same
        // pending set so no reply is ever consumed by a narrower filter.
        let mut respawned: HashSet<NodeId> = HashSet::new();
        loop {
            let missing = gather_phase(
                &self.reply_rx,
                &mut pending,
                self.timeout,
                self.rounds,
                |node| self.alive(node),
                |reply| match reply {
                    Reply::Lambda { i, iteration, row } if iteration == k => {
                        rows[i] = Some(row);
                        Some(NodeId::Frontend(i))
                    }
                    Reply::NodeError {
                        node: node @ NodeId::Frontend(i),
                        iteration,
                        error,
                    } if iteration == k => {
                        errors[i] = Some(error);
                        Some(node)
                    }
                    _ => None,
                },
            );
            if missing.is_empty() && pending.is_empty() {
                break;
            }
            for node in missing {
                let NodeId::Frontend(i) = node else {
                    unreachable!("predict phase only waits on front-ends")
                };
                if errors[i].is_some() {
                    // The worker already reported a typed rejection and
                    // stopped; do not respawn into the same poison.
                    continue;
                }
                if !respawned.insert(node) {
                    return Err(CoreError::node_failure(
                        node.to_string(),
                        k,
                        "no reply after checkpoint respawn",
                    ));
                }
                match self.tracker.resolve_crash(node, k)? {
                    Resolution::Recovered { .. } => {
                        self.respawn_frontend(i, k)?;
                        self.send_fe(i, FeCmd::Predict { iteration: k });
                        pending.insert(node);
                    }
                    Resolution::Evicted { .. } => {
                        unreachable!("front-ends are never evicted")
                    }
                }
            }
        }
        if let Some(error) = errors.into_iter().flatten().next() {
            return Err(error);
        }
        let mut rows: Vec<Vec<f64>> = rows
            .into_iter()
            .enumerate()
            .map(|(i, row)| {
                row.ok_or_else(|| {
                    CoreError::node_failure(
                        NodeId::Frontend(i).to_string(),
                        k,
                        "prediction missing after gather",
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        let phase_max = record_lambda_traffic(
            &mut self.stats,
            &mut self.tracker,
            None,
            &mut self.integrity,
            &mut rows,
            k,
        )?;
        self.stall_phases += (phase_max - 1) as f64;
        self.rows = rows;
        Ok(())
    }

    fn step_datacenters(&mut self, k: usize) -> Result<(), CoreError> {
        let (m, n) = (self.m, self.n);
        for j in 0..n {
            if self.tracker.is_evicted(j) {
                continue;
            }
            self.send_dc(
                j,
                DcCmd::Process {
                    iteration: k,
                    column: column_of(&self.rows, j),
                },
            );
        }
        let mut a_cols = vec![vec![0.0; m]; n];
        let mut d_vals = vec![0.0; n];
        let mut dc_residuals: Vec<Option<NodeResiduals>> = vec![None; n];
        let mut errors: Vec<Option<CoreError>> = vec![None; n];
        let mut pending: HashSet<NodeId> = (0..n)
            .filter(|&j| !self.tracker.is_evicted(j))
            .map(NodeId::Datacenter)
            .collect();
        // Same broad gather loop as `predict_lambda`: per-ladder dead-node
        // verdicts, stragglers keep pending, respawns rejoin the same set.
        let mut respawned: HashSet<NodeId> = HashSet::new();
        loop {
            let missing = gather_phase(
                &self.reply_rx,
                &mut pending,
                self.timeout,
                self.rounds,
                |node| self.alive(node),
                |reply| match reply {
                    Reply::DcStep {
                        j,
                        iteration,
                        a_tilde,
                        d,
                        residuals,
                    } if iteration == k => {
                        a_cols[j] = a_tilde;
                        d_vals[j] = d;
                        dc_residuals[j] = Some(residuals);
                        Some(NodeId::Datacenter(j))
                    }
                    Reply::NodeError {
                        node: node @ NodeId::Datacenter(j),
                        iteration,
                        error,
                    } if iteration == k => {
                        errors[j] = Some(error);
                        Some(node)
                    }
                    _ => None,
                },
            );
            if missing.is_empty() && pending.is_empty() {
                break;
            }
            for node in missing {
                let NodeId::Datacenter(j) = node else {
                    unreachable!("datacenter phase only waits on datacenters")
                };
                if errors[j].is_some() {
                    continue;
                }
                if !respawned.insert(node) {
                    return Err(CoreError::node_failure(
                        node.to_string(),
                        k,
                        "no reply after checkpoint respawn",
                    ));
                }
                match self.tracker.resolve_crash(node, k)? {
                    Resolution::Recovered { .. } => {
                        self.respawn_datacenter(j, k)?;
                        self.send_dc(
                            j,
                            DcCmd::Process {
                                iteration: k,
                                column: column_of(&self.rows, j),
                            },
                        );
                        pending.insert(node);
                    }
                    Resolution::Evicted { .. } => {
                        self.evict_datacenter(j);
                        self.membership_changed = true;
                    }
                }
            }
        }
        if let Some(error) = errors.into_iter().flatten().next() {
            return Err(error);
        }
        let mut phase_max = 1usize;
        for j in 0..n {
            if dc_residuals[j].is_some() {
                // a_cols[j] was moved into place by the accept closure; the
                // integrity layer may overwrite corrupted entries in place.
                phase_max = phase_max.max(record_a_traffic(
                    &mut self.stats,
                    &mut self.tracker,
                    None,
                    &mut self.integrity,
                    &mut a_cols[j],
                    j,
                    k,
                )?);
                // Storage-active datacenters report their corrected block
                // value on the control plane (same accounting as lockstep).
                if self
                    .instance
                    .storage
                    .as_ref()
                    .is_some_and(|sp| sp.active(j))
                {
                    self.stats.record(&Message::BlockReport {
                        datacenter: j,
                        block: BlockKind::Storage.wire_id(),
                        value: d_vals[j],
                    });
                }
            }
        }
        self.stall_phases += (phase_max - 1) as f64;
        self.a_cols = a_cols;
        self.dc_residuals = dc_residuals;
        Ok(())
    }

    fn correct(&mut self, k: usize) -> Result<BlockResiduals, CoreError> {
        let m = self.m;
        for i in 0..m {
            self.send_fe(
                i,
                FeCmd::Correct {
                    iteration: k,
                    a_row: row_of(&self.a_cols, i),
                },
            );
        }
        let mut fe_residuals: Vec<Option<NodeResiduals>> = vec![None; m];
        let mut pending: HashSet<NodeId> = (0..m).map(NodeId::Frontend).collect();
        let missing = gather_phase(
            &self.reply_rx,
            &mut pending,
            self.timeout,
            self.rounds,
            |node| self.alive(node),
            |reply| match reply {
                Reply::FeResidual {
                    i,
                    iteration,
                    residuals,
                } if iteration == k => {
                    fe_residuals[i] = Some(residuals);
                    Some(NodeId::Frontend(i))
                }
                _ => None,
            },
        );
        if let Some(node) = missing.first() {
            return Err(CoreError::node_failure(
                node.to_string(),
                k,
                "no reply in correction phase",
            ));
        }
        let fe_residuals: Vec<NodeResiduals> = fe_residuals
            .into_iter()
            .map(|r| r.unwrap_or_default())
            .collect();
        self.node_count = m + self.dc_residuals.iter().flatten().count();
        let (reduced, suspect) =
            reduce_residuals(&mut self.stats, &fe_residuals, &self.dc_residuals);
        self.suspect = suspect;
        Ok(reduced)
    }

    fn rollback(&mut self, k: usize) -> Result<Option<usize>, CoreError> {
        self.integrity.counters.divergence_trips += 1;
        // Every live node needs a finite checkpoint before any worker is
        // respawned — a partial restore would leave the deployment
        // inconsistent, so decline instead.
        let mut base = usize::MAX;
        let mut fe_snaps = Vec::with_capacity(self.m);
        for i in 0..self.m {
            let Some((it, blob)) = self.store.frontend(i) else {
                return Ok(None);
            };
            let snap = FrontendSnapshot::from_bytes(blob)?;
            if !snap.is_finite() {
                return Ok(None);
            }
            base = base.min(it);
            fe_snaps.push(snap);
        }
        let mut dc_snaps: Vec<Option<DatacenterSnapshot>> = Vec::with_capacity(self.n);
        for j in 0..self.n {
            if self.tracker.is_evicted(j) {
                dc_snaps.push(None);
                continue;
            }
            let Some((it, blob)) = self.store.datacenter(j) else {
                return Ok(None);
            };
            let snap = DatacenterSnapshot::from_bytes(blob)?;
            if !snap.is_finite() {
                return Ok(None);
            }
            base = base.min(it);
            dc_snaps.push(Some(snap));
        }
        let evicted = self.tracker.evicted_mask();
        for (i, snap) in fe_snaps.iter().enumerate() {
            let mut node = FrontendNode::new(self.instance, i, &self.settings);
            node.restore(snap)?;
            // The live membership view stays authoritative over whatever
            // the snapshot recorded.
            for (j, &gone) in evicted.iter().enumerate() {
                if gone {
                    node.set_evicted(j);
                } else {
                    node.clear_evicted(j);
                }
            }
            // The old worker is alive and blocked on its command channel:
            // close it first so the respawn's join cannot deadlock.
            self.fe_tx[i] = None;
            self.spawn_frontend(i, node, k);
        }
        for (j, snap) in dc_snaps.into_iter().enumerate() {
            let Some(snap) = snap else { continue };
            let mut node = DatacenterNode::new(
                self.instance,
                j,
                &self.settings,
                self.active_mu,
                self.active_nu,
            );
            node.restore(&snap)?;
            self.dc_tx[j] = None;
            self.spawn_datacenter(j, node, k);
        }
        // Buffered inputs may hold the very payloads that poisoned the run;
        // never replay them into the restored state.
        self.history.clear();
        self.integrity.counters.rollbacks += 1;
        Ok(Some(base))
    }

    fn divergence_suspect(&self) -> Option<String> {
        self.suspect
            .map(|node| node.to_string())
            .or_else(|| self.integrity.last_corrupted.clone())
    }

    fn finish_iteration(&mut self, k: usize, stop: bool) -> Result<(), CoreError> {
        record_control(&mut self.stats, stop, self.node_count);
        self.history.push(HistoryEntry {
            iteration: k,
            rows: std::mem::take(&mut self.rows),
            a_cols: std::mem::take(&mut self.a_cols),
        });
        if !stop
            && (self.membership_changed
                || (self.checkpoint_interval > 0 && k.is_multiple_of(self.checkpoint_interval)))
        {
            self.checkpoint_round(k)?;
        }
        Ok(())
    }
}
