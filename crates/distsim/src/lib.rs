//! Message-passing simulation of the distributed ADM-G protocol.
//!
//! The paper argues (§III, Fig. 2) that its 4-block ADM-G decomposes into a
//! *fully distributed* protocol between `M` front-end proxies and `N`
//! datacenters. This crate runs the algorithm that way — as independent
//! [`node`]s that only hold their own slice of the problem data and only
//! communicate through explicit [`message`]s:
//!
//! 1. each front-end solves its λ-sub-problem and sends `λ̃_ij` to
//!    datacenter `j`,
//! 2. each datacenter computes `μ̃_j` and `ν̃_j` locally,
//! 3. each datacenter solves its a-sub-problem and sends `ã_ij` back to
//!    front-end `i`,
//! 4. both sides update their dual replicas and apply the Gaussian
//!    back-substitution correction to the blocks they own,
//! 5. a coordinator max-reduces the per-node residuals and broadcasts the
//!    continue/stop decision.
//!
//! Two runtimes execute the same node logic: [`Runtime::Lockstep`] (a
//! deterministic round engine, bit-identical to `ufc_core::AdmgSolver` by
//! construction — asserted in tests) and [`Runtime::Threaded`] (one OS
//! thread per node over std::sync::mpsc channels). Both are `Transport`
//! implementations sequenced by the single transport-agnostic iteration
//! driver `ufc_core::engine::drive` — the λ→μ→ν→a prediction order, the
//! correction step, and the stop rule exist in exactly one place. Both
//! account every logical message and estimate the wall-clock cost of a
//! real WAN deployment from the latency matrix.
//!
//! # Failure model
//!
//! The threaded runtime is *supervised*: a deterministic, seeded
//! [`FaultPlan`] can script crash-stop failures (with or without recovery),
//! straggler delays, and partition windows. The coordinator awaits every
//! reply with `recv_timeout` deadlines and an exponential backoff ladder;
//! a node silent past its eviction deadline is respawned from its last
//! [`snapshot`] checkpoint and replayed, or — for datacenters only —
//! evicted so the survivors continue in degraded mode (the evicted `μ_j`
//! and `λ_·j` blocks are pinned to zero) until the node is readmitted.
//! Every fault decision is mirrored by the lockstep engine, so a faulty
//! run is reproducible and testable; accounting lands in a [`FaultReport`]
//! attached to the [`DistRunReport`].
//!
//! Orthogonally to crash faults, a seeded [`CorruptionConfig`] poisons
//! data payloads in flight (bit-flips, sign flips, NaN substitution,
//! magnitude scaling). With `AdmgSettings::verify_checksums` on, payloads
//! travel in CRC32-framed [`message`]s, corrupt copies are detected on
//! receive and retransmitted (bounded), and the run converges to the clean
//! answer; with verification off, delivered poison is caught by the
//! driver's divergence gate as a typed error — never a panic or a silently
//! wrong UFC.
//!
//! The multi-process socket engine extends both directions to a hostile
//! network: a [`BindConfig`] allows non-loopback listen addresses gated on
//! a shared [`AuthKey`] (challenge–response keyed MAC before any iteration
//! state moves), and the wire-level [`CorruptionKind`]s
//! (`FrameTruncate`/`FrameDuplicate`/`FrameReorder`) mangle real TCP
//! frames in the socket I/O pumps, repaired by the CRC + `Nak`/resend
//! ladder (`DistributedAdmg::run_sockets_corrupt`).
//!
//! # Example
//!
//! ```
//! use ufc_core::{AdmgSettings, Strategy};
//! use ufc_distsim::{DistributedAdmg, Runtime};
//! use ufc_model::scenario::ScenarioBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = ScenarioBuilder::paper_default().hours(1).build()?;
//! let report = DistributedAdmg::new(AdmgSettings::default())
//!     .run(&scenario.instances[0], Strategy::Hybrid, Runtime::Lockstep)?;
//! assert!(report.converged);
//! // Two data messages per (front-end, datacenter) pair per iteration.
//! assert_eq!(report.stats.data_messages, 2 * 10 * 4 * report.iterations);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod engine_lockstep;
mod engine_socket;
mod engine_threaded;
pub mod fault;
pub mod loss;
pub mod message;
pub mod node;
mod rng;
mod runtime;
pub mod snapshot;
pub mod stats;
mod supervision;
pub mod wire;
pub mod worker;

pub use fault::{
    CorruptionConfig, CorruptionKind, FaultPlan, FaultReport, NodeId, PartitionWindow,
};
pub use runtime::{DistRunReport, DistributedAdmg, Runtime, SocketOptions};
pub use snapshot::{CheckpointStore, DatacenterSnapshot, FrontendSnapshot};
pub use wire::{AuthKey, BindConfig};
