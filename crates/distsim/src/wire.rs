//! Session-layer framing of the multi-process socket runtime.
//!
//! Everything a coordinator and a worker process exchange travels as a
//! *wire frame*: a little-endian `u32` length prefix followed by a
//! self-verifying payload `[WIRE_MAGIC, kind, body (LE fields), crc32]`.
//! The length prefix lets [`FrameBuffer`] reassemble frames from the
//! arbitrary partial reads a real TCP stream produces; the CRC32 trailer
//! (same IEEE polynomial as [`crate::message`]) rejects bit-rot and framing
//! desynchronization with a typed [`CoreError::CorruptPayload`] instead of
//! a panic or a garbage parse.
//!
//! The payload vocabulary is deliberately small:
//!
//! * `Hello`/`Welcome` — the connect/accept handshake. A worker announces
//!   its session id, process index, and incarnation; the coordinator
//!   validates the session and answers with the serialized `RunConfig`
//!   (instance + settings + block activation), from which the worker builds
//!   its hosted node kernels exactly as the in-process engines do.
//! * `Cmd` — a node-addressed command (predict/correct/process/snapshot/
//!   membership/restore/finish), the socket spelling of the supervised
//!   runtime's `FeCmd`/`DcCmd`.
//! * `Reply` — a worker reply, decoded straight into the supervision
//!   layer's `Reply` so the coordinator's gather machinery
//!   (`supervision::gather_phase`) is shared verbatim with the threaded
//!   engine.
//! * `Shutdown` — orderly teardown.
//!
//! All `f64` fields travel as exact little-endian bit patterns, so a value
//! decoded on the far side is bit-identical to the value encoded — the
//! foundation of the socket engine's bitwise-equivalence guarantee.

use ufc_core::CoreError;
use ufc_model::{EmissionCostFn, QueueingCost, StorageParams, UfcInstance};

use crate::message::crc32;
use crate::node::NodeResiduals;
use crate::supervision::Reply;
use ufc_core::{AdmgSettings, BlockKind, BlockSchedule, SubproblemMethod};

/// First payload byte of every wire frame (distinct from
/// [`crate::message::FRAME_MAGIC`] so the two framings cannot be confused).
pub const WIRE_MAGIC: u8 = 0xFD;

/// Bytes of the little-endian length prefix in front of every payload.
pub const LENGTH_PREFIX_BYTES: usize = 4;

/// Hard upper bound on one wire-frame payload. Large enough for any
/// checkpoint blob or run configuration at the paper's scale (and far
/// beyond), small enough that a corrupted or hostile length prefix cannot
/// drive an unbounded allocation.
pub const MAX_WIRE_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// Bound on the element count of any length-prefixed vector inside a
/// payload; keeps a corrupted inner length from allocating gigabytes even
/// when the outer frame passed its size check.
const MAX_VEC_LEN: usize = MAX_WIRE_FRAME_BYTES / 8;

fn corrupt(context: String) -> CoreError {
    CoreError::corrupt_payload("wire", 0, context)
}

/// Wraps a payload in the on-stream framing: `[len u32 LE][payload]`.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_WIRE_FRAME_BYTES`] — encoders in
/// this module cannot produce such a payload.
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_WIRE_FRAME_BYTES,
        "wire payload of {} bytes exceeds the frame bound",
        payload.len()
    );
    let mut out = Vec::with_capacity(LENGTH_PREFIX_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame reassembly over partial reads: push whatever chunk the
/// socket produced, then drain complete payloads with
/// [`FrameBuffer::next_frame`].
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes (any size, including zero).
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete payload, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptPayload`] when the length prefix exceeds
    /// [`MAX_WIRE_FRAME_BYTES`] or is shorter than the minimum payload
    /// (magic + kind + CRC32) — the stream is desynchronized and cannot be
    /// trusted further.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CoreError> {
        if self.buf.len() < LENGTH_PREFIX_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            <[u8; 4]>::try_from(&self.buf[..LENGTH_PREFIX_BYTES])
                .map_err(|_| corrupt("length prefix is not 4 bytes".to_owned()))?,
        ) as usize;
        if len > MAX_WIRE_FRAME_BYTES {
            return Err(corrupt(format!(
                "length prefix {len} exceeds the {MAX_WIRE_FRAME_BYTES}-byte frame bound"
            )));
        }
        if len < 6 {
            return Err(corrupt(format!(
                "length prefix {len} is below the minimum payload size"
            )));
        }
        if self.buf.len() < LENGTH_PREFIX_BYTES + len {
            return Ok(None);
        }
        let payload = self.buf[LENGTH_PREFIX_BYTES..LENGTH_PREFIX_BYTES + len].to_vec();
        self.buf.drain(..LENGTH_PREFIX_BYTES + len);
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet drained.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

// ---- cursor readers (typed errors, never a panic) -----------------------

fn take<const N: usize>(bytes: &[u8], pos: &mut usize) -> Result<[u8; N], CoreError> {
    let end = *pos + N;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| corrupt(format!("payload truncated at byte {pos}")))?;
    *pos = end;
    <[u8; N]>::try_from(slice).map_err(|_| corrupt(format!("payload truncated at byte {pos}")))
}

fn get_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, CoreError> {
    Ok(take::<1>(bytes, pos)?[0])
}

fn get_bool(bytes: &[u8], pos: &mut usize) -> Result<bool, CoreError> {
    match get_u8(bytes, pos)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(corrupt(format!("bad boolean byte {other}"))),
    }
}

fn get_u32(bytes: &[u8], pos: &mut usize) -> Result<usize, CoreError> {
    Ok(u32::from_le_bytes(take::<4>(bytes, pos)?) as usize)
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CoreError> {
    Ok(u64::from_le_bytes(take::<8>(bytes, pos)?))
}

fn get_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, CoreError> {
    Ok(f64::from_le_bytes(take::<8>(bytes, pos)?))
}

fn get_f64s(bytes: &[u8], pos: &mut usize) -> Result<Vec<f64>, CoreError> {
    let len = get_u32(bytes, pos)?;
    if len > MAX_VEC_LEN {
        return Err(corrupt(format!("vector length {len} exceeds the bound")));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(get_f64(bytes, pos)?);
    }
    Ok(out)
}

fn get_blob(bytes: &[u8], pos: &mut usize) -> Result<Vec<u8>, CoreError> {
    let len = get_u32(bytes, pos)?;
    if len > MAX_WIRE_FRAME_BYTES {
        return Err(corrupt(format!("blob length {len} exceeds the bound")));
    }
    let end = *pos + len;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| corrupt(format!("blob truncated at byte {pos}")))?;
    *pos = end;
    Ok(slice.to_vec())
}

fn put_u32(buf: &mut Vec<u8>, v: usize) {
    buf.extend_from_slice(&(v as u32).to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, values: &[f64]) {
    put_u32(buf, values.len());
    for &v in values {
        put_f64(buf, v);
    }
}

fn put_blob(buf: &mut Vec<u8>, blob: &[u8]) {
    put_u32(buf, blob.len());
    buf.extend_from_slice(blob);
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

// ---- protocol frames ----------------------------------------------------

/// A node-addressed command from the coordinator to a worker process — the
/// socket spelling of the supervised runtime's `FeCmd`/`DcCmd`, plus the
/// `Restore` verb checkpoint-restart needs when the node kernel lives in
/// another process.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum NodeCmd {
    /// Run the λ prediction for `iteration` (front-end nodes).
    Predict { iteration: usize },
    /// Apply the gathered ã row and correct (front-end nodes).
    Correct { iteration: usize, a_row: Vec<f64> },
    /// Run the μ/ν/a steps on the gathered λ̃ column (datacenter nodes).
    Process { iteration: usize, column: Vec<f64> },
    /// Serialize the iterate slice for a checkpoint round.
    Snapshot { iteration: usize },
    /// Apply a membership change for `datacenter` (front-end nodes).
    Membership { datacenter: usize, evict: bool },
    /// Restore the node kernel from a serialized snapshot blob.
    Restore { blob: Vec<u8> },
    /// Ship the final iterate slice.
    Finish,
}

/// One frame of the coordinator↔worker session protocol.
#[derive(Debug, PartialEq)]
pub(crate) enum WireFrame {
    /// Worker → coordinator: connect/accept handshake announcement.
    Hello {
        /// Run-unique session id; a stale worker from an earlier run is
        /// rejected at accept.
        session: u64,
        /// Which process slot this worker fills.
        process: usize,
        /// Respawn generation (0 for the first spawn).
        incarnation: u32,
    },
    /// Coordinator → worker: handshake answer carrying the serialized
    /// [`RunConfig`].
    Welcome { config: Vec<u8> },
    /// Coordinator → worker: a command for hosted node `node` (front-ends
    /// `0..m`, datacenters `m..m+n`).
    Cmd { node: usize, cmd: NodeCmd },
    /// Worker → coordinator: a node reply.
    Reply(Reply),
    /// Coordinator → worker: orderly exit.
    Shutdown,
}

impl WireFrame {
    fn kind_tag(&self) -> u8 {
        match self {
            WireFrame::Hello { .. } => 0,
            WireFrame::Welcome { .. } => 1,
            WireFrame::Cmd { .. } => 2,
            WireFrame::Reply(_) => 3,
            WireFrame::Shutdown => 4,
        }
    }

    /// Serializes into a self-verifying payload
    /// `[WIRE_MAGIC, kind, body, crc32]` (not yet length-prefixed — see
    /// [`frame`]).
    pub(crate) fn encode_payload(&self) -> Vec<u8> {
        let mut buf = vec![WIRE_MAGIC, self.kind_tag()];
        match self {
            WireFrame::Hello {
                session,
                process,
                incarnation,
            } => {
                put_u64(&mut buf, *session);
                put_u32(&mut buf, *process);
                buf.extend_from_slice(&incarnation.to_le_bytes());
            }
            WireFrame::Welcome { config } => put_blob(&mut buf, config),
            WireFrame::Cmd { node, cmd } => {
                put_u32(&mut buf, *node);
                match cmd {
                    NodeCmd::Predict { iteration } => {
                        buf.push(0);
                        put_u64(&mut buf, *iteration as u64);
                    }
                    NodeCmd::Correct { iteration, a_row } => {
                        buf.push(1);
                        put_u64(&mut buf, *iteration as u64);
                        put_f64s(&mut buf, a_row);
                    }
                    NodeCmd::Process { iteration, column } => {
                        buf.push(2);
                        put_u64(&mut buf, *iteration as u64);
                        put_f64s(&mut buf, column);
                    }
                    NodeCmd::Snapshot { iteration } => {
                        buf.push(3);
                        put_u64(&mut buf, *iteration as u64);
                    }
                    NodeCmd::Membership { datacenter, evict } => {
                        buf.push(4);
                        put_u32(&mut buf, *datacenter);
                        put_bool(&mut buf, *evict);
                    }
                    NodeCmd::Restore { blob } => {
                        buf.push(5);
                        put_blob(&mut buf, blob);
                    }
                    NodeCmd::Finish => buf.push(6),
                }
            }
            WireFrame::Reply(reply) => match reply {
                Reply::Lambda { i, iteration, row } => {
                    buf.push(0);
                    put_u32(&mut buf, *i);
                    put_u64(&mut buf, *iteration as u64);
                    put_f64s(&mut buf, row);
                }
                Reply::FeResidual {
                    i,
                    iteration,
                    residuals,
                } => {
                    buf.push(1);
                    put_u32(&mut buf, *i);
                    put_u64(&mut buf, *iteration as u64);
                    put_f64(&mut buf, residuals.link);
                    put_f64(&mut buf, residuals.balance);
                    put_f64(&mut buf, residuals.movement);
                }
                Reply::DcStep {
                    j,
                    iteration,
                    a_tilde,
                    d,
                    residuals,
                } => {
                    buf.push(2);
                    put_u32(&mut buf, *j);
                    put_u64(&mut buf, *iteration as u64);
                    put_f64s(&mut buf, a_tilde);
                    put_f64(&mut buf, *d);
                    put_f64(&mut buf, residuals.link);
                    put_f64(&mut buf, residuals.balance);
                    put_f64(&mut buf, residuals.movement);
                }
                Reply::FeSnapshot { i, iteration, blob } => {
                    buf.push(3);
                    put_u32(&mut buf, *i);
                    put_u64(&mut buf, *iteration as u64);
                    put_blob(&mut buf, blob);
                }
                Reply::DcSnapshot { j, iteration, blob } => {
                    buf.push(4);
                    put_u32(&mut buf, *j);
                    put_u64(&mut buf, *iteration as u64);
                    put_blob(&mut buf, blob);
                }
                Reply::FeFinal { i, lambda } => {
                    buf.push(5);
                    put_u32(&mut buf, *i);
                    put_f64s(&mut buf, lambda);
                }
                Reply::DcFinal { j, mu, d } => {
                    buf.push(6);
                    put_u32(&mut buf, *j);
                    put_f64(&mut buf, *mu);
                    put_f64(&mut buf, *d);
                }
            },
            WireFrame::Shutdown => {}
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Verifies and parses a payload produced by
    /// [`WireFrame::encode_payload`].
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptPayload`] on truncation, bad magic, unknown
    /// kind, trailing garbage, or CRC32 mismatch. Never panics.
    pub(crate) fn decode_payload(bytes: &[u8]) -> Result<WireFrame, CoreError> {
        if bytes.len() < 2 + 4 {
            return Err(corrupt(format!(
                "payload too short ({} bytes)",
                bytes.len()
            )));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = <[u8; 4]>::try_from(trailer)
            .map(u32::from_le_bytes)
            .map_err(|_| corrupt("payload trailer is not 4 bytes".to_owned()))?;
        let computed = crc32(body);
        if stored != computed {
            return Err(corrupt(format!(
                "crc32 mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        if body[0] != WIRE_MAGIC {
            return Err(corrupt(format!("bad wire magic {:#04x}", body[0])));
        }
        let kind = body[1];
        let mut pos = 2;
        let frame = match kind {
            0 => WireFrame::Hello {
                session: get_u64(body, &mut pos)?,
                process: get_u32(body, &mut pos)?,
                incarnation: u32::from_le_bytes(take::<4>(body, &mut pos)?),
            },
            1 => WireFrame::Welcome {
                config: get_blob(body, &mut pos)?,
            },
            2 => {
                let node = get_u32(body, &mut pos)?;
                let cmd = match get_u8(body, &mut pos)? {
                    0 => NodeCmd::Predict {
                        iteration: get_u64(body, &mut pos)? as usize,
                    },
                    1 => NodeCmd::Correct {
                        iteration: get_u64(body, &mut pos)? as usize,
                        a_row: get_f64s(body, &mut pos)?,
                    },
                    2 => NodeCmd::Process {
                        iteration: get_u64(body, &mut pos)? as usize,
                        column: get_f64s(body, &mut pos)?,
                    },
                    3 => NodeCmd::Snapshot {
                        iteration: get_u64(body, &mut pos)? as usize,
                    },
                    4 => NodeCmd::Membership {
                        datacenter: get_u32(body, &mut pos)?,
                        evict: get_bool(body, &mut pos)?,
                    },
                    5 => NodeCmd::Restore {
                        blob: get_blob(body, &mut pos)?,
                    },
                    6 => NodeCmd::Finish,
                    other => return Err(corrupt(format!("unknown command tag {other}"))),
                };
                WireFrame::Cmd { node, cmd }
            }
            3 => {
                let reply = match get_u8(body, &mut pos)? {
                    0 => Reply::Lambda {
                        i: get_u32(body, &mut pos)?,
                        iteration: get_u64(body, &mut pos)? as usize,
                        row: get_f64s(body, &mut pos)?,
                    },
                    1 => Reply::FeResidual {
                        i: get_u32(body, &mut pos)?,
                        iteration: get_u64(body, &mut pos)? as usize,
                        residuals: NodeResiduals {
                            link: get_f64(body, &mut pos)?,
                            balance: get_f64(body, &mut pos)?,
                            movement: get_f64(body, &mut pos)?,
                        },
                    },
                    2 => Reply::DcStep {
                        j: get_u32(body, &mut pos)?,
                        iteration: get_u64(body, &mut pos)? as usize,
                        a_tilde: get_f64s(body, &mut pos)?,
                        d: get_f64(body, &mut pos)?,
                        residuals: NodeResiduals {
                            link: get_f64(body, &mut pos)?,
                            balance: get_f64(body, &mut pos)?,
                            movement: get_f64(body, &mut pos)?,
                        },
                    },
                    3 => Reply::FeSnapshot {
                        i: get_u32(body, &mut pos)?,
                        iteration: get_u64(body, &mut pos)? as usize,
                        blob: get_blob(body, &mut pos)?,
                    },
                    4 => Reply::DcSnapshot {
                        j: get_u32(body, &mut pos)?,
                        iteration: get_u64(body, &mut pos)? as usize,
                        blob: get_blob(body, &mut pos)?,
                    },
                    5 => Reply::FeFinal {
                        i: get_u32(body, &mut pos)?,
                        lambda: get_f64s(body, &mut pos)?,
                    },
                    6 => Reply::DcFinal {
                        j: get_u32(body, &mut pos)?,
                        mu: get_f64(body, &mut pos)?,
                        d: get_f64(body, &mut pos)?,
                    },
                    other => return Err(corrupt(format!("unknown reply tag {other}"))),
                };
                WireFrame::Reply(reply)
            }
            4 => WireFrame::Shutdown,
            other => return Err(corrupt(format!("unknown frame kind {other}"))),
        };
        if pos != body.len() {
            return Err(corrupt(format!(
                "trailing garbage: payload body is {} bytes, parsed {pos}",
                body.len()
            )));
        }
        Ok(frame)
    }

    /// The payload wrapped in the on-stream length prefix — what actually
    /// goes on the socket.
    pub(crate) fn to_wire(&self) -> Vec<u8> {
        frame(&self.encode_payload())
    }
}

// ---- run configuration --------------------------------------------------

/// Everything a worker process needs to rebuild its node kernels exactly
/// as the in-process engines do: the problem instance, the solver
/// settings, the strategy's block activation, and the process count (from
/// which each worker derives its hosted node set).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RunConfig {
    pub(crate) instance: UfcInstance,
    pub(crate) settings: AdmgSettings,
    pub(crate) active_mu: bool,
    pub(crate) active_nu: bool,
    pub(crate) processes: usize,
}

impl RunConfig {
    /// Serializes the configuration; every `f64` as its exact LE bit
    /// pattern.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let inst = &self.instance;
        let s = &self.settings;
        let mut buf = Vec::new();
        put_u32(&mut buf, inst.m_frontends());
        put_u32(&mut buf, inst.n_datacenters());
        put_f64s(&mut buf, &inst.arrivals);
        put_f64s(&mut buf, &inst.capacities);
        put_f64s(&mut buf, &inst.alpha);
        put_f64s(&mut buf, &inst.beta);
        put_f64s(&mut buf, &inst.mu_max);
        put_f64s(&mut buf, &inst.grid_price);
        put_f64(&mut buf, inst.fuel_cell_price);
        put_f64s(&mut buf, &inst.carbon_t_per_mwh);
        for row in &inst.latency_s {
            put_f64s(&mut buf, row);
        }
        put_f64(&mut buf, inst.weight_per_server);
        put_f64(&mut buf, inst.slot_hours);
        for cost in &inst.emission_cost {
            match cost {
                EmissionCostFn::Linear { rate } => {
                    buf.push(0);
                    put_f64(&mut buf, *rate);
                }
                EmissionCostFn::Quadratic { linear, quad } => {
                    buf.push(1);
                    put_f64(&mut buf, *linear);
                    put_f64(&mut buf, *quad);
                }
                EmissionCostFn::Stepped { thresholds, rates } => {
                    buf.push(2);
                    put_f64s(&mut buf, thresholds);
                    put_f64s(&mut buf, rates);
                }
            }
        }
        match &inst.queueing {
            None => buf.push(0),
            Some(q) => {
                buf.push(1);
                put_f64(&mut buf, q.base_delay_s);
                put_f64(&mut buf, q.weight);
                put_f64(&mut buf, q.max_utilization);
            }
        }
        match &inst.storage {
            None => buf.push(0),
            Some(sp) => {
                buf.push(1);
                put_f64s(&mut buf, &sp.capacity_mwh);
                put_f64s(&mut buf, &sp.charge_mwh);
                put_f64s(&mut buf, &sp.charge_rate_mw);
                put_f64s(&mut buf, &sp.discharge_rate_mw);
                put_f64s(&mut buf, &sp.value_per_mwh);
                put_f64(&mut buf, sp.degradation_per_mwh);
                put_f64s(&mut buf, &sp.ramp_mw);
                put_f64s(&mut buf, &sp.mu_prev_mw);
            }
        }
        // Schedule echo: the block kinds the coordinator will drive, in
        // order. The worker cross-checks this against the schedule its
        // decoded instance implies, so a coordinator/worker version skew
        // (one side scheduling a block the other does not know) is a typed
        // handshake error instead of a silent numeric divergence.
        let schedule = BlockSchedule::for_instance(inst);
        buf.push(schedule.len() as u8);
        for block in schedule.blocks() {
            buf.push(block.kind.wire_id());
        }
        put_f64(&mut buf, s.rho);
        put_f64(&mut buf, s.epsilon);
        put_u64(&mut buf, s.max_iterations as u64);
        put_f64(&mut buf, s.eps_link);
        put_f64(&mut buf, s.eps_balance);
        put_f64(&mut buf, s.eps_dual);
        buf.push(match s.method {
            SubproblemMethod::ActiveSet => 0,
            SubproblemMethod::Fista => 1,
        });
        put_u64(&mut buf, s.num_threads as u64);
        put_bool(&mut buf, s.cache_factorizations);
        put_bool(&mut buf, s.rank1_kkt);
        put_bool(&mut buf, s.blocked_factorizations);
        put_bool(&mut buf, s.telemetry);
        put_bool(&mut buf, s.verify_checksums);
        put_f64(&mut buf, s.divergence_kappa);
        put_u64(&mut buf, s.divergence_window as u64);
        put_bool(&mut buf, s.divergence_rollback);
        put_bool(&mut buf, self.active_mu);
        put_bool(&mut buf, self.active_nu);
        put_u32(&mut buf, self.processes);
        buf
    }

    /// Rebuilds the configuration; the instance is re-validated through
    /// [`UfcInstance::new`], so a worker can never run on a garbled
    /// problem.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptPayload`] on truncation and
    /// [`CoreError::Model`] when the decoded instance fails validation.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut pos = 0;
        let m = get_u32(bytes, &mut pos)?;
        let n = get_u32(bytes, &mut pos)?;
        if m == 0 || n == 0 || m > MAX_VEC_LEN || n > MAX_VEC_LEN {
            return Err(corrupt(format!("implausible dimensions {m}x{n}")));
        }
        let arrivals = get_f64s(bytes, &mut pos)?;
        let capacities = get_f64s(bytes, &mut pos)?;
        let alpha = get_f64s(bytes, &mut pos)?;
        let beta = get_f64s(bytes, &mut pos)?;
        let mu_max = get_f64s(bytes, &mut pos)?;
        let grid_price = get_f64s(bytes, &mut pos)?;
        let fuel_cell_price = get_f64(bytes, &mut pos)?;
        let carbon_t_per_mwh = get_f64s(bytes, &mut pos)?;
        let mut latency_s = Vec::with_capacity(m);
        for _ in 0..m {
            latency_s.push(get_f64s(bytes, &mut pos)?);
        }
        let weight_per_server = get_f64(bytes, &mut pos)?;
        let slot_hours = get_f64(bytes, &mut pos)?;
        let mut emission_cost = Vec::with_capacity(n);
        for _ in 0..n {
            emission_cost.push(match get_u8(bytes, &mut pos)? {
                0 => EmissionCostFn::Linear {
                    rate: get_f64(bytes, &mut pos)?,
                },
                1 => EmissionCostFn::Quadratic {
                    linear: get_f64(bytes, &mut pos)?,
                    quad: get_f64(bytes, &mut pos)?,
                },
                2 => EmissionCostFn::Stepped {
                    thresholds: get_f64s(bytes, &mut pos)?,
                    rates: get_f64s(bytes, &mut pos)?,
                },
                other => return Err(corrupt(format!("unknown emission-cost tag {other}"))),
            });
        }
        let queueing = match get_u8(bytes, &mut pos)? {
            0 => None,
            1 => Some(QueueingCost {
                base_delay_s: get_f64(bytes, &mut pos)?,
                weight: get_f64(bytes, &mut pos)?,
                max_utilization: get_f64(bytes, &mut pos)?,
            }),
            other => return Err(corrupt(format!("unknown queueing tag {other}"))),
        };
        let storage = match get_u8(bytes, &mut pos)? {
            0 => None,
            1 => Some(StorageParams {
                capacity_mwh: get_f64s(bytes, &mut pos)?,
                charge_mwh: get_f64s(bytes, &mut pos)?,
                charge_rate_mw: get_f64s(bytes, &mut pos)?,
                discharge_rate_mw: get_f64s(bytes, &mut pos)?,
                value_per_mwh: get_f64s(bytes, &mut pos)?,
                degradation_per_mwh: get_f64(bytes, &mut pos)?,
                ramp_mw: get_f64s(bytes, &mut pos)?,
                mu_prev_mw: get_f64s(bytes, &mut pos)?,
            }),
            other => return Err(corrupt(format!("unknown storage tag {other}"))),
        };
        let echo_len = get_u8(bytes, &mut pos)? as usize;
        let mut echoed_kinds = Vec::with_capacity(echo_len.min(16));
        for _ in 0..echo_len {
            let id = get_u8(bytes, &mut pos)?;
            let kind = BlockKind::from_wire_id(id)
                .ok_or_else(|| corrupt(format!("unknown block wire id {id} in schedule echo")))?;
            echoed_kinds.push(kind);
        }
        let settings = AdmgSettings {
            rho: get_f64(bytes, &mut pos)?,
            epsilon: get_f64(bytes, &mut pos)?,
            max_iterations: get_u64(bytes, &mut pos)? as usize,
            eps_link: get_f64(bytes, &mut pos)?,
            eps_balance: get_f64(bytes, &mut pos)?,
            eps_dual: get_f64(bytes, &mut pos)?,
            method: match get_u8(bytes, &mut pos)? {
                0 => SubproblemMethod::ActiveSet,
                1 => SubproblemMethod::Fista,
                other => return Err(corrupt(format!("unknown method tag {other}"))),
            },
            num_threads: get_u64(bytes, &mut pos)? as usize,
            cache_factorizations: get_bool(bytes, &mut pos)?,
            rank1_kkt: get_bool(bytes, &mut pos)?,
            blocked_factorizations: get_bool(bytes, &mut pos)?,
            telemetry: get_bool(bytes, &mut pos)?,
            verify_checksums: get_bool(bytes, &mut pos)?,
            divergence_kappa: get_f64(bytes, &mut pos)?,
            divergence_window: get_u64(bytes, &mut pos)? as usize,
            divergence_rollback: get_bool(bytes, &mut pos)?,
        };
        let active_mu = get_bool(bytes, &mut pos)?;
        let active_nu = get_bool(bytes, &mut pos)?;
        let processes = get_u32(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(corrupt(format!(
                "trailing garbage: config is {} bytes, parsed {pos}",
                bytes.len()
            )));
        }
        let mut instance = UfcInstance::new(
            arrivals,
            capacities,
            alpha,
            beta,
            mu_max,
            grid_price,
            fuel_cell_price,
            carbon_t_per_mwh,
            latency_s,
            weight_per_server,
            emission_cost,
            slot_hours,
        )
        .map_err(CoreError::Model)?;
        instance.queueing = queueing;
        if let Some(sp) = storage {
            instance = instance.with_storage(sp).map_err(CoreError::Model)?;
        }
        // The echoed schedule must match what this instance implies — a
        // mismatch means the two ends would drive different block
        // pipelines.
        let local: Vec<BlockKind> = BlockSchedule::for_instance(&instance)
            .blocks()
            .iter()
            .map(|b| b.kind)
            .collect();
        if echoed_kinds != local {
            return Err(corrupt(format!(
                "schedule echo {echoed_kinds:?} disagrees with the instance's schedule {local:?}"
            )));
        }
        Ok(RunConfig {
            instance,
            settings,
            active_mu,
            active_nu,
            processes,
        })
    }
}

/// The node ids (front-ends `0..m`, datacenters `m..m+n`) hosted by
/// process `p` of `processes`: a round-robin split, so one process per
/// node when `processes == m + n` and everything on process 0 when
/// `processes == 1`.
#[must_use]
pub fn hosted_nodes(p: usize, processes: usize, m: usize, n: usize) -> Vec<usize> {
    (0..m + n).filter(|id| id % processes == p).collect()
}

/// Which process hosts node `id` under the round-robin split.
#[must_use]
pub fn process_of(id: usize, processes: usize) -> usize {
    id % processes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<WireFrame> {
        vec![
            WireFrame::Hello {
                session: 0xDEAD_BEEF_0042,
                process: 3,
                incarnation: 2,
            },
            WireFrame::Welcome {
                config: vec![1, 2, 3, 4, 5],
            },
            WireFrame::Cmd {
                node: 7,
                cmd: NodeCmd::Correct {
                    iteration: 19,
                    a_row: vec![0.25, -1.5, 3.75e-3],
                },
            },
            WireFrame::Cmd {
                node: 11,
                cmd: NodeCmd::Membership {
                    datacenter: 1,
                    evict: true,
                },
            },
            WireFrame::Cmd {
                node: 0,
                cmd: NodeCmd::Restore {
                    blob: vec![9, 8, 7],
                },
            },
            WireFrame::Reply(Reply::DcStep {
                j: 2,
                iteration: 5,
                a_tilde: vec![1.0, 2.0],
                d: -0.75,
                residuals: NodeResiduals {
                    link: 0.1,
                    balance: 0.2,
                    movement: 0.3,
                },
            }),
            WireFrame::Reply(Reply::FeFinal {
                i: 4,
                lambda: vec![0.5; 4],
            }),
            WireFrame::Reply(Reply::DcFinal {
                j: 1,
                mu: 0.42,
                d: 0.125,
            }),
            WireFrame::Shutdown,
        ]
    }

    #[test]
    fn payloads_round_trip() {
        for frame in sample_frames() {
            let payload = frame.encode_payload();
            assert_eq!(WireFrame::decode_payload(&payload).unwrap(), frame);
        }
    }

    #[test]
    fn tampered_payloads_fail_typed() {
        let payload = WireFrame::Cmd {
            node: 1,
            cmd: NodeCmd::Predict { iteration: 3 },
        }
        .encode_payload();
        for pos in 0..payload.len() {
            let mut bad = payload.clone();
            bad[pos] ^= 0x20;
            let err = WireFrame::decode_payload(&bad).unwrap_err();
            assert!(
                matches!(err, CoreError::CorruptPayload { .. }),
                "byte {pos}: {err}"
            );
        }
        for len in 0..payload.len() {
            assert!(WireFrame::decode_payload(&payload[..len]).is_err());
        }
    }

    #[test]
    fn frame_buffer_reassembles_over_partial_reads() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.to_wire());
        }
        // Feed the concatenated stream in awkward 3-byte chunks.
        let mut buf = FrameBuffer::new();
        let mut decoded = Vec::new();
        for chunk in stream.chunks(3) {
            buf.push(chunk);
            while let Some(payload) = buf.next_frame().unwrap() {
                decoded.push(WireFrame::decode_payload(&payload).unwrap());
            }
        }
        assert_eq!(decoded, frames);
        assert_eq!(buf.pending_bytes(), 0);
    }

    #[test]
    fn frame_buffer_rejects_hostile_length_prefixes() {
        let mut buf = FrameBuffer::new();
        buf.push(&u32::MAX.to_le_bytes());
        assert!(buf.next_frame().is_err(), "oversized prefix must fail");

        let mut buf = FrameBuffer::new();
        buf.push(&2u32.to_le_bytes());
        assert!(buf.next_frame().is_err(), "undersized prefix must fail");
    }

    #[test]
    fn run_config_round_trips_bit_exactly() {
        use ufc_model::EmissionCostFn;
        let mut instance = UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::Quadratic {
                    linear: 20.0,
                    quad: 0.5,
                },
            ],
            1.0,
        )
        .unwrap();
        instance.queueing = Some(QueueingCost::default_interactive());
        let config = RunConfig {
            instance,
            settings: AdmgSettings::default()
                .with_threads(3)
                .with_rank1_kkt(true)
                .with_blocked_factorizations(true),
            active_mu: true,
            active_nu: false,
            processes: 4,
        };
        let back = RunConfig::decode(&config.encode()).unwrap();
        assert_eq!(back, config);
        assert!(RunConfig::decode(&config.encode()[..40]).is_err());
    }

    #[test]
    fn run_config_round_trips_storage_and_checks_the_schedule_echo() {
        use ufc_model::StorageFleet;
        let instance = UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
        .with_storage(
            StorageFleet::new(2.0, 1.0)
                .initial_charge_frac(0.5)
                .value_per_mwh(40.0)
                .degradation(2.0)
                .ramp_mw(0.3)
                .initial_params(2),
        )
        .unwrap();
        let config = RunConfig {
            instance,
            settings: AdmgSettings::default(),
            active_mu: true,
            active_nu: true,
            processes: 2,
        };
        let bytes = config.encode();
        let back = RunConfig::decode(&bytes).unwrap();
        assert_eq!(back, config);
        // Bit-exact f64 round trip of the charge state.
        let sp = back.instance.storage.as_ref().unwrap();
        assert_eq!(sp.charge_mwh[0].to_bits(), 1.0f64.to_bits());

        // The 5-block schedule echo is the byte run [5, 0, 1, 2, 3, 4]
        // (count, then Routing/FuelCell/Grid/Storage/Auxiliary wire ids).
        let echo = [5u8, 0, 1, 2, 3, 4];
        let at = (0..bytes.len() - echo.len())
            .find(|&p| bytes[p..p + echo.len()] == echo)
            .expect("schedule echo not found in the encoded config");
        // Dropping the storage block from the echo must fail the
        // cross-check even though every field still parses.
        let mut skewed = bytes.clone();
        skewed[at + 4] = 4; // Storage -> Auxiliary
        let err = RunConfig::decode(&skewed).unwrap_err();
        assert!(err.to_string().contains("schedule echo"), "{err}");
        // An unregistered block id is rejected before the cross-check.
        let mut unknown = bytes.clone();
        unknown[at + 4] = 9;
        let err = RunConfig::decode(&unknown).unwrap_err();
        assert!(err.to_string().contains("unknown block wire id"), "{err}");
        // Truncating inside the storage section is a typed error.
        assert!(RunConfig::decode(&bytes[..at - 3]).is_err());
    }

    #[test]
    fn node_partition_is_total_and_disjoint() {
        let (m, n) = (10, 4);
        for processes in [1, 2, 4, 14] {
            let mut seen = vec![false; m + n];
            for p in 0..processes {
                for id in hosted_nodes(p, processes, m, n) {
                    assert!(!seen[id], "node {id} hosted twice");
                    seen[id] = true;
                    assert_eq!(process_of(id, processes), p);
                }
            }
            assert!(seen.iter().all(|&s| s), "every node must be hosted");
        }
    }
}
