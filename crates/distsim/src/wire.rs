//! Session-layer framing of the multi-process socket runtime.
//!
//! Everything a coordinator and a worker process exchange travels as a
//! *wire frame*: a little-endian `u32` length prefix followed by a
//! self-verifying payload `[WIRE_MAGIC, kind, body (LE fields), crc32]`.
//! The length prefix lets [`FrameBuffer`] reassemble frames from the
//! arbitrary partial reads a real TCP stream produces; the CRC32 trailer
//! (same IEEE polynomial as [`crate::message`]) rejects bit-rot and framing
//! desynchronization with a typed [`CoreError::CorruptPayload`] instead of
//! a panic or a garbage parse.
//!
//! The payload vocabulary is deliberately small:
//!
//! * `Hello`/`Welcome` — the connect/accept handshake. A worker announces
//!   its session id, process index, and incarnation; the coordinator
//!   validates the session and answers with the serialized `RunConfig`
//!   (instance + settings + block activation), from which the worker builds
//!   its hosted node kernels exactly as the in-process engines do.
//! * `Cmd` — a node-addressed command (predict/correct/process/snapshot/
//!   membership/restore/finish), the socket spelling of the supervised
//!   runtime's `FeCmd`/`DcCmd`.
//! * `Reply` — a worker reply, decoded straight into the supervision
//!   layer's `Reply` so the coordinator's gather machinery
//!   (`supervision::gather_phase`) is shared verbatim with the threaded
//!   engine.
//! * `Shutdown` — orderly teardown.
//!
//! All `f64` fields travel as exact little-endian bit patterns, so a value
//! decoded on the far side is bit-identical to the value encoded — the
//! foundation of the socket engine's bitwise-equivalence guarantee.

use std::fmt;

use ufc_core::CoreError;
use ufc_model::{EmissionCostFn, QueueingCost, StorageParams, UfcInstance};

use crate::fault::NodeId;
use crate::message::crc32;
use crate::node::NodeResiduals;
use crate::supervision::Reply;
use ufc_core::{AdmgSettings, BlockKind, BlockSchedule, SubproblemMethod};

/// First payload byte of every wire frame (distinct from
/// [`crate::message::FRAME_MAGIC`] so the two framings cannot be confused).
pub const WIRE_MAGIC: u8 = 0xFD;

/// Bytes of the little-endian length prefix in front of every payload.
pub const LENGTH_PREFIX_BYTES: usize = 4;

/// Hard upper bound on one wire-frame payload. Large enough for any
/// checkpoint blob or run configuration at the paper's scale (and far
/// beyond), small enough that a corrupted or hostile length prefix cannot
/// drive an unbounded allocation.
pub const MAX_WIRE_FRAME_BYTES: usize = 4 * 1024 * 1024;

/// Bound on the element count of any length-prefixed vector inside a
/// payload; keeps a corrupted inner length from allocating gigabytes even
/// when the outer frame passed its size check.
const MAX_VEC_LEN: usize = MAX_WIRE_FRAME_BYTES / 8;

fn corrupt(context: String) -> CoreError {
    CoreError::corrupt_payload("wire", 0, context)
}

/// Wraps a payload in the on-stream framing: `[len u32 LE][payload]`.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_WIRE_FRAME_BYTES`] — encoders in
/// this module cannot produce such a payload.
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_WIRE_FRAME_BYTES,
        "wire payload of {} bytes exceeds the frame bound",
        payload.len()
    );
    let mut out = Vec::with_capacity(LENGTH_PREFIX_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame reassembly over partial reads: push whatever chunk the
/// socket produced, then drain complete payloads with
/// [`FrameBuffer::next_frame`].
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes (any size, including zero).
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete payload, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptPayload`] when the length prefix exceeds
    /// [`MAX_WIRE_FRAME_BYTES`] or is shorter than the minimum payload
    /// (magic + kind + CRC32) — the stream is desynchronized and cannot be
    /// trusted further.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, CoreError> {
        if self.buf.len() < LENGTH_PREFIX_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            <[u8; 4]>::try_from(&self.buf[..LENGTH_PREFIX_BYTES])
                .map_err(|_| corrupt("length prefix is not 4 bytes".to_owned()))?,
        ) as usize;
        if len > MAX_WIRE_FRAME_BYTES {
            return Err(corrupt(format!(
                "length prefix {len} exceeds the {MAX_WIRE_FRAME_BYTES}-byte frame bound"
            )));
        }
        if len < 6 {
            return Err(corrupt(format!(
                "length prefix {len} is below the minimum payload size"
            )));
        }
        if self.buf.len() < LENGTH_PREFIX_BYTES + len {
            return Ok(None);
        }
        let payload = self.buf[LENGTH_PREFIX_BYTES..LENGTH_PREFIX_BYTES + len].to_vec();
        self.buf.drain(..LENGTH_PREFIX_BYTES + len);
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet drained.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

// ---- cursor readers (typed errors, never a panic) -----------------------

fn take<const N: usize>(bytes: &[u8], pos: &mut usize) -> Result<[u8; N], CoreError> {
    let end = *pos + N;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| corrupt(format!("payload truncated at byte {pos}")))?;
    *pos = end;
    <[u8; N]>::try_from(slice).map_err(|_| corrupt(format!("payload truncated at byte {pos}")))
}

fn get_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, CoreError> {
    Ok(take::<1>(bytes, pos)?[0])
}

fn get_bool(bytes: &[u8], pos: &mut usize) -> Result<bool, CoreError> {
    match get_u8(bytes, pos)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(corrupt(format!("bad boolean byte {other}"))),
    }
}

fn get_u32(bytes: &[u8], pos: &mut usize) -> Result<usize, CoreError> {
    Ok(u32::from_le_bytes(take::<4>(bytes, pos)?) as usize)
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CoreError> {
    Ok(u64::from_le_bytes(take::<8>(bytes, pos)?))
}

fn get_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, CoreError> {
    Ok(f64::from_le_bytes(take::<8>(bytes, pos)?))
}

fn get_f64s(bytes: &[u8], pos: &mut usize) -> Result<Vec<f64>, CoreError> {
    let len = get_u32(bytes, pos)?;
    if len > MAX_VEC_LEN {
        return Err(corrupt(format!("vector length {len} exceeds the bound")));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(get_f64(bytes, pos)?);
    }
    Ok(out)
}

fn get_blob(bytes: &[u8], pos: &mut usize) -> Result<Vec<u8>, CoreError> {
    let len = get_u32(bytes, pos)?;
    if len > MAX_WIRE_FRAME_BYTES {
        return Err(corrupt(format!("blob length {len} exceeds the bound")));
    }
    let end = *pos + len;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| corrupt(format!("blob truncated at byte {pos}")))?;
    *pos = end;
    Ok(slice.to_vec())
}

fn put_u32(buf: &mut Vec<u8>, v: usize) {
    buf.extend_from_slice(&(v as u32).to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, values: &[f64]) {
    put_u32(buf, values.len());
    for &v in values {
        put_f64(buf, v);
    }
}

fn put_blob(buf: &mut Vec<u8>, blob: &[u8]) {
    put_u32(buf, blob.len());
    buf.extend_from_slice(blob);
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

// ---- transport authentication -------------------------------------------
//
// A hand-rolled SHA-256 / HMAC-SHA256 pair (FIPS 180-4 / RFC 2104; no
// external crates) underpins the challenge–response handshake that guards
// non-loopback listeners. The primitives are deliberately boring: the
// security of the handshake rests on HMAC, not on anything clever here.

const SHA256_K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// SHA-256 of `data` (FIPS 180-4). Used for the run-config digest bound
/// into the handshake MAC and as the compression function under
/// [`hmac_sha256`].
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09_e667,
        0xbb67_ae85,
        0x3c6e_f372,
        0xa54f_f53a,
        0x510e_527f,
        0x9b05_688c,
        0x1f83_d9ab,
        0x5be0_cd19,
    ];
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    for chunk in msg.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (t, word) in chunk.chunks_exact(4).enumerate() {
            w[t] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for t in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[t])
                .wrapping_add(w[t]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    let mut out = [0u8; 32];
    for (i, v) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_be_bytes());
    }
    out
}

/// HMAC-SHA256 (RFC 2104) of `message` under `key`; keys longer than the
/// 64-byte block are hashed first, exactly per the RFC.
#[must_use]
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Vec::with_capacity(64 + message.len());
    inner.extend(k.iter().map(|b| b ^ 0x36));
    inner.extend_from_slice(message);
    let inner_hash = sha256(&inner);
    let mut outer = Vec::with_capacity(64 + 32);
    outer.extend(k.iter().map(|b| b ^ 0x5c));
    outer.extend_from_slice(&inner_hash);
    sha256(&outer)
}

/// Constant-time 32-byte comparison: a MAC check must not leak how many
/// prefix bytes matched through its timing.
#[must_use]
pub(crate) fn ct_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

/// Shared 256-bit authentication key for the socket transport. Both the
/// coordinator and every `ufc-node` worker must hold the same key; the
/// handshake never places the key itself on the wire, only an HMAC over
/// the per-connection challenge.
#[derive(Clone, PartialEq, Eq)]
pub struct AuthKey {
    bytes: [u8; 32],
}

impl AuthKey {
    /// Wraps raw key bytes.
    #[must_use]
    pub fn new(bytes: [u8; 32]) -> Self {
        AuthKey { bytes }
    }

    /// Parses the 64-hex-digit spelling used by `ufc-node --auth-key`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] unless the input is exactly 64
    /// hexadecimal digits.
    pub fn from_hex(hex: &str) -> Result<Self, CoreError> {
        let hex = hex.trim();
        if hex.len() != 64 {
            return Err(CoreError::invalid_config(format!(
                "auth key must be 64 hex digits (256 bits), got {} characters",
                hex.len()
            )));
        }
        let mut bytes = [0u8; 32];
        for (i, pair) in hex.as_bytes().chunks_exact(2).enumerate() {
            let s = std::str::from_utf8(pair).map_err(|_| {
                CoreError::invalid_config("auth key contains non-ascii characters".to_owned())
            })?;
            bytes[i] = u8::from_str_radix(s, 16).map_err(|_| {
                CoreError::invalid_config(format!("auth key contains a non-hex digit in {s:?}"))
            })?;
        }
        Ok(AuthKey { bytes })
    }

    /// The 64-hex-digit spelling (what `ufc-node --auth-key` expects).
    #[must_use]
    pub fn to_hex(&self) -> String {
        self.bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    pub(crate) fn bytes(&self) -> &[u8; 32] {
        &self.bytes
    }
}

impl fmt::Debug for AuthKey {
    /// Redacted: key material must never leak through logs or error text.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("AuthKey(…)")
    }
}

/// Where the coordinator's acceptor listens and what address it hands the
/// workers it spawns. The default keeps the PR-6 behaviour: an ephemeral
/// loopback port. Non-loopback listens are allowed only together with an
/// [`AuthKey`] — the engine rejects the combination otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BindConfig {
    /// Address handed to `TcpListener::bind` (e.g. `127.0.0.1:0`,
    /// `0.0.0.0:7740`).
    pub listen: String,
    /// Address advertised to spawned workers; `None` derives
    /// `host:port` from the bound listener's local address.
    pub advertise: Option<String>,
}

impl Default for BindConfig {
    fn default() -> Self {
        BindConfig {
            listen: "127.0.0.1:0".to_owned(),
            advertise: None,
        }
    }
}

impl BindConfig {
    /// The default ephemeral-loopback bind.
    #[must_use]
    pub fn loopback() -> Self {
        BindConfig::default()
    }

    /// Listens on an explicit address.
    #[must_use]
    pub fn new(listen: impl Into<String>) -> Self {
        BindConfig {
            listen: listen.into(),
            advertise: None,
        }
    }

    /// Overrides the address workers are told to connect to (useful when
    /// the listen address is a wildcard or sits behind NAT).
    #[must_use]
    pub fn with_advertise(mut self, advertise: impl Into<String>) -> Self {
        self.advertise = Some(advertise.into());
        self
    }

    /// Whether the listen address stays on the loopback interface; only
    /// loopback binds may run without an [`AuthKey`].
    #[must_use]
    pub fn is_loopback(&self) -> bool {
        if let Ok(addr) = self.listen.parse::<std::net::SocketAddr>() {
            return addr.ip().is_loopback();
        }
        self.listen.starts_with("localhost:")
    }
}

/// The keyed MAC a worker presents in [`WireFrame::AuthHello`]:
/// `HMAC-SHA256(key, nonce ‖ session ‖ process ‖ incarnation ‖ digest)`.
/// Binding the run-config digest means an authenticated worker cannot be
/// spliced onto a different run configuration; binding the nonce makes
/// every recorded handshake worthless for replay.
#[must_use]
pub(crate) fn handshake_mac(
    key: &AuthKey,
    nonce: &[u8; 32],
    session: u64,
    process: usize,
    incarnation: u32,
    digest: &[u8; 32],
) -> [u8; 32] {
    let mut msg = Vec::with_capacity(32 + 8 + 8 + 4 + 32);
    msg.extend_from_slice(nonce);
    msg.extend_from_slice(&session.to_le_bytes());
    msg.extend_from_slice(&(process as u64).to_le_bytes());
    msg.extend_from_slice(&incarnation.to_le_bytes());
    msg.extend_from_slice(digest);
    hmac_sha256(key.bytes(), &msg)
}

/// Verifies the frame a peer sent in answer to a [`WireFrame::Challenge`].
/// Pure so the rejection taxonomy is unit-testable without sockets.
///
/// # Errors
///
/// [`CoreError::Unauthorized`] on a plain `Hello` (downgrade), a stale
/// session id, a MAC mismatch (wrong key or replayed challenge), or any
/// other frame kind arriving mid-handshake.
pub(crate) fn verify_auth_hello(
    key: &AuthKey,
    nonce: &[u8; 32],
    digest: &[u8; 32],
    session: u64,
    frame: &WireFrame,
) -> Result<(usize, u32), CoreError> {
    match frame {
        WireFrame::AuthHello {
            session: got,
            process,
            incarnation,
            mac,
        } => {
            if *got != session {
                return Err(CoreError::unauthorized(
                    format!("worker-{process}"),
                    format!("stale session id {got:#x} (expected {session:#x})"),
                ));
            }
            let expect = handshake_mac(key, nonce, session, *process, *incarnation, digest);
            if !ct_eq(&expect, mac) {
                return Err(CoreError::unauthorized(
                    format!("worker-{process}"),
                    "handshake mac mismatch (wrong key or replayed challenge)",
                ));
            }
            Ok((*process, *incarnation))
        }
        WireFrame::Hello { process, .. } => Err(CoreError::unauthorized(
            format!("worker-{process}"),
            "downgrade: plain hello on an authenticated listener",
        )),
        other => Err(CoreError::unauthorized(
            "peer",
            format!(
                "unexpected frame kind {} during the handshake",
                other.kind_tag()
            ),
        )),
    }
}

// ---- protocol frames ----------------------------------------------------

/// A node-addressed command from the coordinator to a worker process — the
/// socket spelling of the supervised runtime's `FeCmd`/`DcCmd`, plus the
/// `Restore` verb checkpoint-restart needs when the node kernel lives in
/// another process.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum NodeCmd {
    /// Run the λ prediction for `iteration` (front-end nodes).
    Predict { iteration: usize },
    /// Apply the gathered ã row and correct (front-end nodes).
    Correct { iteration: usize, a_row: Vec<f64> },
    /// Run the μ/ν/a steps on the gathered λ̃ column (datacenter nodes).
    Process { iteration: usize, column: Vec<f64> },
    /// Serialize the iterate slice for a checkpoint round.
    Snapshot { iteration: usize },
    /// Apply a membership change for `datacenter` (front-end nodes).
    Membership { datacenter: usize, evict: bool },
    /// Restore the node kernel from a serialized snapshot blob.
    Restore { blob: Vec<u8> },
    /// Ship the final iterate slice.
    Finish,
}

/// One frame of the coordinator↔worker session protocol.
#[derive(Debug, PartialEq)]
pub(crate) enum WireFrame {
    /// Worker → coordinator: connect/accept handshake announcement.
    Hello {
        /// Run-unique session id; a stale worker from an earlier run is
        /// rejected at accept.
        session: u64,
        /// Which process slot this worker fills.
        process: usize,
        /// Respawn generation (0 for the first spawn).
        incarnation: u32,
    },
    /// Coordinator → worker: handshake answer carrying the serialized
    /// [`RunConfig`].
    Welcome { config: Vec<u8> },
    /// Coordinator → worker: a command for hosted node `node` (front-ends
    /// `0..m`, datacenters `m..m+n`).
    Cmd { node: usize, cmd: NodeCmd },
    /// Worker → coordinator: a node reply.
    Reply(Reply),
    /// Coordinator → worker: orderly exit.
    Shutdown,
    /// Coordinator → worker: authentication challenge, sent immediately
    /// after accept when the listener holds an [`AuthKey`]. Carries a
    /// per-connection random nonce and the SHA-256 digest of the
    /// serialized [`RunConfig`] the worker is about to receive.
    Challenge {
        /// Fresh random nonce; never reused across connections, so a
        /// recorded `AuthHello` cannot be replayed.
        nonce: [u8; 32],
        /// `sha256(RunConfig::encode())` — bound into the MAC and
        /// re-checked by the worker against the `Welcome` it receives.
        digest: [u8; 32],
    },
    /// Worker → coordinator: the authenticated spelling of `Hello`,
    /// answering a [`WireFrame::Challenge`].
    AuthHello {
        /// Run-unique session id (as in `Hello`).
        session: u64,
        /// Which process slot this worker fills.
        process: usize,
        /// Respawn generation.
        incarnation: u32,
        /// [`handshake_mac`] over the challenge nonce and this identity.
        mac: [u8; 32],
    },
    /// Either direction: the last data frame failed its integrity check —
    /// retransmit it. The wire-chaos retransmit ladder's negative
    /// acknowledgement.
    Nak,
}

impl WireFrame {
    fn kind_tag(&self) -> u8 {
        match self {
            WireFrame::Hello { .. } => 0,
            WireFrame::Welcome { .. } => 1,
            WireFrame::Cmd { .. } => 2,
            WireFrame::Reply(_) => 3,
            WireFrame::Shutdown => 4,
            WireFrame::Challenge { .. } => 5,
            WireFrame::AuthHello { .. } => 6,
            WireFrame::Nak => 7,
        }
    }

    /// Serializes into a self-verifying payload
    /// `[WIRE_MAGIC, kind, body, crc32]` (not yet length-prefixed — see
    /// [`frame`]).
    pub(crate) fn encode_payload(&self) -> Vec<u8> {
        let mut buf = vec![WIRE_MAGIC, self.kind_tag()];
        match self {
            WireFrame::Hello {
                session,
                process,
                incarnation,
            } => {
                put_u64(&mut buf, *session);
                put_u32(&mut buf, *process);
                buf.extend_from_slice(&incarnation.to_le_bytes());
            }
            WireFrame::Welcome { config } => put_blob(&mut buf, config),
            WireFrame::Cmd { node, cmd } => {
                put_u32(&mut buf, *node);
                match cmd {
                    NodeCmd::Predict { iteration } => {
                        buf.push(0);
                        put_u64(&mut buf, *iteration as u64);
                    }
                    NodeCmd::Correct { iteration, a_row } => {
                        buf.push(1);
                        put_u64(&mut buf, *iteration as u64);
                        put_f64s(&mut buf, a_row);
                    }
                    NodeCmd::Process { iteration, column } => {
                        buf.push(2);
                        put_u64(&mut buf, *iteration as u64);
                        put_f64s(&mut buf, column);
                    }
                    NodeCmd::Snapshot { iteration } => {
                        buf.push(3);
                        put_u64(&mut buf, *iteration as u64);
                    }
                    NodeCmd::Membership { datacenter, evict } => {
                        buf.push(4);
                        put_u32(&mut buf, *datacenter);
                        put_bool(&mut buf, *evict);
                    }
                    NodeCmd::Restore { blob } => {
                        buf.push(5);
                        put_blob(&mut buf, blob);
                    }
                    NodeCmd::Finish => buf.push(6),
                }
            }
            WireFrame::Reply(reply) => match reply {
                Reply::Lambda { i, iteration, row } => {
                    buf.push(0);
                    put_u32(&mut buf, *i);
                    put_u64(&mut buf, *iteration as u64);
                    put_f64s(&mut buf, row);
                }
                Reply::FeResidual {
                    i,
                    iteration,
                    residuals,
                } => {
                    buf.push(1);
                    put_u32(&mut buf, *i);
                    put_u64(&mut buf, *iteration as u64);
                    put_f64(&mut buf, residuals.link);
                    put_f64(&mut buf, residuals.balance);
                    put_f64(&mut buf, residuals.movement);
                }
                Reply::DcStep {
                    j,
                    iteration,
                    a_tilde,
                    d,
                    residuals,
                } => {
                    buf.push(2);
                    put_u32(&mut buf, *j);
                    put_u64(&mut buf, *iteration as u64);
                    put_f64s(&mut buf, a_tilde);
                    put_f64(&mut buf, *d);
                    put_f64(&mut buf, residuals.link);
                    put_f64(&mut buf, residuals.balance);
                    put_f64(&mut buf, residuals.movement);
                }
                Reply::FeSnapshot { i, iteration, blob } => {
                    buf.push(3);
                    put_u32(&mut buf, *i);
                    put_u64(&mut buf, *iteration as u64);
                    put_blob(&mut buf, blob);
                }
                Reply::DcSnapshot { j, iteration, blob } => {
                    buf.push(4);
                    put_u32(&mut buf, *j);
                    put_u64(&mut buf, *iteration as u64);
                    put_blob(&mut buf, blob);
                }
                Reply::FeFinal { i, lambda } => {
                    buf.push(5);
                    put_u32(&mut buf, *i);
                    put_f64s(&mut buf, lambda);
                }
                Reply::DcFinal { j, mu, d } => {
                    buf.push(6);
                    put_u32(&mut buf, *j);
                    put_f64(&mut buf, *mu);
                    put_f64(&mut buf, *d);
                }
                Reply::NodeError {
                    node,
                    iteration,
                    error,
                } => {
                    // The error enum itself has no wire codec; ship the
                    // rendered message. Decode rebuilds a typed
                    // `CoreError::NodeFailure` around it (documented on the
                    // variant).
                    buf.push(7);
                    let (kind, index) = match node {
                        NodeId::Frontend(i) => (0u8, *i),
                        NodeId::Datacenter(j) => (1u8, *j),
                    };
                    buf.push(kind);
                    put_u32(&mut buf, index);
                    put_u64(&mut buf, *iteration as u64);
                    put_blob(&mut buf, error.to_string().as_bytes());
                }
            },
            WireFrame::Shutdown => {}
            WireFrame::Challenge { nonce, digest } => {
                buf.extend_from_slice(nonce);
                buf.extend_from_slice(digest);
            }
            WireFrame::AuthHello {
                session,
                process,
                incarnation,
                mac,
            } => {
                put_u64(&mut buf, *session);
                put_u32(&mut buf, *process);
                buf.extend_from_slice(&incarnation.to_le_bytes());
                buf.extend_from_slice(mac);
            }
            WireFrame::Nak => {}
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Verifies and parses a payload produced by
    /// [`WireFrame::encode_payload`].
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptPayload`] on truncation, bad magic, unknown
    /// kind, trailing garbage, or CRC32 mismatch. Never panics.
    pub(crate) fn decode_payload(bytes: &[u8]) -> Result<WireFrame, CoreError> {
        if bytes.len() < 2 + 4 {
            return Err(corrupt(format!(
                "payload too short ({} bytes)",
                bytes.len()
            )));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = <[u8; 4]>::try_from(trailer)
            .map(u32::from_le_bytes)
            .map_err(|_| corrupt("payload trailer is not 4 bytes".to_owned()))?;
        let computed = crc32(body);
        if stored != computed {
            return Err(corrupt(format!(
                "crc32 mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
        if body[0] != WIRE_MAGIC {
            return Err(corrupt(format!("bad wire magic {:#04x}", body[0])));
        }
        let kind = body[1];
        let mut pos = 2;
        let frame = match kind {
            0 => WireFrame::Hello {
                session: get_u64(body, &mut pos)?,
                process: get_u32(body, &mut pos)?,
                incarnation: u32::from_le_bytes(take::<4>(body, &mut pos)?),
            },
            1 => WireFrame::Welcome {
                config: get_blob(body, &mut pos)?,
            },
            2 => {
                let node = get_u32(body, &mut pos)?;
                let cmd = match get_u8(body, &mut pos)? {
                    0 => NodeCmd::Predict {
                        iteration: get_u64(body, &mut pos)? as usize,
                    },
                    1 => NodeCmd::Correct {
                        iteration: get_u64(body, &mut pos)? as usize,
                        a_row: get_f64s(body, &mut pos)?,
                    },
                    2 => NodeCmd::Process {
                        iteration: get_u64(body, &mut pos)? as usize,
                        column: get_f64s(body, &mut pos)?,
                    },
                    3 => NodeCmd::Snapshot {
                        iteration: get_u64(body, &mut pos)? as usize,
                    },
                    4 => NodeCmd::Membership {
                        datacenter: get_u32(body, &mut pos)?,
                        evict: get_bool(body, &mut pos)?,
                    },
                    5 => NodeCmd::Restore {
                        blob: get_blob(body, &mut pos)?,
                    },
                    6 => NodeCmd::Finish,
                    other => return Err(corrupt(format!("unknown command tag {other}"))),
                };
                WireFrame::Cmd { node, cmd }
            }
            3 => {
                let reply = match get_u8(body, &mut pos)? {
                    0 => Reply::Lambda {
                        i: get_u32(body, &mut pos)?,
                        iteration: get_u64(body, &mut pos)? as usize,
                        row: get_f64s(body, &mut pos)?,
                    },
                    1 => Reply::FeResidual {
                        i: get_u32(body, &mut pos)?,
                        iteration: get_u64(body, &mut pos)? as usize,
                        residuals: NodeResiduals {
                            link: get_f64(body, &mut pos)?,
                            balance: get_f64(body, &mut pos)?,
                            movement: get_f64(body, &mut pos)?,
                        },
                    },
                    2 => Reply::DcStep {
                        j: get_u32(body, &mut pos)?,
                        iteration: get_u64(body, &mut pos)? as usize,
                        a_tilde: get_f64s(body, &mut pos)?,
                        d: get_f64(body, &mut pos)?,
                        residuals: NodeResiduals {
                            link: get_f64(body, &mut pos)?,
                            balance: get_f64(body, &mut pos)?,
                            movement: get_f64(body, &mut pos)?,
                        },
                    },
                    3 => Reply::FeSnapshot {
                        i: get_u32(body, &mut pos)?,
                        iteration: get_u64(body, &mut pos)? as usize,
                        blob: get_blob(body, &mut pos)?,
                    },
                    4 => Reply::DcSnapshot {
                        j: get_u32(body, &mut pos)?,
                        iteration: get_u64(body, &mut pos)? as usize,
                        blob: get_blob(body, &mut pos)?,
                    },
                    5 => Reply::FeFinal {
                        i: get_u32(body, &mut pos)?,
                        lambda: get_f64s(body, &mut pos)?,
                    },
                    6 => Reply::DcFinal {
                        j: get_u32(body, &mut pos)?,
                        mu: get_f64(body, &mut pos)?,
                        d: get_f64(body, &mut pos)?,
                    },
                    7 => {
                        let node = match get_u8(body, &mut pos)? {
                            0 => NodeId::Frontend(get_u32(body, &mut pos)?),
                            1 => NodeId::Datacenter(get_u32(body, &mut pos)?),
                            other => {
                                return Err(corrupt(format!("unknown node kind {other}")));
                            }
                        };
                        let iteration = get_u64(body, &mut pos)? as usize;
                        let rendered = String::from_utf8(get_blob(body, &mut pos)?)
                            .map_err(|_| corrupt("node error message is not UTF-8".to_owned()))?;
                        Reply::NodeError {
                            node,
                            iteration,
                            error: CoreError::node_failure(node.to_string(), iteration, rendered),
                        }
                    }
                    other => return Err(corrupt(format!("unknown reply tag {other}"))),
                };
                WireFrame::Reply(reply)
            }
            4 => WireFrame::Shutdown,
            5 => WireFrame::Challenge {
                nonce: take::<32>(body, &mut pos)?,
                digest: take::<32>(body, &mut pos)?,
            },
            6 => WireFrame::AuthHello {
                session: get_u64(body, &mut pos)?,
                process: get_u32(body, &mut pos)?,
                incarnation: u32::from_le_bytes(take::<4>(body, &mut pos)?),
                mac: take::<32>(body, &mut pos)?,
            },
            7 => WireFrame::Nak,
            other => return Err(corrupt(format!("unknown frame kind {other}"))),
        };
        if pos != body.len() {
            return Err(corrupt(format!(
                "trailing garbage: payload body is {} bytes, parsed {pos}",
                body.len()
            )));
        }
        Ok(frame)
    }

    /// The payload wrapped in the on-stream length prefix — what actually
    /// goes on the socket.
    pub(crate) fn to_wire(&self) -> Vec<u8> {
        frame(&self.encode_payload())
    }
}

// ---- run configuration --------------------------------------------------

/// Everything a worker process needs to rebuild its node kernels exactly
/// as the in-process engines do: the problem instance, the solver
/// settings, the strategy's block activation, and the process count (from
/// which each worker derives its hosted node set).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RunConfig {
    pub(crate) instance: UfcInstance,
    pub(crate) settings: AdmgSettings,
    pub(crate) active_mu: bool,
    pub(crate) active_nu: bool,
    pub(crate) processes: usize,
}

impl RunConfig {
    /// Serializes the configuration; every `f64` as its exact LE bit
    /// pattern.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let inst = &self.instance;
        let s = &self.settings;
        let mut buf = Vec::new();
        put_u32(&mut buf, inst.m_frontends());
        put_u32(&mut buf, inst.n_datacenters());
        put_f64s(&mut buf, &inst.arrivals);
        put_f64s(&mut buf, &inst.capacities);
        put_f64s(&mut buf, &inst.alpha);
        put_f64s(&mut buf, &inst.beta);
        put_f64s(&mut buf, &inst.mu_max);
        put_f64s(&mut buf, &inst.grid_price);
        put_f64(&mut buf, inst.fuel_cell_price);
        put_f64s(&mut buf, &inst.carbon_t_per_mwh);
        for row in &inst.latency_s {
            put_f64s(&mut buf, row);
        }
        put_f64(&mut buf, inst.weight_per_server);
        put_f64(&mut buf, inst.slot_hours);
        for cost in &inst.emission_cost {
            match cost {
                EmissionCostFn::Linear { rate } => {
                    buf.push(0);
                    put_f64(&mut buf, *rate);
                }
                EmissionCostFn::Quadratic { linear, quad } => {
                    buf.push(1);
                    put_f64(&mut buf, *linear);
                    put_f64(&mut buf, *quad);
                }
                EmissionCostFn::Stepped { thresholds, rates } => {
                    buf.push(2);
                    put_f64s(&mut buf, thresholds);
                    put_f64s(&mut buf, rates);
                }
            }
        }
        match &inst.queueing {
            None => buf.push(0),
            Some(q) => {
                buf.push(1);
                put_f64(&mut buf, q.base_delay_s);
                put_f64(&mut buf, q.weight);
                put_f64(&mut buf, q.max_utilization);
            }
        }
        match &inst.storage {
            None => buf.push(0),
            Some(sp) => {
                buf.push(1);
                put_f64s(&mut buf, &sp.capacity_mwh);
                put_f64s(&mut buf, &sp.charge_mwh);
                put_f64s(&mut buf, &sp.charge_rate_mw);
                put_f64s(&mut buf, &sp.discharge_rate_mw);
                put_f64s(&mut buf, &sp.value_per_mwh);
                put_f64(&mut buf, sp.degradation_per_mwh);
                put_f64s(&mut buf, &sp.ramp_mw);
                put_f64s(&mut buf, &sp.mu_prev_mw);
            }
        }
        // Schedule echo: the block kinds the coordinator will drive, in
        // order. The worker cross-checks this against the schedule its
        // decoded instance implies, so a coordinator/worker version skew
        // (one side scheduling a block the other does not know) is a typed
        // handshake error instead of a silent numeric divergence.
        let schedule = BlockSchedule::for_instance(inst);
        buf.push(schedule.len() as u8);
        for block in schedule.blocks() {
            buf.push(block.kind.wire_id());
        }
        put_f64(&mut buf, s.rho);
        put_f64(&mut buf, s.epsilon);
        put_u64(&mut buf, s.max_iterations as u64);
        put_f64(&mut buf, s.eps_link);
        put_f64(&mut buf, s.eps_balance);
        put_f64(&mut buf, s.eps_dual);
        buf.push(match s.method {
            SubproblemMethod::ActiveSet => 0,
            SubproblemMethod::Fista => 1,
        });
        put_u64(&mut buf, s.num_threads as u64);
        put_bool(&mut buf, s.cache_factorizations);
        put_bool(&mut buf, s.rank1_kkt);
        put_bool(&mut buf, s.blocked_factorizations);
        put_bool(&mut buf, s.telemetry);
        put_bool(&mut buf, s.verify_checksums);
        put_f64(&mut buf, s.divergence_kappa);
        put_u64(&mut buf, s.divergence_window as u64);
        put_bool(&mut buf, s.divergence_rollback);
        put_bool(&mut buf, self.active_mu);
        put_bool(&mut buf, self.active_nu);
        put_u32(&mut buf, self.processes);
        buf
    }

    /// Rebuilds the configuration; the instance is re-validated through
    /// [`UfcInstance::new`], so a worker can never run on a garbled
    /// problem.
    ///
    /// # Errors
    ///
    /// [`CoreError::CorruptPayload`] on truncation and
    /// [`CoreError::Model`] when the decoded instance fails validation.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut pos = 0;
        let m = get_u32(bytes, &mut pos)?;
        let n = get_u32(bytes, &mut pos)?;
        if m == 0 || n == 0 || m > MAX_VEC_LEN || n > MAX_VEC_LEN {
            return Err(corrupt(format!("implausible dimensions {m}x{n}")));
        }
        let arrivals = get_f64s(bytes, &mut pos)?;
        let capacities = get_f64s(bytes, &mut pos)?;
        let alpha = get_f64s(bytes, &mut pos)?;
        let beta = get_f64s(bytes, &mut pos)?;
        let mu_max = get_f64s(bytes, &mut pos)?;
        let grid_price = get_f64s(bytes, &mut pos)?;
        let fuel_cell_price = get_f64(bytes, &mut pos)?;
        let carbon_t_per_mwh = get_f64s(bytes, &mut pos)?;
        let mut latency_s = Vec::with_capacity(m);
        for _ in 0..m {
            latency_s.push(get_f64s(bytes, &mut pos)?);
        }
        let weight_per_server = get_f64(bytes, &mut pos)?;
        let slot_hours = get_f64(bytes, &mut pos)?;
        let mut emission_cost = Vec::with_capacity(n);
        for _ in 0..n {
            emission_cost.push(match get_u8(bytes, &mut pos)? {
                0 => EmissionCostFn::Linear {
                    rate: get_f64(bytes, &mut pos)?,
                },
                1 => EmissionCostFn::Quadratic {
                    linear: get_f64(bytes, &mut pos)?,
                    quad: get_f64(bytes, &mut pos)?,
                },
                2 => EmissionCostFn::Stepped {
                    thresholds: get_f64s(bytes, &mut pos)?,
                    rates: get_f64s(bytes, &mut pos)?,
                },
                other => return Err(corrupt(format!("unknown emission-cost tag {other}"))),
            });
        }
        let queueing = match get_u8(bytes, &mut pos)? {
            0 => None,
            1 => Some(QueueingCost {
                base_delay_s: get_f64(bytes, &mut pos)?,
                weight: get_f64(bytes, &mut pos)?,
                max_utilization: get_f64(bytes, &mut pos)?,
            }),
            other => return Err(corrupt(format!("unknown queueing tag {other}"))),
        };
        let storage = match get_u8(bytes, &mut pos)? {
            0 => None,
            1 => Some(StorageParams {
                capacity_mwh: get_f64s(bytes, &mut pos)?,
                charge_mwh: get_f64s(bytes, &mut pos)?,
                charge_rate_mw: get_f64s(bytes, &mut pos)?,
                discharge_rate_mw: get_f64s(bytes, &mut pos)?,
                value_per_mwh: get_f64s(bytes, &mut pos)?,
                degradation_per_mwh: get_f64(bytes, &mut pos)?,
                ramp_mw: get_f64s(bytes, &mut pos)?,
                mu_prev_mw: get_f64s(bytes, &mut pos)?,
            }),
            other => return Err(corrupt(format!("unknown storage tag {other}"))),
        };
        let echo_len = get_u8(bytes, &mut pos)? as usize;
        let mut echoed_kinds = Vec::with_capacity(echo_len.min(16));
        for _ in 0..echo_len {
            let id = get_u8(bytes, &mut pos)?;
            let kind = BlockKind::from_wire_id(id)
                .ok_or_else(|| corrupt(format!("unknown block wire id {id} in schedule echo")))?;
            echoed_kinds.push(kind);
        }
        let settings = AdmgSettings {
            rho: get_f64(bytes, &mut pos)?,
            epsilon: get_f64(bytes, &mut pos)?,
            max_iterations: get_u64(bytes, &mut pos)? as usize,
            eps_link: get_f64(bytes, &mut pos)?,
            eps_balance: get_f64(bytes, &mut pos)?,
            eps_dual: get_f64(bytes, &mut pos)?,
            method: match get_u8(bytes, &mut pos)? {
                0 => SubproblemMethod::ActiveSet,
                1 => SubproblemMethod::Fista,
                other => return Err(corrupt(format!("unknown method tag {other}"))),
            },
            num_threads: get_u64(bytes, &mut pos)? as usize,
            cache_factorizations: get_bool(bytes, &mut pos)?,
            rank1_kkt: get_bool(bytes, &mut pos)?,
            blocked_factorizations: get_bool(bytes, &mut pos)?,
            telemetry: get_bool(bytes, &mut pos)?,
            verify_checksums: get_bool(bytes, &mut pos)?,
            divergence_kappa: get_f64(bytes, &mut pos)?,
            divergence_window: get_u64(bytes, &mut pos)? as usize,
            divergence_rollback: get_bool(bytes, &mut pos)?,
        };
        let active_mu = get_bool(bytes, &mut pos)?;
        let active_nu = get_bool(bytes, &mut pos)?;
        let processes = get_u32(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(corrupt(format!(
                "trailing garbage: config is {} bytes, parsed {pos}",
                bytes.len()
            )));
        }
        let mut instance = UfcInstance::new(
            arrivals,
            capacities,
            alpha,
            beta,
            mu_max,
            grid_price,
            fuel_cell_price,
            carbon_t_per_mwh,
            latency_s,
            weight_per_server,
            emission_cost,
            slot_hours,
        )
        .map_err(CoreError::Model)?;
        instance.queueing = queueing;
        if let Some(sp) = storage {
            instance = instance.with_storage(sp).map_err(CoreError::Model)?;
        }
        // The echoed schedule must match what this instance implies — a
        // mismatch means the two ends would drive different block
        // pipelines.
        let local: Vec<BlockKind> = BlockSchedule::for_instance(&instance)
            .blocks()
            .iter()
            .map(|b| b.kind)
            .collect();
        if echoed_kinds != local {
            return Err(corrupt(format!(
                "schedule echo {echoed_kinds:?} disagrees with the instance's schedule {local:?}"
            )));
        }
        Ok(RunConfig {
            instance,
            settings,
            active_mu,
            active_nu,
            processes,
        })
    }
}

/// The node ids (front-ends `0..m`, datacenters `m..m+n`) hosted by
/// process `p` of `processes`: a round-robin split, so one process per
/// node when `processes == m + n` and everything on process 0 when
/// `processes == 1`.
#[must_use]
pub fn hosted_nodes(p: usize, processes: usize, m: usize, n: usize) -> Vec<usize> {
    (0..m + n).filter(|id| id % processes == p).collect()
}

/// Which process hosts node `id` under the round-robin split.
#[must_use]
pub fn process_of(id: usize, processes: usize) -> usize {
    id % processes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<WireFrame> {
        vec![
            WireFrame::Hello {
                session: 0xDEAD_BEEF_0042,
                process: 3,
                incarnation: 2,
            },
            WireFrame::Welcome {
                config: vec![1, 2, 3, 4, 5],
            },
            WireFrame::Cmd {
                node: 7,
                cmd: NodeCmd::Correct {
                    iteration: 19,
                    a_row: vec![0.25, -1.5, 3.75e-3],
                },
            },
            WireFrame::Cmd {
                node: 11,
                cmd: NodeCmd::Membership {
                    datacenter: 1,
                    evict: true,
                },
            },
            WireFrame::Cmd {
                node: 0,
                cmd: NodeCmd::Restore {
                    blob: vec![9, 8, 7],
                },
            },
            WireFrame::Reply(Reply::DcStep {
                j: 2,
                iteration: 5,
                a_tilde: vec![1.0, 2.0],
                d: -0.75,
                residuals: NodeResiduals {
                    link: 0.1,
                    balance: 0.2,
                    movement: 0.3,
                },
            }),
            WireFrame::Reply(Reply::FeFinal {
                i: 4,
                lambda: vec![0.5; 4],
            }),
            WireFrame::Reply(Reply::DcFinal {
                j: 1,
                mu: 0.42,
                d: 0.125,
            }),
            WireFrame::Shutdown,
            WireFrame::Challenge {
                nonce: [0xA5; 32],
                digest: [0x3C; 32],
            },
            WireFrame::AuthHello {
                session: 0x0123_4567_89AB_CDEF,
                process: 2,
                incarnation: 1,
                mac: [0x77; 32],
            },
            WireFrame::Nak,
        ]
    }

    fn unhex(s: &str) -> Vec<u8> {
        s.as_bytes()
            .chunks_exact(2)
            .map(|p| u8::from_str_radix(std::str::from_utf8(p).unwrap(), 16).unwrap())
            .collect()
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        // FIPS 180-4 / NIST CAVP known-answer vectors.
        assert_eq!(
            sha256(b"").to_vec(),
            unhex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")
        );
        assert_eq!(
            sha256(b"abc").to_vec(),
            unhex("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
        );
        // Two-block message exercises the chaining.
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_vec(),
            unhex("248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")
        );
    }

    #[test]
    fn hmac_sha256_matches_rfc4231_vectors() {
        // RFC 4231 test case 1.
        assert_eq!(
            hmac_sha256(&[0x0b; 20], b"Hi There").to_vec(),
            unhex("b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")
        );
        // Test case 2: short ascii key.
        assert_eq!(
            hmac_sha256(b"Jefe", b"what do ya want for nothing?").to_vec(),
            unhex("5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")
        );
        // Test case 6: 131-byte key exercises the hash-the-key path.
        assert_eq!(
            hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )
            .to_vec(),
            unhex("60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54")
        );
    }

    #[test]
    fn auth_key_parses_hex_and_redacts_debug() {
        let hex = "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f";
        let key = AuthKey::from_hex(hex).unwrap();
        assert_eq!(key.to_hex(), hex);
        assert_eq!(key.bytes()[1], 0x01);
        assert!(!format!("{key:?}").contains("0102"), "debug must redact");

        for bad in ["deadbeef", &format!("{hex}00"), &hex.replace('0', "g")] {
            let err = AuthKey::from_hex(bad).unwrap_err();
            assert!(
                matches!(err, CoreError::InvalidConfig { .. }),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn bind_config_distinguishes_loopback() {
        assert!(BindConfig::default().is_loopback());
        assert!(BindConfig::new("127.0.0.1:7740").is_loopback());
        assert!(BindConfig::new("[::1]:7740").is_loopback());
        assert!(BindConfig::new("localhost:7740").is_loopback());
        assert!(!BindConfig::new("0.0.0.0:7740").is_loopback());
        assert!(!BindConfig::new("10.1.2.3:7740").is_loopback());
        assert_eq!(
            BindConfig::new("0.0.0.0:7740")
                .with_advertise("203.0.113.9:7740")
                .advertise
                .as_deref(),
            Some("203.0.113.9:7740")
        );
    }

    #[test]
    fn auth_hello_verification_accepts_honest_and_rejects_hostile() {
        let key = AuthKey::new([0x42; 32]);
        let nonce = [0x11; 32];
        let digest = sha256(b"run config bytes");
        let session = 0xFEED_F00D;
        let mac = handshake_mac(&key, &nonce, session, 3, 1, &digest);
        let honest = WireFrame::AuthHello {
            session,
            process: 3,
            incarnation: 1,
            mac,
        };
        assert_eq!(
            verify_auth_hello(&key, &nonce, &digest, session, &honest).unwrap(),
            (3, 1)
        );

        // Wrong key.
        let wrong_key = WireFrame::AuthHello {
            session,
            process: 3,
            incarnation: 1,
            mac: handshake_mac(&AuthKey::new([0x43; 32]), &nonce, session, 3, 1, &digest),
        };
        let err = verify_auth_hello(&key, &nonce, &digest, session, &wrong_key).unwrap_err();
        assert!(matches!(err, CoreError::Unauthorized { .. }), "{err}");
        assert!(err.to_string().contains("mac mismatch"), "{err}");

        // Replay: a MAC recorded under an earlier nonce fails under the
        // fresh one.
        let replayed = WireFrame::AuthHello {
            session,
            process: 3,
            incarnation: 1,
            mac: handshake_mac(&key, &[0x22; 32], session, 3, 1, &digest),
        };
        assert!(matches!(
            verify_auth_hello(&key, &nonce, &digest, session, &replayed),
            Err(CoreError::Unauthorized { .. })
        ));

        // Downgrade to the unauthenticated hello.
        let downgrade = WireFrame::Hello {
            session,
            process: 3,
            incarnation: 1,
        };
        let err = verify_auth_hello(&key, &nonce, &digest, session, &downgrade).unwrap_err();
        assert!(err.to_string().contains("downgrade"), "{err}");

        // Stale session id.
        let stale = WireFrame::AuthHello {
            session: session ^ 1,
            process: 3,
            incarnation: 1,
            mac: handshake_mac(&key, &nonce, session ^ 1, 3, 1, &digest),
        };
        let err = verify_auth_hello(&key, &nonce, &digest, session, &stale).unwrap_err();
        assert!(err.to_string().contains("stale session"), "{err}");

        // Identity fields are bound into the MAC: flipping the process
        // index after the fact invalidates it.
        let spliced = WireFrame::AuthHello {
            session,
            process: 2,
            incarnation: 1,
            mac,
        };
        assert!(matches!(
            verify_auth_hello(&key, &nonce, &digest, session, &spliced),
            Err(CoreError::Unauthorized { .. })
        ));

        // A non-handshake frame mid-handshake is rejected too.
        let err =
            verify_auth_hello(&key, &nonce, &digest, session, &WireFrame::Shutdown).unwrap_err();
        assert!(matches!(err, CoreError::Unauthorized { .. }), "{err}");
    }

    #[test]
    fn payloads_round_trip() {
        for frame in sample_frames() {
            let payload = frame.encode_payload();
            assert_eq!(WireFrame::decode_payload(&payload).unwrap(), frame);
        }
    }

    #[test]
    fn tampered_payloads_fail_typed() {
        let payload = WireFrame::Cmd {
            node: 1,
            cmd: NodeCmd::Predict { iteration: 3 },
        }
        .encode_payload();
        for pos in 0..payload.len() {
            let mut bad = payload.clone();
            bad[pos] ^= 0x20;
            let err = WireFrame::decode_payload(&bad).unwrap_err();
            assert!(
                matches!(err, CoreError::CorruptPayload { .. }),
                "byte {pos}: {err}"
            );
        }
        for len in 0..payload.len() {
            assert!(WireFrame::decode_payload(&payload[..len]).is_err());
        }
    }

    #[test]
    fn frame_buffer_reassembles_over_partial_reads() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.to_wire());
        }
        // Feed the concatenated stream in awkward 3-byte chunks.
        let mut buf = FrameBuffer::new();
        let mut decoded = Vec::new();
        for chunk in stream.chunks(3) {
            buf.push(chunk);
            while let Some(payload) = buf.next_frame().unwrap() {
                decoded.push(WireFrame::decode_payload(&payload).unwrap());
            }
        }
        assert_eq!(decoded, frames);
        assert_eq!(buf.pending_bytes(), 0);
    }

    #[test]
    fn frame_buffer_rejects_hostile_length_prefixes() {
        let mut buf = FrameBuffer::new();
        buf.push(&u32::MAX.to_le_bytes());
        assert!(buf.next_frame().is_err(), "oversized prefix must fail");

        let mut buf = FrameBuffer::new();
        buf.push(&2u32.to_le_bytes());
        assert!(buf.next_frame().is_err(), "undersized prefix must fail");
    }

    #[test]
    fn run_config_round_trips_bit_exactly() {
        use ufc_model::EmissionCostFn;
        let mut instance = UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::Quadratic {
                    linear: 20.0,
                    quad: 0.5,
                },
            ],
            1.0,
        )
        .unwrap();
        instance.queueing = Some(QueueingCost::default_interactive());
        let config = RunConfig {
            instance,
            settings: AdmgSettings::default()
                .with_threads(3)
                .with_rank1_kkt(true)
                .with_blocked_factorizations(true),
            active_mu: true,
            active_nu: false,
            processes: 4,
        };
        let back = RunConfig::decode(&config.encode()).unwrap();
        assert_eq!(back, config);
        assert!(RunConfig::decode(&config.encode()[..40]).is_err());
    }

    #[test]
    fn run_config_round_trips_storage_and_checks_the_schedule_echo() {
        use ufc_model::StorageFleet;
        let instance = UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
        .with_storage(
            StorageFleet::new(2.0, 1.0)
                .initial_charge_frac(0.5)
                .value_per_mwh(40.0)
                .degradation(2.0)
                .ramp_mw(0.3)
                .initial_params(2),
        )
        .unwrap();
        let config = RunConfig {
            instance,
            settings: AdmgSettings::default(),
            active_mu: true,
            active_nu: true,
            processes: 2,
        };
        let bytes = config.encode();
        let back = RunConfig::decode(&bytes).unwrap();
        assert_eq!(back, config);
        // Bit-exact f64 round trip of the charge state.
        let sp = back.instance.storage.as_ref().unwrap();
        assert_eq!(sp.charge_mwh[0].to_bits(), 1.0f64.to_bits());

        // The 5-block schedule echo is the byte run [5, 0, 1, 2, 3, 4]
        // (count, then Routing/FuelCell/Grid/Storage/Auxiliary wire ids).
        let echo = [5u8, 0, 1, 2, 3, 4];
        let at = (0..bytes.len() - echo.len())
            .find(|&p| bytes[p..p + echo.len()] == echo)
            .expect("schedule echo not found in the encoded config");
        // Dropping the storage block from the echo must fail the
        // cross-check even though every field still parses.
        let mut skewed = bytes.clone();
        skewed[at + 4] = 4; // Storage -> Auxiliary
        let err = RunConfig::decode(&skewed).unwrap_err();
        assert!(err.to_string().contains("schedule echo"), "{err}");
        // An unregistered block id is rejected before the cross-check.
        let mut unknown = bytes.clone();
        unknown[at + 4] = 9;
        let err = RunConfig::decode(&unknown).unwrap_err();
        assert!(err.to_string().contains("unknown block wire id"), "{err}");
        // Truncating inside the storage section is a typed error.
        assert!(RunConfig::decode(&bytes[..at - 3]).is_err());
    }

    #[test]
    fn node_partition_is_total_and_disjoint() {
        let (m, n) = (10, 4);
        for processes in [1, 2, 4, 14] {
            let mut seen = vec![false; m + n];
            for p in 0..processes {
                for id in hosted_nodes(p, processes, m, n) {
                    assert!(!seen[id], "node {id} hosted twice");
                    seen[id] = true;
                    assert_eq!(process_of(id, processes), p);
                }
            }
            assert!(seen.iter().all(|&s| s), "every node must be hosted");
        }
    }
}
