//! Coordinator-side helpers shared by both distributed engines.
//!
//! Everything here is transport-independent bookkeeping: traffic recording
//! (with loss retransmission and partition relay accounting), plan-driven
//! straggler charging, residual reduction, replay-history filtering, and
//! the final gather→polish step. The lockstep engine
//! (`crate::engine_lockstep`) and the supervised threaded engine
//! (`crate::engine_threaded`) both call into these, so the two runtimes
//! stay decision-for-decision identical by construction.

use ufc_core::engine::BlockResiduals;
use ufc_core::repair::assemble_point;
use ufc_core::{AdmgState, CoreError};
use ufc_model::{evaluate, OperatingPoint, UfcBreakdown, UfcInstance};

use crate::fault::{FaultTracker, IntegrityState, NodeId};
use crate::loss::LossyChannel;
use crate::message::{Message, CHECKSUM_OVERHEAD_BYTES};
use crate::node::{nan_max, NodeResiduals};
use crate::stats::MessageStats;

/// One iteration's inputs, buffered for checkpoint-restart replay.
pub(crate) struct HistoryEntry {
    /// The (1-based) iteration these inputs belong to.
    pub(crate) iteration: usize,
    /// Per-front-end λ̃ rows.
    pub(crate) rows: Vec<Vec<f64>>,
    /// Per-datacenter ã columns.
    pub(crate) a_cols: Vec<Vec<f64>>,
}

/// The buffered entries a node restored from a checkpoint taken after
/// iteration `base` must replay before rejoining iteration `k`.
pub(crate) fn replay_entries(
    history: &[HistoryEntry],
    base: usize,
    k: usize,
) -> impl Iterator<Item = &HistoryEntry> {
    history
        .iter()
        .filter(move |entry| entry.iteration > base && entry.iteration < k)
}

/// Worst *live* link latency in the deployment — the per-phase stall unit.
/// Links to evicted datacenters carry no traffic in degraded mode, so they
/// are excluded; with every datacenter evicted the stall unit is 0.
pub(crate) fn max_latency(instance: &UfcInstance, evicted: &[bool]) -> f64 {
    instance
        .latency_s
        .iter()
        .flat_map(|row| {
            row.iter()
                .enumerate()
                .filter(|&(j, _)| !evicted.get(j).copied().unwrap_or(false))
                .map(|(_, &l)| l)
        })
        .fold(0.0f64, f64::max)
}

/// Column `j` of the per-front-end λ̃ rows: the values bound for
/// datacenter `j`.
pub(crate) fn column_of(rows: &[Vec<f64>], j: usize) -> Vec<f64> {
    rows.iter().map(|row| row[j]).collect()
}

/// Row `i` of the per-datacenter ã columns: the values bound for
/// front-end `i`.
pub(crate) fn row_of(cols: &[Vec<f64>], i: usize) -> Vec<f64> {
    cols.iter().map(|col| col[i]).collect()
}

/// Plan-driven straggler accounting, identical in both engines: the
/// coordinator charges every scripted delay of a live node.
pub(crate) fn account_stragglers(tracker: &mut FaultTracker, m: usize, n: usize, k: usize) {
    for i in 0..m {
        let delay = tracker.plan().straggler_delay(NodeId::Frontend(i), k);
        if let Some(delay) = delay {
            tracker.record_straggler(delay);
        }
    }
    for j in 0..n {
        if tracker.is_evicted(j) {
            continue;
        }
        let delay = tracker.plan().straggler_delay(NodeId::Datacenter(j), k);
        if let Some(delay) = delay {
            tracker.record_straggler(delay);
        }
    }
}

/// One data message through the loss, corruption, and partition machinery:
/// charges retransmitted/relayed bytes, folds the worst attempt count into
/// `phase_max`, and returns the override value when corruption altered the
/// payload in flight.
#[allow(clippy::too_many_arguments)]
fn transmit_data(
    stats: &mut MessageStats,
    tracker: &mut FaultTracker,
    channel: &mut Option<&mut LossyChannel>,
    integrity: &mut IntegrityState,
    msg: &Message,
    i: usize,
    j: usize,
    k: usize,
    phase_max: &mut usize,
) -> Result<Option<f64>, CoreError> {
    stats.record(msg);
    if let Some(ch) = channel.as_deref_mut() {
        let attempts = ch.send();
        stats.total_bytes += (attempts - 1) * msg.wire_bytes();
        *phase_max = (*phase_max).max(attempts);
    }
    let mut delivered = None;
    if integrity.active() {
        let frame_bytes = msg.wire_bytes()
            + if integrity.verify {
                CHECKSUM_OVERHEAD_BYTES
            } else {
                0
            };
        // Charge the trailer on the first copy, the full frame on resends.
        stats.total_bytes += frame_bytes - msg.wire_bytes();
        let (override_value, attempts) = integrity.transmit(msg, k)?;
        stats.total_bytes += (attempts - 1) * frame_bytes;
        *phase_max = (*phase_max).max(attempts);
        delivered = override_value;
    }
    if tracker.plan().is_partitioned(i, j, k) {
        stats.total_bytes += msg.wire_bytes();
        tracker.report.partition_retransmissions += 1;
    }
    Ok(delivered)
}

/// Records the λ̃ scatter to every non-evicted datacenter. A lossy
/// `channel` charges the retransmitted bytes and reports the phase's
/// worst attempt count (the synchronous phase waits for its slowest
/// message); the integrity layer may corrupt a payload in flight (the
/// delivered value is written back into `rows`) or, when checksums are
/// verified, charge the trailer bytes and bounded retransmits; severed
/// partition links double their bytes (relay path). Returns the phase-max
/// attempt count (1 when lossless and uncorrupted).
///
/// # Errors
///
/// Propagates the integrity layer's typed failures (retransmit budget
/// exhausted, or a non-finite payload delivered unverified).
pub(crate) fn record_lambda_traffic(
    stats: &mut MessageStats,
    tracker: &mut FaultTracker,
    mut channel: Option<&mut LossyChannel>,
    integrity: &mut IntegrityState,
    rows: &mut [Vec<f64>],
    k: usize,
) -> Result<usize, CoreError> {
    let mut phase_max = 1usize;
    for (i, row) in rows.iter_mut().enumerate() {
        for (j, value) in row.iter_mut().enumerate() {
            if tracker.is_evicted(j) {
                continue;
            }
            let msg = Message::LambdaTilde {
                frontend: i,
                datacenter: j,
                value: *value,
            };
            let delivered = transmit_data(
                stats,
                tracker,
                &mut channel,
                integrity,
                &msg,
                i,
                j,
                k,
                &mut phase_max,
            )?;
            if let Some(v) = delivered {
                *value = v;
            }
        }
    }
    Ok(phase_max)
}

/// Records one datacenter's ã gather (mirror of [`record_lambda_traffic`]).
/// Returns this column's worst attempt count (1 when lossless and
/// uncorrupted).
///
/// # Errors
///
/// As for [`record_lambda_traffic`].
pub(crate) fn record_a_traffic(
    stats: &mut MessageStats,
    tracker: &mut FaultTracker,
    mut channel: Option<&mut LossyChannel>,
    integrity: &mut IntegrityState,
    a_tilde: &mut [f64],
    j: usize,
    k: usize,
) -> Result<usize, CoreError> {
    let mut phase_max = 1usize;
    for (i, value) in a_tilde.iter_mut().enumerate() {
        let msg = Message::ATilde {
            frontend: i,
            datacenter: j,
            value: *value,
        };
        let delivered = transmit_data(
            stats,
            tracker,
            &mut channel,
            integrity,
            &msg,
            i,
            j,
            k,
            &mut phase_max,
        )?;
        if let Some(v) = delivered {
            *value = v;
        }
    }
    Ok(phase_max)
}

/// Records every node's residual report and max-reduces the three
/// residuals (NaN-sticky, so a poisoned iterate cannot hide — see
/// [`nan_max`]); the stop decision itself belongs to the unified driver
/// (`ufc_core::engine::drive`), which applies the tolerance tests and
/// hands the verdict back through [`record_control`]. Also returns the
/// first node whose report is non-finite — the divergence gate's suspect.
pub(crate) fn reduce_residuals(
    stats: &mut MessageStats,
    fe: &[NodeResiduals],
    dc: &[Option<NodeResiduals>],
) -> (BlockResiduals, Option<NodeId>) {
    let mut reduced = BlockResiduals::default();
    let mut suspect = None;
    let m = fe.len();
    let all = fe
        .iter()
        .map(|r| Some(*r))
        .chain(dc.iter().copied())
        .enumerate();
    for (node, r) in all {
        let Some(r) = r else { continue };
        stats.record(&Message::ResidualReport {
            node,
            link: r.link,
            balance: r.balance,
            movement: r.movement,
        });
        reduced.link = nan_max(reduced.link, r.link);
        reduced.balance = nan_max(reduced.balance, r.balance);
        reduced.movement = nan_max(reduced.movement, r.movement);
        let finite = r.link.is_finite() && r.balance.is_finite() && r.movement.is_finite();
        if suspect.is_none() && !finite {
            suspect = Some(if node < m {
                NodeId::Frontend(node)
            } else {
                NodeId::Datacenter(node - m)
            });
        }
    }
    (reduced, suspect)
}

/// Accounts the coordinator's continue/stop broadcast to every live node.
pub(crate) fn record_control(stats: &mut MessageStats, stop: bool, node_count: usize) {
    for _ in 0..node_count {
        stats.record(&Message::Control { stop });
    }
}

/// Polishes the gathered iterate into a feasible point and evaluates it
/// (same repair as the in-memory solver). `d` is the gathered storage
/// column — all zeros when the schedule has no storage block.
pub(crate) fn finish(
    instance: &UfcInstance,
    lambda_rows: Vec<Vec<f64>>,
    mu: Vec<f64>,
    d: Vec<f64>,
    fuel_cell_only: bool,
) -> Result<(OperatingPoint, UfcBreakdown), CoreError> {
    let mut state = AdmgState::zeros(instance);
    for (i, row) in lambda_rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            let k = state.idx(i, j);
            state.lambda[k] = v;
        }
    }
    state.mu = mu;
    state.d = d;
    let point = assemble_point(instance, &state, fuel_cell_only)?;
    let breakdown = evaluate(instance, &point)?;
    Ok((point, breakdown))
}
