//! Deterministic fault injection for the distributed runtime.
//!
//! [`crate::loss::LossConfig`] models i.i.d. *message* loss; this module
//! extends the failure model to the node level: crash-stop failures with
//! optional recovery, stragglers (slow replies), and partition windows that
//! sever front-end/datacenter links for a span of iterations. A
//! [`FaultPlan`] is a fully deterministic schedule — either hand-built or
//! expanded from a seed by [`FaultPlan::random`] — so that a faulty run is
//! exactly reproducible and the lockstep engine can mirror the threaded
//! supervisor decision-for-decision.
//!
//! The supervisor's recovery policy lives in [`FaultTracker`]: a crashed
//! node is contacted with exponential-backoff deadlines; each expired
//! ladder counts one *attempt*. A node whose plan says it recovers after
//! `k` attempts is respawned from the last checkpoint and replayed. A
//! datacenter still dead after [`FaultPlan::eviction_deadline`] attempts is
//! evicted — its `μ_j`/`λ_·j` blocks are pinned to zero and the solve
//! continues degraded — and re-admitted (fresh state) if it later recovers.
//! A front-end cannot be evicted (its arrivals must be routed), so a
//! permanently dead front-end is a fatal, typed
//! [`ufc_core::CoreError::NodeFailure`].

use std::time::Duration;

use ufc_core::telemetry::IntegrityCounters;
use ufc_core::CoreError;

use crate::message::{Message, VALUE_OFFSET};
use crate::rng::SplitMix64;

/// A protocol participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeId {
    /// Front-end `i`.
    Frontend(usize),
    /// Datacenter `j`.
    Datacenter(usize),
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::Frontend(i) => write!(f, "frontend[{i}]"),
            NodeId::Datacenter(j) => write!(f, "datacenter[{j}]"),
        }
    }
}

/// A crash-stop failure: the node dies when asked to compute iteration
/// `at_iteration` (1-based, matching [`crate::DistRunReport::iterations`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// Which node crashes.
    pub node: NodeId,
    /// Iteration whose compute command the node dies on.
    pub at_iteration: usize,
    /// Contact attempts until the node answers again; `None` = permanent.
    pub down_attempts: Option<u32>,
}

/// A straggler: the node delays its reply at one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StragglerEvent {
    /// Which node is slow.
    pub node: NodeId,
    /// Iteration at which the reply is delayed.
    pub at_iteration: usize,
    /// Injected delay (must stay below the supervisor's backoff ladder,
    /// else it is indistinguishable from a crash).
    pub delay: Duration,
}

/// A partition window: links between the listed front-ends and datacenters
/// are severed for `[from_iteration, to_iteration)`. Traffic is re-routed
/// over a relay path, which doubles the affected bytes and stalls each data
/// phase by one extra propagation delay — pure accounting, the iterates are
/// unchanged (delivery remains reliable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First iteration of the window (1-based, inclusive).
    pub from_iteration: usize,
    /// First iteration after the window (exclusive).
    pub to_iteration: usize,
    /// Front-ends on the severed side.
    pub frontends: Vec<usize>,
    /// Datacenters on the severed side.
    pub datacenters: Vec<usize>,
}

/// How an injected corruption mangles a data payload's bytes.
///
/// The first four kinds are *value-level*: they mangle the 8-byte value
/// field of an encoded data message and are drawn per event when
/// [`CorruptionConfig::kind`] is `None`. The `Frame*` kinds are
/// *wire-level*: they act on whole TCP frames of the socket engine
/// (truncation, duplication, reordering) and are only exercised when
/// pinned explicitly — see [`CorruptionKind::is_wire_level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Flip one uniformly chosen bit of the 8-byte value field.
    BitFlip,
    /// Flip the IEEE-754 sign bit.
    SignFlip,
    /// Replace the value with a quiet NaN.
    NanSubstitution,
    /// Scale the value by `2^±e` for a random exponent `e ∈ [1, 30]`.
    MagnitudeScale,
    /// Truncate a wire frame mid-payload (socket engine only): the length
    /// prefix is rewritten so the receiver reads a complete-but-short frame
    /// whose CRC cannot verify.
    FrameTruncate,
    /// Send a wire frame twice back-to-back (socket engine only); the
    /// receiver's duplicate guard must absorb the copy.
    FrameDuplicate,
    /// Hold a reply frame and deliver it after its successor (socket engine
    /// only); the coordinator's gather must stay order-insensitive.
    FrameReorder,
}

impl CorruptionKind {
    /// Whether this kind mangles whole wire frames instead of an encoded
    /// value field. Wire-level kinds require the socket engine (they act on
    /// real TCP bytes) and are rejected by the in-process engines.
    #[must_use]
    pub fn is_wire_level(self) -> bool {
        matches!(
            self,
            CorruptionKind::FrameTruncate
                | CorruptionKind::FrameDuplicate
                | CorruptionKind::FrameReorder
        )
    }
}

/// Seeded, deterministic payload-corruption configuration, applied at the
/// link level like [`crate::loss::LossConfig`]: every λ̃/ã data message is
/// independently corrupted in flight with probability `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionConfig {
    /// Per-message corruption probability in `[0, 1)`.
    pub rate: f64,
    /// RNG seed for the corruption process.
    pub seed: u64,
    /// Fixed mangling, or `None` to draw a kind per event.
    pub kind: Option<CorruptionKind>,
    /// Retransmits granted per message when the receiver verifies
    /// checksums; a payload still corrupt after this many resends is a
    /// typed [`CoreError::CorruptPayload`].
    pub max_retransmits: u32,
}

impl CorruptionConfig {
    /// Creates a configuration (random kind, 8 retransmits), validating the
    /// rate.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] unless `0 ≤ rate < 1` (NaN rejected).
    pub fn try_new(rate: f64, seed: u64) -> Result<Self, CoreError> {
        if !(0.0..1.0).contains(&rate) {
            return Err(CoreError::invalid_config(format!(
                "corruption rate must be in [0, 1), got {rate}"
            )));
        }
        Ok(CorruptionConfig {
            rate,
            seed,
            kind: None,
            max_retransmits: 8,
        })
    }

    /// Creates a configuration, panicking on an invalid rate (thin wrapper
    /// over [`CorruptionConfig::try_new`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate < 1`.
    #[must_use]
    pub fn new(rate: f64, seed: u64) -> Self {
        match Self::try_new(rate, seed) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Pins every event to one mangling kind.
    #[must_use]
    pub fn with_kind(mut self, kind: CorruptionKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Sets the retransmit budget (minimum 1).
    #[must_use]
    pub fn with_max_retransmits(mut self, retransmits: u32) -> Self {
        self.max_retransmits = retransmits.max(1);
        self
    }

    fn check(&self) -> Result<(), CoreError> {
        if !(0.0..1.0).contains(&self.rate) {
            return Err(CoreError::invalid_config(format!(
                "corruption rate must be in [0, 1), got {}",
                self.rate
            )));
        }
        if self.max_retransmits == 0 {
            return Err(CoreError::invalid_config(
                "corruption retransmit budget must be ≥ 1",
            ));
        }
        Ok(())
    }
}

/// A deterministic fault schedule plus the supervisor's policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    crashes: Vec<CrashEvent>,
    stragglers: Vec<StragglerEvent>,
    partitions: Vec<PartitionWindow>,
    /// Link-level payload corruption (`None` = clean links). Orthogonal to
    /// the node-level schedule: [`FaultPlan::is_trivial`] ignores it, so
    /// corruption alone does not switch on replay buffering.
    pub corruption: Option<CorruptionConfig>,
    /// Take a checkpoint every this many iterations (`0` disables; forced
    /// checkpoints still happen after membership changes).
    pub checkpoint_interval: usize,
    /// Failed contact attempts before a datacenter is evicted (a front-end
    /// failure at this point is fatal instead).
    pub eviction_deadline: u32,
    /// Base reply deadline; the supervisor retries with deadlines
    /// `phase_timeout · 2^r` for `r = 0..backoff_rounds` before declaring
    /// a contact attempt failed.
    pub phase_timeout: Duration,
    /// Number of exponential-backoff receive rounds per contact attempt.
    pub backoff_rounds: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            crashes: Vec::new(),
            stragglers: Vec::new(),
            partitions: Vec::new(),
            corruption: None,
            checkpoint_interval: 4,
            eviction_deadline: 3,
            phase_timeout: Duration::from_millis(200),
            backoff_rounds: 3,
        }
    }
}

impl FaultPlan {
    /// An empty plan: supervision on, nothing injected, checkpoints off.
    /// This is what the plain threaded runtime runs under, so a clean run
    /// carries no checkpoint traffic and matches lockstep byte-for-byte.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            checkpoint_interval: 0,
            ..FaultPlan::default()
        }
    }

    /// An empty plan with default checkpointing — the base for builders.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a permanent crash.
    #[must_use]
    pub fn crash_at(mut self, node: NodeId, at_iteration: usize) -> Self {
        self.crashes.push(CrashEvent {
            node,
            at_iteration,
            down_attempts: None,
        });
        self
    }

    /// Adds a crash that recovers after `attempts` failed contacts.
    #[must_use]
    pub fn crash_and_recover(mut self, node: NodeId, at_iteration: usize, attempts: u32) -> Self {
        self.crashes.push(CrashEvent {
            node,
            at_iteration,
            down_attempts: Some(attempts.max(1)),
        });
        self
    }

    /// Adds a straggler delay.
    #[must_use]
    pub fn straggle(mut self, node: NodeId, at_iteration: usize, delay: Duration) -> Self {
        self.stragglers.push(StragglerEvent {
            node,
            at_iteration,
            delay,
        });
        self
    }

    /// Adds a partition window.
    #[must_use]
    pub fn partition(mut self, window: PartitionWindow) -> Self {
        self.partitions.push(window);
        self
    }

    /// Enables link-level payload corruption.
    #[must_use]
    pub fn with_corruption(mut self, corruption: CorruptionConfig) -> Self {
        self.corruption = Some(corruption);
        self
    }

    /// Sets the checkpoint cadence (`0` disables periodic checkpoints).
    #[must_use]
    pub fn with_checkpoint_interval(mut self, interval: usize) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Sets the eviction deadline (failed attempts; minimum 1).
    #[must_use]
    pub fn with_eviction_deadline(mut self, attempts: u32) -> Self {
        self.eviction_deadline = attempts.max(1);
        self
    }

    /// Sets the base reply deadline.
    #[must_use]
    pub fn with_phase_timeout(mut self, timeout: Duration) -> Self {
        self.phase_timeout = timeout;
        self
    }

    /// Expands a seed into a random plan over `m` front-ends and `n`
    /// datacenters: each datacenter crashes with probability `crash_rate`
    /// (30% of those permanently), each front-end with half that rate
    /// (always recoverable), and each node straggles once with probability
    /// `straggler_rate`. Crash iterations land in `[1, horizon]`.
    #[must_use]
    pub fn random(
        seed: u64,
        m: usize,
        n: usize,
        horizon: usize,
        crash_rate: f64,
        straggler_rate: f64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let horizon = horizon.max(1);
        let mut plan = FaultPlan::default();
        for j in 0..n {
            if rng.uniform() < crash_rate {
                let at = 1 + (rng.next() as usize) % horizon;
                if rng.uniform() < 0.3 {
                    plan = plan.crash_at(NodeId::Datacenter(j), at);
                } else {
                    // 1–5 attempts: outages longer than the default
                    // eviction deadline (3) exercise evict-then-readmit.
                    let attempts = 1 + (rng.next() % 5) as u32;
                    plan = plan.crash_and_recover(NodeId::Datacenter(j), at, attempts);
                }
            }
            if rng.uniform() < straggler_rate {
                let at = 1 + (rng.next() as usize) % horizon;
                let ms = 1 + rng.next() % 5;
                plan = plan.straggle(NodeId::Datacenter(j), at, Duration::from_millis(ms));
            }
        }
        for i in 0..m {
            if rng.uniform() < crash_rate * 0.5 {
                let at = 1 + (rng.next() as usize) % horizon;
                let attempts = 1 + (rng.next() % 2) as u32;
                plan = plan.crash_and_recover(NodeId::Frontend(i), at, attempts);
            }
            if rng.uniform() < straggler_rate {
                let at = 1 + (rng.next() as usize) % horizon;
                let ms = 1 + rng.next() % 5;
                plan = plan.straggle(NodeId::Frontend(i), at, Duration::from_millis(ms));
            }
        }
        plan
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] if two crash events share a `(node,
    /// iteration)` pair, an iteration index is zero, a partition window is
    /// empty, or the eviction deadline is zero.
    pub fn check(&self) -> Result<(), CoreError> {
        if self.eviction_deadline == 0 {
            return Err(CoreError::invalid_config("eviction deadline must be ≥ 1"));
        }
        if self.phase_timeout.is_zero() {
            return Err(CoreError::invalid_config("phase timeout must be nonzero"));
        }
        for (idx, c) in self.crashes.iter().enumerate() {
            if c.at_iteration == 0 {
                return Err(CoreError::invalid_config(format!(
                    "crash on {} at iteration 0 (iterations are 1-based)",
                    c.node
                )));
            }
            if self.crashes[..idx]
                .iter()
                .any(|p| p.node == c.node && p.at_iteration == c.at_iteration)
            {
                return Err(CoreError::invalid_config(format!(
                    "duplicate crash for {} at iteration {}",
                    c.node, c.at_iteration
                )));
            }
        }
        for s in &self.stragglers {
            if s.at_iteration == 0 {
                return Err(CoreError::invalid_config("straggler at iteration 0"));
            }
            if s.delay.as_secs_f64() >= self.ladder_seconds() {
                return Err(CoreError::invalid_config(format!(
                    "straggler delay {:?} on {} exceeds the backoff ladder \
                     ({:.3}s) — it would be misdiagnosed as a crash",
                    s.delay,
                    s.node,
                    self.ladder_seconds()
                )));
            }
        }
        for p in &self.partitions {
            if p.from_iteration == 0 || p.to_iteration <= p.from_iteration {
                return Err(CoreError::invalid_config("empty partition window"));
            }
        }
        if let Some(corruption) = &self.corruption {
            corruption.check()?;
        }
        Ok(())
    }

    /// The crash scheduled for `node` at `iteration`, if any.
    #[must_use]
    pub fn crash_at_iteration(&self, node: NodeId, iteration: usize) -> Option<&CrashEvent> {
        self.crashes
            .iter()
            .find(|c| c.node == node && c.at_iteration == iteration)
    }

    /// Crash iterations for one node, ascending (the worker's crash script).
    #[must_use]
    pub fn crash_iterations_for(&self, node: NodeId) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .crashes
            .iter()
            .filter(|c| c.node == node)
            .map(|c| c.at_iteration)
            .collect();
        out.sort_unstable();
        out
    }

    /// Straggler delay for `node` at `iteration`, if any.
    #[must_use]
    pub fn straggler_delay(&self, node: NodeId, iteration: usize) -> Option<Duration> {
        self.stragglers
            .iter()
            .find(|s| s.node == node && s.at_iteration == iteration)
            .map(|s| s.delay)
    }

    /// Straggler schedule for one node as `(iteration, delay)` pairs.
    #[must_use]
    pub fn stragglers_for(&self, node: NodeId) -> Vec<(usize, Duration)> {
        self.stragglers
            .iter()
            .filter(|s| s.node == node)
            .map(|s| (s.at_iteration, s.delay))
            .collect()
    }

    /// Whether any partition window covers `iteration`.
    #[must_use]
    pub fn partition_active(&self, iteration: usize) -> bool {
        self.partitions
            .iter()
            .any(|p| iteration >= p.from_iteration && iteration < p.to_iteration)
    }

    /// Whether the `(frontend, datacenter)` link is severed at `iteration`.
    #[must_use]
    pub fn is_partitioned(&self, frontend: usize, datacenter: usize, iteration: usize) -> bool {
        self.partitions.iter().any(|p| {
            iteration >= p.from_iteration
                && iteration < p.to_iteration
                && p.frontends.contains(&frontend)
                && p.datacenters.contains(&datacenter)
        })
    }

    /// Total crashes scheduled.
    #[must_use]
    pub fn crash_count(&self) -> usize {
        self.crashes.len()
    }

    /// Total stragglers scheduled.
    #[must_use]
    pub fn straggler_count(&self) -> usize {
        self.stragglers.len()
    }

    /// Total partition windows scheduled.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the node-level schedule injects anything at all. Link-level
    /// corruption is deliberately excluded: it needs no replay buffering or
    /// supervision, so a corruption-only plan still runs the plain path.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.crashes.is_empty() && self.stragglers.is_empty() && self.partitions.is_empty()
    }

    /// Worst-case wall-clock of one failed contact attempt: the full
    /// backoff ladder `Σ_{r<R} timeout·2^r`.
    #[must_use]
    pub fn ladder_seconds(&self) -> f64 {
        let factor = (1u64 << self.backoff_rounds) - 1;
        self.phase_timeout.as_secs_f64() * factor as f64
    }
}

/// What happened to a dead node after the supervisor exhausted its policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// The node answered after this many failed attempts; respawn from the
    /// last checkpoint and replay.
    Recovered {
        /// Failed contact attempts before recovery.
        attempts: u32,
    },
    /// A datacenter stayed dead past the deadline; pin its blocks and
    /// continue degraded.
    Evicted {
        /// Failed contact attempts charged before eviction.
        attempts: u32,
    },
}

/// Post-run fault accounting attached to [`crate::DistRunReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Crash events that actually fired before the run ended.
    pub crashes_observed: usize,
    /// Straggler events that actually fired.
    pub stragglers_observed: usize,
    /// Failed contact attempts across all crashes.
    pub downtime_attempts: usize,
    /// Wall-clock lost to expired backoff ladders (seconds).
    pub downtime_seconds: f64,
    /// Wall-clock lost to straggler delays (seconds).
    pub straggler_seconds: f64,
    /// Iterations recomputed during checkpoint-restart replays.
    pub recomputed_iterations: usize,
    /// Checkpoints taken (periodic + forced).
    pub checkpoints_taken: usize,
    /// Datacenters evicted at any point, ascending.
    pub evicted: Vec<usize>,
    /// Datacenters re-admitted after eviction, ascending.
    pub readmitted: Vec<usize>,
    /// Extra message copies sent around partition windows.
    pub partition_retransmissions: usize,
    /// Final UFC minus the clean (fault-free lockstep) UFC, in dollars.
    pub ufc_delta_vs_clean: f64,
}

impl FaultReport {
    /// This report folded into the telemetry layer's plain counter form
    /// (the delta-vs-clean belongs to the report, not the counters).
    #[must_use]
    pub fn counters(&self) -> ufc_core::telemetry::FaultCounters {
        ufc_core::telemetry::FaultCounters {
            crashes_resolved: self.crashes_observed as u64,
            stragglers_observed: self.stragglers_observed as u64,
            downtime_seconds: self.downtime_seconds,
            straggler_seconds: self.straggler_seconds,
            recomputed_iterations: self.recomputed_iterations as u64,
            checkpoints_taken: self.checkpoints_taken as u64,
            evictions: self.evicted.len() as u64,
            readmissions: self.readmitted.len() as u64,
            partition_retransmissions: self.partition_retransmissions as u64,
        }
    }
}

/// The supervisor's decision state machine, shared verbatim by the
/// threaded runtime and its lockstep mirror so both make identical
/// recovery/eviction/readmission decisions.
#[derive(Debug, Clone)]
pub struct FaultTracker {
    plan: FaultPlan,
    /// Cumulative failed contact attempts per datacenter / front-end.
    dc_attempts: Vec<u32>,
    fe_attempts: Vec<u32>,
    /// Currently evicted datacenters, with the attempts needed to readmit
    /// (`None` = permanent, never readmitted).
    evicted: Vec<Option<Option<u32>>>,
    /// Fault accounting being accumulated.
    pub report: FaultReport,
}

impl FaultTracker {
    /// New tracker for `m` front-ends and `n` datacenters.
    #[must_use]
    pub fn new(plan: FaultPlan, m: usize, n: usize) -> Self {
        FaultTracker {
            plan,
            dc_attempts: vec![0; n],
            fe_attempts: vec![0; m],
            evicted: vec![None; n],
            report: FaultReport::default(),
        }
    }

    /// The plan this tracker enforces.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether datacenter `j` is currently evicted.
    #[must_use]
    pub fn is_evicted(&self, j: usize) -> bool {
        self.evicted[j].is_some()
    }

    /// Count of currently active (non-evicted) datacenters.
    #[must_use]
    pub fn active_datacenters(&self) -> usize {
        self.evicted.iter().filter(|e| e.is_none()).count()
    }

    /// Per-datacenter eviction mask (`mask[j]` ⇔ `j` currently evicted),
    /// for restricting WAN-latency estimates to live links.
    #[must_use]
    pub fn evicted_mask(&self) -> Vec<bool> {
        self.evicted.iter().map(|e| e.is_some()).collect()
    }

    /// Resolves a node that failed to reply at `iteration`: charge backoff
    /// attempts until the plan lets it recover, the eviction deadline
    /// fires, or (for front-ends / unplanned deaths) the failure is fatal.
    ///
    /// # Errors
    ///
    /// [`CoreError::NodeFailure`] for an unplanned death or an
    /// unrecoverable front-end.
    pub fn resolve_crash(
        &mut self,
        node: NodeId,
        iteration: usize,
    ) -> Result<Resolution, CoreError> {
        let Some(event) = self.plan.crash_at_iteration(node, iteration).copied() else {
            return Err(CoreError::node_failure(
                node.to_string(),
                iteration,
                "node died with no scheduled fault; treating as unrecoverable",
            ));
        };
        self.report.crashes_observed += 1;
        let deadline = self.plan.eviction_deadline;
        let ladder = self.plan.ladder_seconds();
        // A node either recovers within its scripted attempt count or stays
        // dead until the deadline: the charge is plan-determined.
        let charged = match event.down_attempts {
            Some(d) if d <= deadline => d,
            _ => deadline,
        };
        match node {
            NodeId::Frontend(i) => self.fe_attempts[i] += charged,
            NodeId::Datacenter(j) => self.dc_attempts[j] += charged,
        }
        self.report.downtime_attempts += charged as usize;
        self.report.downtime_seconds += ladder * f64::from(charged);
        if let Some(d) = event.down_attempts {
            if d <= deadline {
                return Ok(Resolution::Recovered { attempts: charged });
            }
        }
        match node {
            NodeId::Datacenter(_) if self.active_datacenters() <= 1 => {
                Err(CoreError::node_failure(
                    node.to_string(),
                    iteration,
                    "cannot evict the last active datacenter",
                ))
            }
            NodeId::Datacenter(j) => {
                let remaining = event.down_attempts.map(|d| d.saturating_sub(charged));
                self.evicted[j] = Some(remaining);
                self.report.evicted.push(j);
                Ok(Resolution::Evicted { attempts: charged })
            }
            NodeId::Frontend(_) => Err(CoreError::node_failure(
                node.to_string(),
                iteration,
                format!(
                    "front-end dead after {charged} attempts; front-ends \
                     cannot be evicted (their arrivals must be routed)"
                ),
            )),
        }
    }

    /// One readmission probe per evicted datacenter, called at the start of
    /// each iteration. Returns the datacenters readmitted now.
    pub fn probe_readmissions(&mut self) -> Vec<usize> {
        let mut back = Vec::new();
        for (j, slot) in self.evicted.iter_mut().enumerate() {
            // A permanent eviction (`Some(None)`) is never readmitted.
            if let Some(Some(left)) = slot {
                self.report.downtime_attempts += 1;
                if *left <= 1 {
                    *slot = None;
                    self.report.readmitted.push(j);
                    back.push(j);
                } else {
                    *left -= 1;
                }
            }
        }
        back
    }

    /// Accounts a straggler firing (both runtimes charge the *planned*
    /// delay so their reports agree exactly).
    pub fn record_straggler(&mut self, delay: Duration) {
        self.report.stragglers_observed += 1;
        self.report.straggler_seconds += delay.as_secs_f64();
    }
}

/// The seeded corruption process: decides per send attempt whether the
/// payload is mangled in flight, and how.
#[derive(Debug, Clone)]
struct CorruptionChannel {
    rate: f64,
    kind: Option<CorruptionKind>,
    rng: SplitMix64,
}

impl CorruptionChannel {
    fn new(config: &CorruptionConfig) -> Self {
        CorruptionChannel {
            rate: config.rate,
            kind: config.kind,
            rng: SplitMix64::new(config.seed),
        }
    }

    /// One Bernoulli draw: is this attempt corrupted?
    fn strikes(&mut self) -> bool {
        self.rng.uniform() < self.rate
    }

    /// Mangles the value field of an encoded data frame in place.
    fn mangle(&mut self, frame: &mut [u8]) {
        let kind = self.kind.unwrap_or_else(|| match self.rng.next() % 4 {
            0 => CorruptionKind::BitFlip,
            1 => CorruptionKind::SignFlip,
            2 => CorruptionKind::NanSubstitution,
            _ => CorruptionKind::MagnitudeScale,
        });
        let value = &mut frame[VALUE_OFFSET..VALUE_OFFSET + 8];
        match kind {
            CorruptionKind::BitFlip => {
                let bit = (self.rng.next() % 64) as usize;
                value[bit / 8] ^= 1 << (bit % 8);
            }
            CorruptionKind::SignFlip => value[7] ^= 0x80,
            CorruptionKind::NanSubstitution => {
                value.copy_from_slice(&f64::NAN.to_le_bytes());
            }
            CorruptionKind::MagnitudeScale => {
                let e = 1 + (self.rng.next() % 30) as i32;
                let e = if self.rng.next() & 1 == 0 { e } else { -e };
                let v = f64::from_le_bytes(value.try_into().expect("8-byte field"));
                value.copy_from_slice(&(v * f64::powi(2.0, e)).to_le_bytes());
            }
            // Wire-level kinds never reach the value channel:
            // `IntegrityState::new` leaves the channel disarmed for them and
            // the per-event draw above only covers the four value kinds.
            CorruptionKind::FrameTruncate
            | CorruptionKind::FrameDuplicate
            | CorruptionKind::FrameReorder => {}
        }
    }
}

/// What a [`WireChaos`] draw decided for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WireVerdict {
    /// Deliver the frame untouched.
    Clean,
    /// The frame bytes were truncated in place; the receiver's CRC check
    /// must reject them and trigger a `Nak`/resend round.
    Truncated,
    /// Send (or deliver) the frame twice back-to-back.
    Duplicated,
    /// Hold this frame and deliver it after its successor (ingress only).
    Reordered,
}

/// The seeded wire-level chaos process of the socket engine: one instance
/// per connection *direction*, applying frame-granular §12 draws to the
/// actual TCP bytes. Draw order mirrors [`CorruptionChannel`]: one Bernoulli
/// `uniform() < rate` per frame, then (for truncation) one `next()` for the
/// cut point — so a given `(seed, salt)` pair injects the same chaos on
/// every run.
#[derive(Debug, Clone)]
pub(crate) struct WireChaos {
    rate: f64,
    kind: CorruptionKind,
    rng: SplitMix64,
}

impl WireChaos {
    /// Chaos for the command (coordinator→worker) direction, or `None` when
    /// the config does not pin a wire-level kind. Frame reordering is never
    /// applied to commands: their execution order is protocol state, and a
    /// reordered command would draw a wrong-iteration reply that the gather
    /// misreads as a dead node.
    pub(crate) fn egress(config: Option<&CorruptionConfig>, salt: u64) -> Option<Self> {
        Self::armed(config, salt).filter(|c| c.kind != CorruptionKind::FrameReorder)
    }

    /// Chaos for the reply (worker→coordinator) direction, or `None` when
    /// the config does not pin a wire-level kind.
    pub(crate) fn ingress(config: Option<&CorruptionConfig>, salt: u64) -> Option<Self> {
        Self::armed(config, salt)
    }

    fn armed(config: Option<&CorruptionConfig>, salt: u64) -> Option<Self> {
        let config = config?;
        let kind = config.kind.filter(|k| k.is_wire_level())?;
        Some(WireChaos {
            rate: config.rate,
            kind,
            rng: SplitMix64::new(config.seed ^ salt),
        })
    }

    /// One draw over an outgoing `[len][payload]` wire buffer, mangling it
    /// in place for truncation. A truncated frame keeps a coherent length
    /// prefix (so framing never desynchronizes) but an impossible CRC.
    pub(crate) fn next_egress(&mut self, wire: &mut Vec<u8>) -> WireVerdict {
        if self.rng.uniform() >= self.rate {
            return WireVerdict::Clean;
        }
        match self.kind {
            CorruptionKind::FrameTruncate => Self::truncate(wire, 4, &mut self.rng),
            CorruptionKind::FrameDuplicate => WireVerdict::Duplicated,
            _ => WireVerdict::Clean,
        }
    }

    /// One draw over an incoming de-framed payload, truncating it in place
    /// when the truncation kind strikes.
    pub(crate) fn next_ingress(&mut self, payload: &mut Vec<u8>) -> WireVerdict {
        if self.rng.uniform() >= self.rate {
            return WireVerdict::Clean;
        }
        match self.kind {
            CorruptionKind::FrameTruncate => Self::truncate(payload, 0, &mut self.rng),
            CorruptionKind::FrameDuplicate => WireVerdict::Duplicated,
            CorruptionKind::FrameReorder => WireVerdict::Reordered,
            _ => WireVerdict::Clean,
        }
    }

    /// Truncates the payload part of `buf` (which starts at `header` bytes
    /// in) to a uniformly drawn `cut ∈ [6, payload_len)`, keeping at least
    /// magic, kind, and a (now wrong) CRC so decoding fails cleanly. Frames
    /// too short to cut pass through clean.
    fn truncate(buf: &mut Vec<u8>, header: usize, rng: &mut SplitMix64) -> WireVerdict {
        let payload_len = buf.len().saturating_sub(header);
        if payload_len <= 6 {
            return WireVerdict::Clean;
        }
        let cut = 6 + (rng.next() as usize) % (payload_len - 6);
        if header == 4 {
            buf[..4].copy_from_slice(&(cut as u32).to_le_bytes());
        }
        buf.truncate(header + cut);
        WireVerdict::Truncated
    }
}

/// Per-run integrity machinery shared by both engines: the corruption
/// channel, the receiver-side verify flag, and the counters that land in
/// the run report. Both engines drive it through the shared coordinator
/// record helpers in deterministic link order, so a lockstep run and a
/// threaded run with the same seed corrupt the same messages.
#[derive(Debug, Clone)]
pub(crate) struct IntegrityState {
    channel: Option<CorruptionChannel>,
    /// Whether receivers verify the CRC32 trailer (and retransmit on
    /// mismatch) — [`ufc_core::AdmgSettings::verify_checksums`].
    pub(crate) verify: bool,
    max_retransmits: u32,
    /// Counters for the run report / telemetry.
    pub(crate) counters: IntegrityCounters,
    /// Receiver of the most recent *delivered* corruption (verify off) —
    /// the divergence gate's prime suspect when residuals later explode.
    pub(crate) last_corrupted: Option<String>,
}

/// Endpoint strings of a data message: `(link, receiver)`.
fn data_endpoints(msg: &Message) -> (String, String) {
    match msg {
        Message::LambdaTilde {
            frontend,
            datacenter,
            ..
        } => (
            format!("frontend[{frontend}]→datacenter[{datacenter}]"),
            format!("datacenter[{datacenter}]"),
        ),
        Message::ATilde {
            frontend,
            datacenter,
            ..
        } => (
            format!("datacenter[{datacenter}]→frontend[{frontend}]"),
            format!("frontend[{frontend}]"),
        ),
        _ => ("coordinator".to_string(), "coordinator".to_string()),
    }
}

impl IntegrityState {
    pub(crate) fn new(corruption: Option<&CorruptionConfig>, verify: bool) -> Self {
        IntegrityState {
            // A config pinned to a wire-level kind belongs to the socket
            // engine's `WireChaos` pumps; the value channel stays disarmed
            // so the two injection layers never double-draw from one seed.
            channel: corruption
                .filter(|c| !c.kind.is_some_and(|k| k.is_wire_level()))
                .map(CorruptionChannel::new),
            verify,
            max_retransmits: corruption.map_or(1, |c| c.max_retransmits),
            counters: IntegrityCounters::default(),
            last_corrupted: None,
        }
    }

    /// Whether this run carries any integrity machinery at all (corruption
    /// injected or checksums verified). When `false` every transmit is a
    /// no-op and the byte accounting is bit-identical to a plain run.
    pub(crate) fn active(&self) -> bool {
        self.channel.is_some() || self.verify
    }

    /// Transmits one data message through the corruption channel. Returns
    /// `(delivered, attempts)`: `delivered` is `Some(v)` when the receiver
    /// accepted a value different from (or coincidentally equal to) the
    /// sent one, `None` for an untouched delivery; `attempts ≥ 1` counts
    /// sends including checksum-triggered retransmits.
    ///
    /// # Errors
    ///
    /// * [`CoreError::CorruptPayload`] when checksums are on and the
    ///   retransmit budget is exhausted.
    /// * [`CoreError::Divergence`] when checksums are off and a non-finite
    ///   payload would be folded into the receiver's iterate — failing fast
    ///   with the link named beats a NaN quietly poisoning the solve.
    pub(crate) fn transmit(
        &mut self,
        msg: &Message,
        k: usize,
    ) -> Result<(Option<f64>, usize), CoreError> {
        let Some(channel) = self.channel.as_mut() else {
            return Ok((None, 1));
        };
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            if !channel.strikes() {
                return Ok((None, attempts));
            }
            self.counters.corruptions_injected += 1;
            let mut frame = msg.encode();
            channel.mangle(&mut frame);
            if self.verify {
                match Message::decode(&frame) {
                    Err(_) => {
                        self.counters.corruptions_detected += 1;
                        if attempts > self.max_retransmits as usize {
                            let (link, _) = data_endpoints(msg);
                            return Err(CoreError::corrupt_payload(
                                link,
                                k,
                                format!(
                                    "checksum still failing after {} retransmits",
                                    self.max_retransmits
                                ),
                            ));
                        }
                        self.counters.checksum_retransmissions += 1;
                    }
                    // The mangling landed on bytes that left the frame
                    // bit-identical (e.g. a magnitude scale of ±0.0): the
                    // checksum passes because nothing corrupt arrived.
                    Ok(delivered) => return Ok((delivered.data_value(), attempts)),
                }
            } else {
                let bytes: [u8; 8] = frame[VALUE_OFFSET..VALUE_OFFSET + 8]
                    .try_into()
                    .expect("8-byte field");
                let value = f64::from_le_bytes(bytes);
                self.counters.corruptions_delivered += 1;
                let (link, receiver) = data_endpoints(msg);
                if !value.is_finite() {
                    return Err(CoreError::divergence_at(
                        "transmit",
                        k,
                        receiver,
                        format!("non-finite payload {value} delivered on {link}"),
                    ));
                }
                self.last_corrupted = Some(receiver);
                return Ok((Some(value), attempts));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookups() {
        let plan = FaultPlan::new()
            .crash_and_recover(NodeId::Datacenter(1), 5, 2)
            .crash_at(NodeId::Datacenter(0), 9)
            .straggle(NodeId::Frontend(2), 3, Duration::from_millis(4));
        plan.check().unwrap();
        assert_eq!(plan.crash_count(), 2);
        assert!(plan.crash_at_iteration(NodeId::Datacenter(1), 5).is_some());
        assert!(plan.crash_at_iteration(NodeId::Datacenter(1), 6).is_none());
        assert_eq!(
            plan.straggler_delay(NodeId::Frontend(2), 3),
            Some(Duration::from_millis(4))
        );
        assert!(!plan.is_trivial());
        assert!(FaultPlan::none().is_trivial());
    }

    #[test]
    fn check_rejects_duplicates_and_zero_iterations() {
        let dup = FaultPlan::new()
            .crash_at(NodeId::Datacenter(0), 2)
            .crash_at(NodeId::Datacenter(0), 2);
        assert!(dup.check().is_err());
        let zero = FaultPlan::new().crash_at(NodeId::Frontend(0), 0);
        assert!(zero.check().is_err());
    }

    #[test]
    fn random_plans_are_deterministic() {
        let a = FaultPlan::random(7, 10, 4, 30, 0.5, 0.5);
        let b = FaultPlan::random(7, 10, 4, 30, 0.5, 0.5);
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 10, 4, 30, 0.5, 0.5);
        assert_ne!(a, c);
        a.check().unwrap();
    }

    #[test]
    fn tracker_recovers_before_deadline() {
        let plan = FaultPlan::new().crash_and_recover(NodeId::Datacenter(0), 3, 2);
        let mut t = FaultTracker::new(plan, 2, 2);
        let r = t.resolve_crash(NodeId::Datacenter(0), 3).unwrap();
        assert_eq!(r, Resolution::Recovered { attempts: 2 });
        assert!(!t.is_evicted(0));
        assert_eq!(t.report.downtime_attempts, 2);
        assert!(t.report.downtime_seconds > 0.0);
    }

    #[test]
    fn tracker_evicts_then_readmits() {
        // Recovery after 5 attempts but deadline 3: evict with 2 remaining,
        // then readmit after 2 probes.
        let plan = FaultPlan::new()
            .crash_and_recover(NodeId::Datacenter(1), 4, 5)
            .with_eviction_deadline(3);
        let mut t = FaultTracker::new(plan, 2, 2);
        let r = t.resolve_crash(NodeId::Datacenter(1), 4).unwrap();
        assert_eq!(r, Resolution::Evicted { attempts: 3 });
        assert!(t.is_evicted(1));
        assert_eq!(t.active_datacenters(), 1);
        assert!(t.probe_readmissions().is_empty()); // probe 1 of 2
        assert_eq!(t.probe_readmissions(), vec![1]); // probe 2: back
        assert!(!t.is_evicted(1));
        assert_eq!(t.report.readmitted, vec![1]);
    }

    #[test]
    fn tracker_never_readmits_permanent_crashes() {
        let plan = FaultPlan::new().crash_at(NodeId::Datacenter(0), 2);
        let mut t = FaultTracker::new(plan, 1, 2);
        let r = t.resolve_crash(NodeId::Datacenter(0), 2).unwrap();
        assert!(matches!(r, Resolution::Evicted { .. }));
        for _ in 0..10 {
            assert!(t.probe_readmissions().is_empty());
        }
        assert!(t.is_evicted(0));
    }

    #[test]
    fn tracker_fatal_for_frontend_past_deadline() {
        let plan = FaultPlan::new().crash_at(NodeId::Frontend(1), 2);
        let mut t = FaultTracker::new(plan, 3, 2);
        let err = t.resolve_crash(NodeId::Frontend(1), 2).unwrap_err();
        assert!(matches!(err, CoreError::NodeFailure { .. }));
    }

    #[test]
    fn tracker_fatal_for_unplanned_death() {
        let mut t = FaultTracker::new(FaultPlan::none(), 2, 2);
        let err = t.resolve_crash(NodeId::Datacenter(0), 7).unwrap_err();
        assert!(matches!(err, CoreError::NodeFailure { iteration: 7, .. }));
    }

    #[test]
    fn ladder_sums_backoff_rounds() {
        let plan = FaultPlan::new().with_phase_timeout(Duration::from_millis(100));
        // 3 rounds: 100 + 200 + 400 ms.
        assert!((plan.ladder_seconds() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn corruption_config_validates_rate_and_budget() {
        assert!(CorruptionConfig::try_new(0.5, 1).is_ok());
        assert!(matches!(
            CorruptionConfig::try_new(1.0, 1),
            Err(CoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            CorruptionConfig::try_new(f64::NAN, 1),
            Err(CoreError::InvalidConfig { .. })
        ));
        // Budget is clamped to ≥ 1 by the builder and caught by check().
        let cfg = CorruptionConfig::new(0.1, 1).with_max_retransmits(0);
        assert_eq!(cfg.max_retransmits, 1);
        let mut bad = cfg;
        bad.max_retransmits = 0;
        assert!(FaultPlan::none().with_corruption(bad).check().is_err());
        assert!(FaultPlan::none().with_corruption(cfg).check().is_ok());
        // A corruption-only plan still counts as trivial (no node faults).
        assert!(FaultPlan::none().with_corruption(cfg).is_trivial());
    }

    #[test]
    fn corrupted_transmit_is_detected_and_retransmitted_when_verifying() {
        let msg = Message::LambdaTilde {
            frontend: 0,
            datacenter: 1,
            value: 0.75,
        };
        // A generous budget: rate 0.4 makes a run of 33 straight corrupt
        // copies (the only way to exhaust it) essentially impossible.
        let cfg = CorruptionConfig::new(0.4, 9).with_max_retransmits(32);
        let mut state = IntegrityState::new(Some(&cfg), true);
        let mut worst = 1usize;
        for _ in 0..2000 {
            let (delivered, attempts) = state.transmit(&msg, 1).unwrap();
            // Verified links either deliver the clean value or a
            // bit-identical mangle; never silent garbage.
            assert!(delivered.is_none() || delivered == Some(0.75));
            worst = worst.max(attempts);
        }
        assert!(worst > 1, "rate 0.4 over 2000 sends must retransmit");
        assert!(state.counters.corruptions_injected > 0);
        assert_eq!(
            state.counters.corruptions_detected,
            state.counters.checksum_retransmissions
        );
        assert_eq!(state.counters.corruptions_delivered, 0);
    }

    #[test]
    fn retransmit_budget_exhaustion_is_a_typed_error() {
        let msg = Message::ATilde {
            frontend: 2,
            datacenter: 0,
            value: 1.0,
        };
        // Near-certain corruption with a tiny budget: exhaustion is quick.
        let cfg = CorruptionConfig::new(0.999, 3)
            .with_kind(CorruptionKind::BitFlip)
            .with_max_retransmits(2);
        let mut state = IntegrityState::new(Some(&cfg), true);
        let err = loop {
            match state.transmit(&msg, 7) {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        match err {
            CoreError::CorruptPayload {
                node, iteration, ..
            } => {
                assert_eq!(node, "datacenter[0]→frontend[2]");
                assert_eq!(iteration, 7);
            }
            other => panic!("expected CorruptPayload, got {other}"),
        }
    }

    #[test]
    fn unverified_nan_delivery_fails_fast_with_the_link_named() {
        let msg = Message::LambdaTilde {
            frontend: 1,
            datacenter: 2,
            value: 0.5,
        };
        let cfg = CorruptionConfig::new(0.999, 5).with_kind(CorruptionKind::NanSubstitution);
        let mut state = IntegrityState::new(Some(&cfg), false);
        let err = loop {
            match state.transmit(&msg, 4) {
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        match err {
            CoreError::Divergence {
                iteration,
                node,
                context,
                ..
            } => {
                assert_eq!(iteration, 4);
                assert_eq!(node.as_deref(), Some("datacenter[2]"));
                assert!(context.contains("frontend[1]→datacenter[2]"), "{context}");
            }
            other => panic!("expected Divergence, got {other}"),
        }
    }

    #[test]
    fn unverified_finite_corruption_is_delivered_and_counted() {
        let msg = Message::LambdaTilde {
            frontend: 0,
            datacenter: 0,
            value: 1.5,
        };
        let cfg = CorruptionConfig::new(0.999, 11).with_kind(CorruptionKind::SignFlip);
        let mut state = IntegrityState::new(Some(&cfg), false);
        let (delivered, attempts) = state.transmit(&msg, 1).unwrap();
        assert_eq!(delivered, Some(-1.5), "sign flip must be delivered");
        assert_eq!(attempts, 1, "no retransmits without verification");
        assert_eq!(state.counters.corruptions_delivered, 1);
        assert_eq!(state.last_corrupted.as_deref(), Some("datacenter[0]"));
    }

    #[test]
    fn corruption_process_is_deterministic_given_seed() {
        let msg = Message::ATilde {
            frontend: 1,
            datacenter: 1,
            value: 0.25,
        };
        let cfg = CorruptionConfig::new(0.3, 77);
        let mut a = IntegrityState::new(Some(&cfg), true);
        let mut b = IntegrityState::new(Some(&cfg), true);
        for _ in 0..500 {
            assert_eq!(a.transmit(&msg, 1).unwrap(), b.transmit(&msg, 1).unwrap());
        }
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn inactive_integrity_state_is_a_no_op() {
        let mut state = IntegrityState::new(None, false);
        assert!(!state.active());
        let msg = Message::LambdaTilde {
            frontend: 0,
            datacenter: 0,
            value: 2.0,
        };
        assert_eq!(state.transmit(&msg, 1).unwrap(), (None, 1));
        assert!(state.counters.is_zero());
        assert!(IntegrityState::new(None, true).active());
    }

    #[test]
    fn wire_kinds_are_classified_and_disarm_the_value_channel() {
        assert!(CorruptionKind::FrameTruncate.is_wire_level());
        assert!(CorruptionKind::FrameDuplicate.is_wire_level());
        assert!(CorruptionKind::FrameReorder.is_wire_level());
        assert!(!CorruptionKind::BitFlip.is_wire_level());
        assert!(!CorruptionKind::MagnitudeScale.is_wire_level());
        // A wire-pinned config leaves the value channel inert (the socket
        // pumps own those draws) but keeps checksum verification active.
        let cfg = CorruptionConfig::new(0.9, 3).with_kind(CorruptionKind::FrameTruncate);
        let mut state = IntegrityState::new(Some(&cfg), true);
        let msg = Message::LambdaTilde {
            frontend: 0,
            datacenter: 0,
            value: 1.0,
        };
        for _ in 0..100 {
            assert_eq!(state.transmit(&msg, 1).unwrap(), (None, 1));
        }
        assert!(state.counters.is_zero());
        assert!(state.active(), "verify flag still counts as active");
    }

    #[test]
    fn wire_chaos_arms_only_for_pinned_wire_kinds() {
        let value = CorruptionConfig::new(0.5, 1).with_kind(CorruptionKind::BitFlip);
        let unpinned = CorruptionConfig::new(0.5, 1);
        let wire = CorruptionConfig::new(0.5, 1).with_kind(CorruptionKind::FrameDuplicate);
        assert!(WireChaos::ingress(Some(&value), 0).is_none());
        assert!(WireChaos::ingress(Some(&unpinned), 0).is_none());
        assert!(WireChaos::ingress(None, 0).is_none());
        assert!(WireChaos::ingress(Some(&wire), 0).is_some());
        // Reordering never applies to the command direction.
        let reorder = CorruptionConfig::new(0.5, 1).with_kind(CorruptionKind::FrameReorder);
        assert!(WireChaos::egress(Some(&reorder), 0).is_none());
        assert!(WireChaos::ingress(Some(&reorder), 0).is_some());
    }

    #[test]
    fn wire_truncation_keeps_a_coherent_length_prefix() {
        let cfg =
            CorruptionConfig::new(1.0 - f64::EPSILON, 42).with_kind(CorruptionKind::FrameTruncate);
        let mut chaos = WireChaos::egress(Some(&cfg), 7).unwrap();
        // A fake 20-byte payload behind a 4-byte length prefix.
        let payload: Vec<u8> = (0..20u8).collect();
        let mut wire = 20u32.to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        assert_eq!(chaos.next_egress(&mut wire), WireVerdict::Truncated);
        let cut = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert!((6..20).contains(&cut), "cut {cut} outside [6, 20)");
        assert_eq!(wire.len(), 4 + cut, "prefix must match the short frame");

        // Ingress truncation acts on the bare payload.
        let mut chaos = WireChaos::ingress(Some(&cfg), 8).unwrap();
        let mut payload: Vec<u8> = (0..20u8).collect();
        assert_eq!(chaos.next_ingress(&mut payload), WireVerdict::Truncated);
        assert!((6..20).contains(&payload.len()));

        // Frames at or below the 6-byte floor pass through clean.
        let mut tiny: Vec<u8> = vec![0xFD, 7, 0, 0, 0, 0];
        assert_eq!(chaos.next_ingress(&mut tiny), WireVerdict::Clean);
        assert_eq!(tiny.len(), 6);
    }

    #[test]
    fn wire_chaos_draws_are_deterministic_per_seed_and_salt() {
        let cfg = CorruptionConfig::new(0.3, 99).with_kind(CorruptionKind::FrameReorder);
        let mut a = WireChaos::ingress(Some(&cfg), 5).unwrap();
        let mut b = WireChaos::ingress(Some(&cfg), 5).unwrap();
        let mut c = WireChaos::ingress(Some(&cfg), 6).unwrap();
        let mut diverged = false;
        for _ in 0..200 {
            let mut pa: Vec<u8> = (0..12u8).collect();
            let mut pb = pa.clone();
            let mut pc = pa.clone();
            let va = a.next_ingress(&mut pa);
            assert_eq!(va, b.next_ingress(&mut pb));
            assert_eq!(pa, pb);
            diverged |= va != c.next_ingress(&mut pc);
        }
        assert!(diverged, "different salts must decorrelate the streams");
    }
}
