//! The deterministic lockstep engine as a `Transport` for the unified
//! ADM-G driver (`ufc_core::engine::drive`).
//!
//! One transport covers all three lockstep flavors: the clean and lossy
//! runs are literally the [`FaultPlan::none`] degenerate case of the
//! fault-aware engine — with a trivial plan the readmission probes return
//! nothing, no crash ever resolves, no link is partitioned, and the replay
//! history stays unbuffered, so the code path reduces to the plain
//! synchronous rounds. Per-node compute fans out over the shared
//! [`WorkerPool`] (indexed-slot gather ⇒ bit-identical at any thread
//! count); message recording stays sequential so traffic accounting is
//! deterministic.

use ufc_core::engine::{drive, BlockResiduals, DriveOutcome, IterationObserver, Transport};
use ufc_core::telemetry::{ObserverChain, TelemetryCollector, TrafficCounters};
use ufc_core::{AdmgSettings, BlockKind, BlockSchedule, CoreError, WorkerPool};
use ufc_model::UfcInstance;

use crate::coordinator::{
    account_stragglers, column_of, finish, max_latency, record_a_traffic, record_control,
    record_lambda_traffic, reduce_residuals, replay_entries, row_of, HistoryEntry,
};
use crate::fault::{FaultPlan, FaultTracker, IntegrityState, NodeId, Resolution};
use crate::loss::{LossConfig, LossyChannel};
use crate::message::Message;
use crate::node::{DatacenterNode, FrontendNode, NodeResiduals};
use crate::runtime::DistRunReport;
use crate::snapshot::{CheckpointStore, DatacenterSnapshot, FrontendSnapshot};
use crate::stats::{estimated_wan_seconds_live, MessageStats};

/// Runs the lockstep engine under a fault plan and an optional lossy
/// channel (the two never combine: loss is only driven with a trivial
/// plan). Returns the full report with `fault` always populated; the
/// facade strips it for clean/lossy runs.
pub(crate) fn run_lockstep(
    settings: &AdmgSettings,
    instance: &UfcInstance,
    active_mu: bool,
    active_nu: bool,
    plan: FaultPlan,
    loss: Option<LossConfig>,
    observer: &mut dyn IterationObserver,
) -> Result<DistRunReport, CoreError> {
    let tolerances = settings.scaled_tolerances(instance);
    let mut transport =
        LockstepTransport::new(instance, settings, active_mu, active_nu, plan, loss);
    let mut collector = settings.telemetry.then(TelemetryCollector::default);
    let outcome = match collector.as_mut() {
        Some(c) => {
            let mut chain = ObserverChain(&mut *c, observer);
            drive(&mut transport, settings, tolerances, &mut chain)?
        }
        None => drive(&mut transport, settings, tolerances, observer)?,
    };
    transport.into_report(outcome, collector)
}

/// The lockstep engine's state between driver callbacks.
struct LockstepTransport<'a> {
    instance: &'a UfcInstance,
    settings: AdmgSettings,
    active_mu: bool,
    active_nu: bool,
    frontends: Vec<FrontendNode>,
    /// `None` marks an evicted datacenter.
    datacenters: Vec<Option<DatacenterNode>>,
    pool: WorkerPool,
    tracker: FaultTracker,
    store: CheckpointStore,
    history: Vec<HistoryEntry>,
    /// Whether replay history is worth buffering (non-trivial plan or
    /// checkpointing on) — a clean run skips the copies entirely.
    buffer_history: bool,
    checkpoint_interval: usize,
    channel: Option<LossyChannel>,
    integrity: IntegrityState,
    /// First node whose residual report was non-finite this iteration —
    /// the divergence gate's suspect.
    suspect: Option<NodeId>,
    stats: MessageStats,
    /// Fault-induced full-phase stalls (partition windows), in phases.
    stall_phases: f64,
    /// Loss-induced stalls: each data phase waits for its slowest
    /// message's attempt count. Accumulated unconditionally, consumed only
    /// for lossy runs.
    lossy_stalled_phases: f64,
    // Per-iteration scratch, produced by one phase and consumed by the next.
    rows: Vec<Vec<f64>>,
    a_cols: Vec<Vec<f64>>,
    dc_residuals: Vec<Option<NodeResiduals>>,
    readmitted_now: Vec<usize>,
    membership_changed: bool,
    node_count: usize,
}

impl<'a> LockstepTransport<'a> {
    fn new(
        instance: &'a UfcInstance,
        settings: &AdmgSettings,
        active_mu: bool,
        active_nu: bool,
        plan: FaultPlan,
        loss: Option<LossConfig>,
    ) -> Self {
        let m = instance.m_frontends();
        let n = instance.n_datacenters();
        let frontends = (0..m)
            .map(|i| FrontendNode::new(instance, i, settings))
            .collect();
        let datacenters = (0..n)
            .map(|j| {
                Some(DatacenterNode::new(
                    instance, j, settings, active_mu, active_nu,
                ))
            })
            .collect();
        let checkpoint_interval = plan.checkpoint_interval;
        let buffer_history = !plan.is_trivial() || checkpoint_interval > 0;
        let integrity = IntegrityState::new(plan.corruption.as_ref(), settings.verify_checksums);
        LockstepTransport {
            instance,
            settings: *settings,
            active_mu,
            active_nu,
            frontends,
            datacenters,
            pool: WorkerPool::new(settings.num_threads),
            tracker: FaultTracker::new(plan, m, n),
            store: CheckpointStore::new(m, n),
            history: Vec::new(),
            buffer_history,
            checkpoint_interval,
            channel: loss.map(LossyChannel::new),
            integrity,
            suspect: None,
            stats: MessageStats::default(),
            stall_phases: 0.0,
            lossy_stalled_phases: 0.0,
            rows: Vec::new(),
            a_cols: Vec::new(),
            dc_residuals: Vec::new(),
            readmitted_now: Vec::new(),
            membership_changed: false,
            node_count: m + n,
        }
    }

    /// One checkpoint round: every live node's iterate slice is serialized,
    /// accounted as coordinator traffic, stored, and the replay buffer
    /// cleared.
    fn checkpoint(&mut self, k: usize) {
        let m = self.frontends.len();
        for (i, fe) in self.frontends.iter().enumerate() {
            let blob = fe.snapshot().to_bytes();
            self.stats.record(&Message::Checkpoint {
                node: i,
                payload_bytes: blob.len(),
            });
            self.store.put_frontend(i, k, blob);
        }
        for (j, dc) in self.datacenters.iter().enumerate() {
            if let Some(dc) = dc {
                let blob = dc.snapshot().to_bytes();
                self.stats.record(&Message::Checkpoint {
                    node: m + j,
                    payload_bytes: blob.len(),
                });
                self.store.put_datacenter(j, k, blob);
            }
        }
        self.tracker.report.checkpoints_taken += 1;
        self.history.clear();
    }

    /// Gathers the final iterate, polishes it, and assembles the report.
    fn into_report(
        self,
        outcome: DriveOutcome,
        collector: Option<TelemetryCollector>,
    ) -> Result<DistRunReport, CoreError> {
        let lambda_rows = self.frontends.iter().map(|f| f.lambda().to_vec()).collect();
        let mu = self
            .datacenters
            .iter()
            .map(|dc| dc.as_ref().map_or(0.0, DatacenterNode::mu))
            .collect();
        let d = self
            .datacenters
            .iter()
            .map(|dc| dc.as_ref().map_or(0.0, DatacenterNode::d))
            .collect();
        let (point, breakdown) = finish(self.instance, lambda_rows, mu, d, !self.active_nu)?;
        let trivial_plan = self.tracker.plan().is_trivial();
        let evicted = self.tracker.evicted_mask();
        let report = self.tracker.report;
        let l_max = max_latency(self.instance, &evicted);
        // Lossless: 4 phases per iteration, plus fault recovery/stall time.
        // Lossy: the two data phases stall for their slowest message; the
        // two control phases are assumed reliable (coordinator links).
        let estimated = if self.channel.is_some() {
            (self.lossy_stalled_phases + 2.0 * outcome.iterations as f64) * l_max
        } else {
            estimated_wan_seconds_live(outcome.iterations, &self.instance.latency_s, &evicted)
                + report.downtime_seconds
                + report.straggler_seconds
                + self.stall_phases * l_max
        };
        let retransmissions = self.channel.map_or(0, |ch| ch.retransmissions);
        let integrity = self.integrity.active().then_some(self.integrity.counters);
        let telemetry = collector.map(|c| {
            let mut t = c.into_telemetry();
            // The lockstep engine keeps every node in-process, so the
            // per-node kernel counters are still readable here (evicted
            // datacenters are gone — their counters go with them).
            for fe in &self.frontends {
                let (hits, misses) = fe.cache_counters();
                let (accepted, rejected) = fe.warm_start_counters();
                t.solver.kkt_cache_hits += hits;
                t.solver.kkt_cache_misses += misses;
                t.solver.warm_starts_accepted += accepted;
                t.solver.warm_starts_rejected += rejected;
            }
            for dc in self.datacenters.iter().flatten() {
                let (hits, misses) = dc.cache_counters();
                let (accepted, rejected) = dc.warm_start_counters();
                t.solver.kkt_cache_hits += hits;
                t.solver.kkt_cache_misses += misses;
                t.solver.warm_starts_accepted += accepted;
                t.solver.warm_starts_rejected += rejected;
            }
            t.solver.pool_tasks = self.pool.tasks_dispatched();
            t.solver.pool_maps = self.pool.maps_run();
            t.traffic = Some(TrafficCounters {
                data_messages: self.stats.data_messages as u64,
                control_messages: self.stats.control_messages as u64,
                total_bytes: self.stats.total_bytes as u64,
                retransmissions: retransmissions as u64,
            });
            if !trivial_plan {
                t.fault = Some(report.counters());
            }
            t.integrity = integrity;
            t
        });
        Ok(DistRunReport {
            point,
            breakdown,
            iterations: outcome.iterations,
            converged: outcome.converged,
            stats: self.stats,
            estimated_wan_seconds: estimated,
            retransmissions,
            fault: Some(report),
            integrity,
            telemetry,
        })
    }
}

impl Transport for LockstepTransport<'_> {
    fn schedule(&self) -> BlockSchedule {
        BlockSchedule::for_instance(self.instance)
    }

    fn begin_iteration(&mut self, k: usize) -> Result<(), CoreError> {
        self.membership_changed = false;
        let readmitted_now = self.tracker.probe_readmissions();
        for &j in &readmitted_now {
            let node = DatacenterNode::new(
                self.instance,
                j,
                &self.settings,
                self.active_mu,
                self.active_nu,
            );
            self.store
                .put_datacenter(j, k - 1, node.snapshot().to_bytes());
            self.datacenters[j] = Some(node);
            for fe in &mut self.frontends {
                fe.clear_evicted(j);
                self.stats.record(&Message::Membership {
                    datacenter: j,
                    evict: false,
                });
            }
            self.membership_changed = true;
        }
        self.readmitted_now = readmitted_now;
        account_stragglers(
            &mut self.tracker,
            self.frontends.len(),
            self.datacenters.len(),
            k,
        );
        if self.tracker.plan().partition_active(k) {
            self.stall_phases += 2.0;
        }
        Ok(())
    }

    fn predict_lambda(&mut self, k: usize) -> Result<(), CoreError> {
        // Resolve scripted front-end crashes before the parallel fan-out.
        // Resolution touches only the crashed node and the tracker, both in
        // ascending node order, so hoisting it out of the per-node loop is
        // decision-for-decision identical to the sequential engine.
        for i in 0..self.frontends.len() {
            let node_id = NodeId::Frontend(i);
            if self.tracker.plan().crash_at_iteration(node_id, k).is_none() {
                continue;
            }
            match self.tracker.resolve_crash(node_id, k)? {
                Resolution::Recovered { .. } => {
                    let mut node = FrontendNode::new(self.instance, i, &self.settings);
                    let mut base = 0usize;
                    if let Some((it, blob)) = self.store.frontend(i) {
                        node.restore(&FrontendSnapshot::from_bytes(blob)?)?;
                        base = it;
                    }
                    let mut replayed = 0usize;
                    for entry in replay_entries(&self.history, base, k) {
                        node.predict_lambda()?;
                        node.receive_a_and_correct(&row_of(&entry.a_cols, i));
                        replayed += 1;
                    }
                    self.tracker.report.recomputed_iterations += replayed;
                    for &j in &self.readmitted_now {
                        node.clear_evicted(j);
                    }
                    self.frontends[i] = node;
                }
                Resolution::Evicted { .. } => {
                    unreachable!("front-ends are never evicted")
                }
            }
        }
        // Gather in index order so a poisoned iterate surfaces as the
        // lowest-indexed node's typed error, matching the threaded engine.
        let mut rows = self
            .pool
            .map_mut(&mut self.frontends, |_, fe| fe.predict_lambda())
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let phase_max = record_lambda_traffic(
            &mut self.stats,
            &mut self.tracker,
            self.channel.as_mut(),
            &mut self.integrity,
            &mut rows,
            k,
        )?;
        // Retransmit stalls land in whichever pool the WAN estimate reads:
        // `lossy_stalled_phases` for lossy runs, `stall_phases` otherwise
        // (checksum retransmits under corruption).
        self.lossy_stalled_phases += phase_max as f64;
        self.stall_phases += (phase_max - 1) as f64;
        self.rows = rows;
        Ok(())
    }

    fn step_datacenters(&mut self, k: usize) -> Result<(), CoreError> {
        let m = self.frontends.len();
        let n = self.datacenters.len();
        // Resolve scripted datacenter crashes and evictions in index order.
        for j in 0..n {
            if self.tracker.is_evicted(j) {
                continue;
            }
            let node_id = NodeId::Datacenter(j);
            if self.tracker.plan().crash_at_iteration(node_id, k).is_none() {
                continue;
            }
            match self.tracker.resolve_crash(node_id, k)? {
                Resolution::Recovered { .. } => {
                    let mut node = DatacenterNode::new(
                        self.instance,
                        j,
                        &self.settings,
                        self.active_mu,
                        self.active_nu,
                    );
                    let mut base = 0usize;
                    if let Some((it, blob)) = self.store.datacenter(j) {
                        node.restore(&DatacenterSnapshot::from_bytes(blob)?)?;
                        base = it;
                    }
                    let mut replayed = 0usize;
                    for entry in replay_entries(&self.history, base, k) {
                        node.process(&column_of(&entry.rows, j))?;
                        replayed += 1;
                    }
                    self.tracker.report.recomputed_iterations += replayed;
                    self.datacenters[j] = Some(node);
                }
                Resolution::Evicted { .. } => {
                    self.datacenters[j] = None;
                    for fe in &mut self.frontends {
                        fe.set_evicted(j);
                        self.stats.record(&Message::Membership {
                            datacenter: j,
                            evict: true,
                        });
                    }
                    self.membership_changed = true;
                }
            }
        }
        // Parallel fan-out over the live datacenters; gather in index order.
        let rows = std::mem::take(&mut self.rows);
        let steps = self.pool.map_mut(&mut self.datacenters, |j, dc| {
            dc.as_mut().map(|node| {
                let column: Vec<f64> = (0..m).map(|i| rows[i][j]).collect();
                node.process(&column)
            })
        });
        self.rows = rows;
        self.a_cols = vec![vec![0.0; m]; n];
        self.dc_residuals = vec![None; n];
        let mut phase_max = 1usize;
        for (j, step) in steps.into_iter().enumerate() {
            // `transpose` surfaces a poisoned iterate as the lowest-indexed
            // datacenter's typed error (index-order gather).
            let Some(mut step) = step.transpose()? else {
                continue;
            };
            phase_max = phase_max.max(record_a_traffic(
                &mut self.stats,
                &mut self.tracker,
                self.channel.as_mut(),
                &mut self.integrity,
                &mut step.a_tilde,
                j,
                k,
            )?);
            self.a_cols[j] = step.a_tilde;
            self.dc_residuals[j] = Some(step.residuals);
            // Storage-active datacenters report their corrected block value
            // to the coordinator: control-plane traffic (like residual
            // reports), so it rides outside the lossy/corruptible data path
            // and the classic schedule's accounting is untouched.
            if self
                .instance
                .storage
                .as_ref()
                .is_some_and(|sp| sp.active(j))
            {
                self.stats.record(&Message::BlockReport {
                    datacenter: j,
                    block: BlockKind::Storage.wire_id(),
                    value: step.d,
                });
            }
        }
        self.lossy_stalled_phases += phase_max as f64;
        self.stall_phases += (phase_max - 1) as f64;
        Ok(())
    }

    fn correct(&mut self, _k: usize) -> Result<BlockResiduals, CoreError> {
        let n = self.datacenters.len();
        let a_cols = std::mem::take(&mut self.a_cols);
        let fe_residuals = self.pool.map_mut(&mut self.frontends, |i, fe| {
            let a_row: Vec<f64> = (0..n).map(|j| a_cols[j][i]).collect();
            fe.receive_a_and_correct(&a_row)
        });
        self.a_cols = a_cols;
        self.node_count = self.frontends.len() + self.dc_residuals.iter().flatten().count();
        let (reduced, suspect) =
            reduce_residuals(&mut self.stats, &fe_residuals, &self.dc_residuals);
        self.suspect = suspect;
        Ok(reduced)
    }

    fn rollback(&mut self, _k: usize) -> Result<Option<usize>, CoreError> {
        self.integrity.counters.divergence_trips += 1;
        // Every live node needs a finite checkpoint before anything is
        // touched — a partial restore would leave the deployment
        // inconsistent, so decline instead.
        let mut base = usize::MAX;
        let mut fe_snaps = Vec::with_capacity(self.frontends.len());
        for i in 0..self.frontends.len() {
            let Some((it, blob)) = self.store.frontend(i) else {
                return Ok(None);
            };
            let snap = FrontendSnapshot::from_bytes(blob)?;
            if !snap.is_finite() {
                return Ok(None);
            }
            base = base.min(it);
            fe_snaps.push(snap);
        }
        let mut dc_snaps: Vec<Option<DatacenterSnapshot>> =
            Vec::with_capacity(self.datacenters.len());
        for (j, dc) in self.datacenters.iter().enumerate() {
            if dc.is_none() {
                dc_snaps.push(None);
                continue;
            }
            let Some((it, blob)) = self.store.datacenter(j) else {
                return Ok(None);
            };
            let snap = DatacenterSnapshot::from_bytes(blob)?;
            if !snap.is_finite() {
                return Ok(None);
            }
            base = base.min(it);
            dc_snaps.push(Some(snap));
        }
        let evicted = self.tracker.evicted_mask();
        for (fe, snap) in self.frontends.iter_mut().zip(&fe_snaps) {
            fe.restore(snap)?;
            // The live membership view stays authoritative over whatever
            // the snapshot recorded.
            for (j, &gone) in evicted.iter().enumerate() {
                if gone {
                    fe.set_evicted(j);
                } else {
                    fe.clear_evicted(j);
                }
            }
        }
        for (dc, snap) in self.datacenters.iter_mut().zip(dc_snaps) {
            if let (Some(node), Some(snap)) = (dc.as_mut(), snap) {
                node.restore(&snap)?;
            }
        }
        // Buffered inputs may hold the very payloads that poisoned the run;
        // never replay them into the restored state.
        self.history.clear();
        self.integrity.counters.rollbacks += 1;
        Ok(Some(base))
    }

    fn divergence_suspect(&self) -> Option<String> {
        self.suspect
            .map(|node| node.to_string())
            .or_else(|| self.integrity.last_corrupted.clone())
    }

    fn finish_iteration(&mut self, k: usize, stop: bool) -> Result<(), CoreError> {
        record_control(&mut self.stats, stop, self.node_count);
        if self.buffer_history {
            self.history.push(HistoryEntry {
                iteration: k,
                rows: std::mem::take(&mut self.rows),
                a_cols: std::mem::take(&mut self.a_cols),
            });
        }
        if !stop
            && (self.membership_changed
                || (self.checkpoint_interval > 0 && k.is_multiple_of(self.checkpoint_interval)))
        {
            self.checkpoint(k);
        }
        Ok(())
    }
}
