//! Node logic: the computation each participant runs with only its own
//! slice of the problem data.
//!
//! A [`FrontendNode`] knows its arrival, its latency row, the utility
//! weight, and its replicas of `a_i·` and `φ_i·`; a [`DatacenterNode`] knows
//! its power model, prices, carbon data, capacity, and its column of the
//! auxiliary routing. Neither sees the other side's data — the protocol
//! behind [`crate::DistributedAdmg`] moves exactly the `λ̃`/`ã` shares of
//! the paper's Fig. 2 between them.
//!
//! The arithmetic is, expression for expression, the same as
//! `ufc_core::subproblems` + `ufc_core::correction`, so a lockstep run is
//! numerically identical to the in-memory solver (asserted in the crate's
//! integration tests).

use ufc_core::subproblems::{mu_scalar_step_bounded, nu_scalar_step, storage_scalar_step};
use ufc_core::{AColQp, AdmgSettings, CoreError, LambdaQp, QpOptions, SubproblemMethod};
use ufc_linalg::Matrix;
use ufc_model::{utility::disutility_rank1_gamma, EmissionCostFn, UfcInstance};
use ufc_opt::projection::project_simplex;
use ufc_opt::{ActiveSetQp, Fista, QuadObjective};

use crate::snapshot::{DatacenterSnapshot, FrontendSnapshot};

/// NaN-sticky maximum: identical to [`f64::max`] for finite inputs, but a
/// NaN *poisons* the fold instead of vanishing (`f64::max` returns the
/// other operand when one side is NaN, which would hide a poisoned iterate
/// from the residual reduction and the divergence gate).
pub(crate) fn nan_max(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else {
        a.max(b)
    }
}

/// Residual contributions a node reports to the coordinator each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeResiduals {
    /// Local link residual `max_j |λ_ij − a_ij|` (front-end) or
    /// `max_i |λ_ij − a_ij|` (datacenter).
    pub link: f64,
    /// Local power-balance residual (datacenters only).
    pub balance: f64,
    /// ∞-norm movement of the locally owned corrected blocks.
    pub movement: f64,
}

impl NodeResiduals {
    fn track(&mut self, delta: f64) {
        self.movement = nan_max(self.movement, delta.abs());
    }
}

/// A front-end proxy: owns `λ_i·`, replicas of `a_i·` and the link duals
/// `φ_i·`.
#[derive(Debug, Clone)]
pub struct FrontendNode {
    index: usize,
    arrival: f64,
    latencies: Vec<f64>,
    weight_per_kserver: f64,
    rho: f64,
    epsilon: f64,
    method: SubproblemMethod,
    lambda: Vec<f64>,
    lambda_tilde: Vec<f64>,
    a: Vec<f64>,
    varphi: Vec<f64>,
    /// Degraded-mode mask: datacenters this front-end must not route to.
    evicted: Vec<bool>,
    /// Persistent λ-QP kernel (cached KKT factorizations, warm starts).
    qp: LambdaQp,
    /// Whether warm starts from the corrected iterate are enabled
    /// (mirrors `AdmgSettings::cache_factorizations`).
    warm: bool,
    /// Scratch buffer for the per-round linear term.
    c_buf: Vec<f64>,
}

impl FrontendNode {
    /// Extracts front-end `i`'s local data from the instance.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn new(instance: &UfcInstance, i: usize, settings: &AdmgSettings) -> Self {
        assert!(i < instance.m_frontends(), "front-end {i} out of range");
        let n = instance.n_datacenters();
        FrontendNode {
            index: i,
            arrival: instance.arrivals[i],
            latencies: instance.latency_s[i].clone(),
            weight_per_kserver: instance.weight_per_kserver(),
            rho: settings.rho,
            epsilon: settings.epsilon,
            method: settings.method,
            lambda: vec![0.0; n],
            lambda_tilde: vec![0.0; n],
            a: vec![0.0; n],
            varphi: vec![0.0; n],
            evicted: vec![false; n],
            qp: LambdaQp::new(
                &instance.latency_s[i],
                instance.arrivals[i],
                instance.weight_per_kserver(),
                settings.rho,
                settings.method,
                QpOptions::from_settings(settings),
            ),
            warm: settings.cache_factorizations,
            c_buf: vec![0.0; n],
        }
    }

    /// This node's front-end index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The current corrected routing row `λ_i·`.
    #[must_use]
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// Marks datacenter `j` as evicted and pins this front-end's `λ_ij`,
    /// `a_ij`, and `φ_ij` to zero (degraded-mode routing).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn set_evicted(&mut self, j: usize) {
        self.evicted[j] = true;
        self.lambda[j] = 0.0;
        self.lambda_tilde[j] = 0.0;
        self.a[j] = 0.0;
        self.varphi[j] = 0.0;
    }

    /// Clears the eviction mark for a re-admitted datacenter `j` (its
    /// blocks stay zero — the datacenter restarts from fresh state).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn clear_evicted(&mut self, j: usize) {
        self.evicted[j] = false;
    }

    /// The current eviction mask.
    #[must_use]
    pub fn evicted_mask(&self) -> &[bool] {
        &self.evicted
    }

    /// Telemetry: the λ-kernel's `(kkt_cache_hits, kkt_cache_misses)` since
    /// this node was constructed (or last respawned).
    #[must_use]
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.qp.cache_hits(), self.qp.cache_misses())
    }

    /// Telemetry: the λ-kernel's `(warm_starts_accepted, warm_starts_rejected)`.
    #[must_use]
    pub fn warm_start_counters(&self) -> (u64, u64) {
        self.qp.warm_starts()
    }

    /// Step 1: solve the λ-sub-problem (17) from the local replicas and
    /// return `λ̃_i·` for dispatch to the datacenters.
    ///
    /// With an empty eviction mask this is, expression for expression, the
    /// full problem (17); with evicted datacenters the same QP is solved
    /// over the active columns only and zeros are scattered back into the
    /// masked slots.
    ///
    /// # Errors
    ///
    /// [`CoreError::Subproblem`] when the inner QP fails — which cannot
    /// happen for finite iterates (the constraint set is a nonempty
    /// simplex), but *does* happen when an unverified corrupted delivery
    /// poisoned the replicas with NaN. Surfacing that as a typed error
    /// keeps the §12 "delivered poison is a typed error, never a panic"
    /// contract at the node layer.
    ///
    /// # Panics
    ///
    /// Panics if every datacenter is evicted (a coordinator invariant:
    /// eviction declines before the live set empties).
    pub fn predict_lambda(&mut self) -> Result<Vec<f64>, CoreError> {
        let n = self.latencies.len();
        let row = if self.evicted.iter().any(|&e| e) {
            let active: Vec<usize> = (0..n).filter(|&j| !self.evicted[j]).collect();
            assert!(
                !active.is_empty(),
                "front-end {}: every datacenter evicted",
                self.index
            );
            let lat: Vec<f64> = active.iter().map(|&j| self.latencies[j]).collect();
            let c: Vec<f64> = active
                .iter()
                .map(|&j| self.varphi[j] - self.rho * self.a[j])
                .collect();
            let sub = self.solve_lambda_qp(lat, c)?;
            let mut full = vec![0.0; n];
            for (t, &j) in active.iter().enumerate() {
                full[j] = sub[t];
            }
            full
        } else {
            // Clean path: the persistent kernel with cached factorizations,
            // warm-started from the corrected λ (which is snapshotted, so
            // checkpoint/restore resumes bit-identically).
            for j in 0..n {
                self.c_buf[j] = self.varphi[j] - self.rho * self.a[j];
            }
            let warm = if self.warm {
                Some(self.lambda.as_slice())
            } else {
                None
            };
            self.qp
                .solve(&self.c_buf, warm)
                .map_err(|e| CoreError::subproblem(format!("lambda[{}]", self.index), e))?
        };
        self.lambda_tilde = row.clone();
        Ok(row)
    }

    /// Solves `min ½ρ‖x‖² + ½γ(Lᵀx)² + cᵀx` over the simplex
    /// `{x ≥ 0, Σx = arrival}` — the common kernel of the full and
    /// restricted λ-steps.
    fn solve_lambda_qp(&self, latencies: Vec<f64>, c: Vec<f64>) -> Result<Vec<f64>, CoreError> {
        let k = latencies.len();
        if self.arrival == 0.0 {
            // Zero-demand front-end: the simplex is the singleton {0} —
            // same short-circuit as the in-process λ-QP, bit for bit.
            return Ok(vec![0.0; k]);
        }
        let gamma = disutility_rank1_gamma(self.weight_per_kserver, self.arrival);
        let objective = QuadObjective::diag_rank1(vec![self.rho; k], gamma, latencies, c, 0.0);
        let start = vec![self.arrival / k as f64; k];
        let which = || format!("lambda[{}]", self.index);
        match self.method {
            SubproblemMethod::ActiveSet => {
                let a_eq = Matrix::from_fn(1, k, |_, _| 1.0);
                let a_in = Matrix::from_fn(k, k, |r, cc| if r == cc { -1.0 } else { 0.0 });
                Ok(ActiveSetQp::default()
                    .solve(
                        &objective,
                        &a_eq,
                        &[self.arrival],
                        &a_in,
                        &vec![0.0; k],
                        start,
                    )
                    .map_err(|e| CoreError::subproblem(which(), e))?
                    .x)
            }
            SubproblemMethod::Fista => Ok(Fista::new(50_000, 1e-10)
                .minimize(&objective, |x| project_simplex(x, self.arrival), start)
                .map_err(|e| CoreError::subproblem(which(), e))?
                .x),
        }
    }

    /// Captures this node's iterate slice for checkpointing.
    #[must_use]
    pub fn snapshot(&self) -> FrontendSnapshot {
        FrontendSnapshot {
            lambda: self.lambda.clone(),
            lambda_tilde: self.lambda_tilde.clone(),
            a: self.a.clone(),
            varphi: self.varphi.clone(),
            evicted: self.evicted.clone(),
        }
    }

    /// Restores the iterate slice from a checkpoint.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] if the snapshot's shape does not match
    /// this node's datacenter count.
    pub fn restore(&mut self, snap: &FrontendSnapshot) -> Result<(), CoreError> {
        if snap.lambda.len() != self.latencies.len() {
            return Err(CoreError::checkpoint(format!(
                "front-end {} snapshot has {} datacenters, node has {}",
                self.index,
                snap.lambda.len(),
                self.latencies.len()
            )));
        }
        self.lambda.clone_from(&snap.lambda);
        self.lambda_tilde.clone_from(&snap.lambda_tilde);
        self.a.clone_from(&snap.a);
        self.varphi.clone_from(&snap.varphi);
        self.evicted.clone_from(&snap.evicted);
        Ok(())
    }

    /// Steps 4–5 + correction: receive `ã_i·`, update the dual replica, and
    /// apply the front-end part of the Gaussian back substitution.
    ///
    /// # Panics
    ///
    /// Panics if `a_tilde.len()` differs from the datacenter count.
    pub fn receive_a_and_correct(&mut self, a_tilde: &[f64]) -> NodeResiduals {
        assert_eq!(a_tilde.len(), self.a.len(), "a-row length mismatch");
        let mut res = NodeResiduals::default();
        #[allow(clippy::needless_range_loop)] // four replicas co-indexed by datacenter id
        for j in 0..self.a.len() {
            if self.evicted[j] {
                // Degraded mode: the slot stays pinned at zero.
                continue;
            }
            // Dual prediction and relaxation (front-end owns φ_i·).
            let varphi_tilde = self.varphi[j] - self.rho * (a_tilde[j] - self.lambda_tilde[j]);
            let dv = self.epsilon * (varphi_tilde - self.varphi[j]);
            self.varphi[j] += dv;
            res.track(dv);
            // a replica relaxation.
            let da = self.epsilon * (a_tilde[j] - self.a[j]);
            self.a[j] += da;
            res.track(da);
            // λ is taken from the prediction.
            self.lambda[j] = self.lambda_tilde[j];
            res.link = nan_max(res.link, (self.lambda[j] - self.a[j]).abs());
        }
        res
    }
}

/// Precomputed storage-block data for one datacenter. All fields are
/// slot-constant (the charge state only moves *between* slots in the
/// receding-horizon driver), so they are extracted once at construction —
/// the same products the in-memory solver forms per call, evaluated in the
/// same order, so the two stay bit-identical.
#[derive(Debug, Clone, Copy)]
struct DcStorage {
    /// Whether this datacenter has a battery (`capacity > 0`). Inactive
    /// storage keeps `d` pinned at exactly `0.0`.
    active: bool,
    /// Net-discharge box `[d_lo, d_hi]` (MW) from the charge state.
    d_lo: f64,
    d_hi: f64,
    /// Value-of-storage linear cost `κ_j · h` ($/MW).
    value_cost_h: f64,
    /// Degradation quadratic cost `γ · h` ($/MW²).
    degradation_h: f64,
    /// Ramp-tightened fuel-cell box `[μ_lo, μ_hi]` (MW).
    mu_lo: f64,
    mu_hi: f64,
}

/// A datacenter: owns `μ_j`, `ν_j`, the battery net discharge `d_j` (when
/// the storage block is scheduled), `a_·j`, the balance dual `φ_j`, and a
/// replica of the link duals `φ_·j`.
#[derive(Debug, Clone)]
pub struct DatacenterNode {
    index: usize,
    m: usize,
    alpha: f64,
    beta: f64,
    mu_max: f64,
    grid_price: f64,
    fuel_cell_price: f64,
    carbon_t_per_mwh: f64,
    emission: EmissionCostFn,
    slot_hours: f64,
    rho: f64,
    epsilon: f64,
    active_mu: bool,
    active_nu: bool,
    storage: Option<DcStorage>,
    mu: f64,
    nu: f64,
    d: f64,
    phi: f64,
    a: Vec<f64>,
    varphi: Vec<f64>,
    /// Persistent a-QP kernel (cached KKT factorizations, warm starts).
    qp: AColQp,
    /// Whether warm starts from the corrected iterate are enabled.
    warm: bool,
    /// Scratch buffer for the per-round linear term.
    c_buf: Vec<f64>,
}

/// What a datacenter returns from one protocol round.
#[derive(Debug, Clone)]
pub struct DatacenterStep {
    /// The predicted auxiliary shares `ã_·j` to route back to front-ends.
    pub a_tilde: Vec<f64>,
    /// The corrected battery net discharge `d_j` after this round (exactly
    /// `0.0` when the storage block is absent or inactive).
    pub d: f64,
    /// Local residual contributions.
    pub residuals: NodeResiduals,
}

impl DatacenterNode {
    /// Extracts datacenter `j`'s local data from the instance.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn new(
        instance: &UfcInstance,
        j: usize,
        settings: &AdmgSettings,
        active_mu: bool,
        active_nu: bool,
    ) -> Self {
        assert!(j < instance.n_datacenters(), "datacenter {j} out of range");
        let storage = instance.storage.as_ref().map(|sp| {
            let (d_lo, d_hi) = sp.discharge_bounds(j, instance.slot_hours);
            let (mu_lo, mu_hi) = sp.mu_bounds(j, instance.mu_max[j]);
            DcStorage {
                active: sp.active(j),
                d_lo,
                d_hi,
                value_cost_h: sp.value_per_mwh[j] * instance.slot_hours,
                degradation_h: sp.degradation_per_mwh * instance.slot_hours,
                mu_lo,
                mu_hi,
            }
        });
        DatacenterNode {
            index: j,
            m: instance.m_frontends(),
            alpha: instance.alpha[j],
            beta: instance.beta[j],
            mu_max: instance.mu_max[j],
            grid_price: instance.grid_price[j],
            fuel_cell_price: instance.fuel_cell_price,
            carbon_t_per_mwh: instance.carbon_t_per_mwh[j],
            emission: instance.emission_cost[j].clone(),
            slot_hours: instance.slot_hours,
            rho: settings.rho,
            epsilon: settings.epsilon,
            active_mu,
            active_nu,
            storage,
            mu: 0.0,
            nu: 0.0,
            d: 0.0,
            phi: 0.0,
            a: vec![0.0; instance.m_frontends()],
            varphi: vec![0.0; instance.m_frontends()],
            qp: AColQp::new(
                instance.m_frontends(),
                settings.rho,
                instance.beta[j],
                instance.capacities[j],
                instance.queueing,
                settings.method,
                QpOptions::from_settings(settings),
            ),
            warm: settings.cache_factorizations,
            c_buf: vec![0.0; instance.m_frontends()],
        }
    }

    /// This node's datacenter index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Current fuel-cell output `μ_j` (MW).
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Current grid draw `ν_j` (MW).
    #[must_use]
    pub fn nu(&self) -> f64 {
        self.nu
    }

    /// Current battery net discharge `d_j` (MW; exactly `0.0` without a
    /// scheduled storage block).
    #[must_use]
    pub fn d(&self) -> f64 {
        self.d
    }

    /// Telemetry: the a-kernel's `(kkt_cache_hits, kkt_cache_misses)` since
    /// this node was constructed (or last respawned).
    #[must_use]
    pub fn cache_counters(&self) -> (u64, u64) {
        (self.qp.cache_hits(), self.qp.cache_misses())
    }

    /// Telemetry: the a-kernel's `(warm_starts_accepted, warm_starts_rejected)`.
    #[must_use]
    pub fn warm_start_counters(&self) -> (u64, u64) {
        self.qp.warm_starts()
    }

    /// Captures this node's iterate slice for checkpointing.
    #[must_use]
    pub fn snapshot(&self) -> DatacenterSnapshot {
        DatacenterSnapshot {
            mu: self.mu,
            nu: self.nu,
            phi: self.phi,
            d: self.d,
            a: self.a.clone(),
            varphi: self.varphi.clone(),
        }
    }

    /// Restores the iterate slice from a checkpoint.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] if the snapshot's shape does not match
    /// this node's front-end count.
    pub fn restore(&mut self, snap: &DatacenterSnapshot) -> Result<(), CoreError> {
        if snap.a.len() != self.m {
            return Err(CoreError::checkpoint(format!(
                "datacenter {} snapshot has {} front-ends, node has {}",
                self.index,
                snap.a.len(),
                self.m
            )));
        }
        self.mu = snap.mu;
        self.nu = snap.nu;
        self.phi = snap.phi;
        self.d = snap.d;
        self.a.clone_from(&snap.a);
        self.varphi.clone_from(&snap.varphi);
        Ok(())
    }

    /// Steps 2–5 + correction: receive the column `λ̃_·j`, run the μ-, ν-,
    /// a- and dual updates, apply the datacenter part of the correction,
    /// and return `ã_·j` with the local residuals.
    ///
    /// # Errors
    ///
    /// [`CoreError::Subproblem`] when the inner a-QP fails — unreachable on
    /// finite iterates, but reachable when an unverified corrupted delivery
    /// poisoned the column with NaN (typed error, never a panic).
    ///
    /// # Panics
    ///
    /// Panics if `lambda_tilde.len() != M` (a coordinator shape bug, not a
    /// data fault).
    pub fn process(&mut self, lambda_tilde: &[f64]) -> Result<DatacenterStep, CoreError> {
        assert_eq!(lambda_tilde.len(), self.m, "lambda column length mismatch");
        let rho = self.rho;
        let h = self.slot_hours;
        let load_k: f64 = self.a.iter().sum();
        let demand = self.alpha + self.beta * load_k;
        // μ̃/ν̃ see the demand net of the battery's current net discharge
        // (`d = 0.0` without storage, and `x − 0.0 = x` bitwise).
        let demand_eff = demand - self.d;

        // Step 2: μ̃ (Eq. (18) closed form) — the scalar kernel shared with
        // the in-memory solver, so both sides stay bit-identical. With a
        // storage block the box tightens to the ramp window.
        let (mu_lo, mu_hi) = match &self.storage {
            Some(s) => (s.mu_lo, s.mu_hi),
            None => (0.0, self.mu_max),
        };
        let mu_tilde = if self.active_mu {
            mu_scalar_step_bounded(
                demand_eff,
                self.nu,
                self.phi,
                h * self.fuel_cell_price,
                rho,
                mu_lo,
                mu_hi,
            )
        } else {
            0.0
        };

        // Step 3: ν̃ (Eq. (19)) — shared scalar kernel.
        let nu_tilde = if self.active_nu {
            nu_scalar_step(
                demand_eff,
                mu_tilde,
                self.phi,
                h * self.grid_price,
                self.carbon_t_per_mwh * h,
                &self.emission,
                rho,
            )
        } else {
            0.0
        };

        // Storage block: d̃ from the *full* demand (the block re-solves the
        // net discharge, it does not increment the old one).
        let d_tilde = match &self.storage {
            Some(s) if s.active => storage_scalar_step(
                demand,
                mu_tilde,
                nu_tilde,
                self.phi,
                s.value_cost_h,
                s.degradation_h,
                rho,
                s.d_lo,
                s.d_hi,
            ),
            _ => 0.0,
        };

        // Step 4: ã (Eq. (20)) via the persistent kernel, warm-started from
        // the corrected column `a_·j` (snapshotted, so checkpoint/restore
        // resumes bit-identically).
        let drift = self.alpha - mu_tilde - nu_tilde - d_tilde;
        for (i, ci) in self.c_buf.iter_mut().enumerate() {
            *ci = -rho * lambda_tilde[i] - self.varphi[i] - self.phi * self.beta
                + rho * self.beta * drift;
        }
        let warm = if self.warm {
            Some(self.a.as_slice())
        } else {
            None
        };
        let a_tilde = self
            .qp
            .solve(&self.c_buf, warm)
            .map_err(|e| CoreError::subproblem(format!("a[{}]", self.index), e))?;

        // Step 5: dual predictions.
        let a_tilde_load: f64 = a_tilde.iter().sum();
        let phi_tilde = self.phi
            - rho * (self.alpha + self.beta * a_tilde_load - mu_tilde - nu_tilde - d_tilde);
        // Correction, backward order: duals, a, d, ν, μ — expression for
        // expression the same as `ufc_core::correction`.
        let mut res = NodeResiduals::default();
        let dphi = self.epsilon * (phi_tilde - self.phi);
        self.phi += dphi;
        res.track(dphi);
        let mut delta_a_load = 0.0;
        for i in 0..self.m {
            // Mirror of the front-end's dual replica (same update rule).
            let varphi_tilde = self.varphi[i] - rho * (a_tilde[i] - lambda_tilde[i]);
            self.varphi[i] += self.epsilon * (varphi_tilde - self.varphi[i]);
            let da = self.epsilon * (a_tilde[i] - self.a[i]);
            self.a[i] += da;
            delta_a_load += da;
            res.track(da);
            res.link = nan_max(res.link, (lambda_tilde[i] - self.a[i]).abs());
        }
        let mut delta_d = 0.0;
        if matches!(&self.storage, Some(s) if s.active) {
            delta_d = self.epsilon * (d_tilde - self.d) + self.beta * delta_a_load;
            self.d += delta_d;
            res.track(delta_d);
        }
        let mut delta_nu = 0.0;
        if self.active_nu {
            delta_nu = self.epsilon * (nu_tilde - self.nu) + self.beta * delta_a_load - delta_d;
            self.nu += delta_nu;
            res.track(delta_nu);
        }
        if self.active_mu {
            let dmu =
                self.epsilon * (mu_tilde - self.mu) - delta_nu + self.beta * delta_a_load - delta_d;
            self.mu += dmu;
            res.track(dmu);
        }
        let corrected_load: f64 = self.a.iter().sum();
        res.balance = (self.alpha + self.beta * corrected_load - self.mu - self.nu - self.d).abs();

        Ok(DatacenterStep {
            a_tilde,
            d: self.d,
            residuals: res,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ufc_model::EmissionCostFn;

    fn tiny() -> UfcInstance {
        UfcInstance::new(
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![0.24, 0.24],
            vec![0.12, 0.12],
            vec![0.48, 0.48],
            vec![30.0, 70.0],
            80.0,
            vec![0.5, 0.3],
            vec![vec![0.01, 0.02], vec![0.02, 0.01]],
            10.0,
            vec![
                EmissionCostFn::linear(25.0).unwrap(),
                EmissionCostFn::linear(25.0).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn frontend_prediction_matches_core_subproblem() {
        let inst = tiny();
        let settings = AdmgSettings::default();
        let mut fe = FrontendNode::new(&inst, 0, &settings);
        let state = ufc_core::AdmgState::zeros(&inst);
        let expected =
            ufc_core::subproblems::lambda_step(&inst, settings.rho, settings.method, &state)
                .unwrap();
        let row = fe.predict_lambda().unwrap();
        for j in 0..2 {
            assert!(
                (row[j] - expected[j]).abs() < 1e-12,
                "{row:?} vs {expected:?}"
            );
        }
    }

    #[test]
    fn frontend_correction_tracks_replicas() {
        let inst = tiny();
        let mut fe = FrontendNode::new(&inst, 0, &AdmgSettings::default());
        let lt = fe.predict_lambda().unwrap();
        let res = fe.receive_a_and_correct(&lt.clone());
        // With ã = λ̃: link residual is |λ − a| after partial relaxation of a.
        assert!(res.link >= 0.0);
        assert_eq!(fe.lambda(), &lt[..]);
    }

    #[test]
    fn datacenter_respects_capacity_and_bounds() {
        let inst = tiny();
        let mut dc = DatacenterNode::new(&inst, 0, &AdmgSettings::default(), true, true);
        let step = dc.process(&[1.5, 1.5]).unwrap();
        let load: f64 = step.a_tilde.iter().sum();
        assert!(load <= inst.capacities[0] + 1e-7);
        assert!(step.a_tilde.iter().all(|&v| v >= -1e-9));
        assert!(dc.mu() >= -1e-12 && dc.mu() <= inst.mu_max[0] + 1e-9);
    }

    #[test]
    fn pinned_blocks_stay_zero_at_node_level() {
        let inst = tiny();
        let mut grid_dc = DatacenterNode::new(&inst, 0, &AdmgSettings::default(), false, true);
        grid_dc.process(&[0.5, 1.0]).unwrap();
        assert_eq!(grid_dc.mu(), 0.0);
        let mut fc_dc = DatacenterNode::new(&inst, 0, &AdmgSettings::default(), true, false);
        fc_dc.process(&[0.5, 1.0]).unwrap();
        assert_eq!(fc_dc.nu(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        let _ = FrontendNode::new(&tiny(), 9, &AdmgSettings::default());
    }

    #[test]
    fn eviction_pins_column_and_preserves_arrival() {
        let inst = tiny();
        let mut fe = FrontendNode::new(&inst, 1, &AdmgSettings::default());
        fe.set_evicted(0);
        let row = fe.predict_lambda().unwrap();
        assert_eq!(row[0], 0.0, "evicted column must stay zero");
        let sum: f64 = row.iter().sum();
        assert!(
            (sum - inst.arrivals[1]).abs() < 1e-7,
            "arrival must be fully routed over survivors (sum {sum})"
        );
        let res = fe.receive_a_and_correct(&row.clone());
        assert_eq!(fe.lambda()[0], 0.0);
        assert!(res.link >= 0.0);
        fe.clear_evicted(0);
        assert!(!fe.evicted_mask()[0]);
        // Re-admitted slot starts from zero, not stale state.
        assert_eq!(fe.lambda()[0], 0.0);
    }

    #[test]
    fn clean_path_unchanged_by_eviction_support() {
        // With no evictions the restricted branch is never taken; the
        // prediction must match the core sub-problem bit for bit.
        let inst = tiny();
        let settings = AdmgSettings::default();
        let mut fe = FrontendNode::new(&inst, 0, &settings);
        let state = ufc_core::AdmgState::zeros(&inst);
        let expected =
            ufc_core::subproblems::lambda_step(&inst, settings.rho, settings.method, &state)
                .unwrap();
        let row = fe.predict_lambda().unwrap();
        for j in 0..2 {
            assert_eq!(row[j], expected[j], "column {j} diverged");
        }
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let inst = tiny();
        let settings = AdmgSettings::default();
        let mut fe = FrontendNode::new(&inst, 0, &settings);
        let mut dc = DatacenterNode::new(&inst, 0, &settings, true, true);
        // Advance one protocol round to get nonzero state.
        let lt = fe.predict_lambda().unwrap();
        let step = dc.process(&[lt[0], lt[0]]).unwrap();
        fe.receive_a_and_correct(&[step.a_tilde[0], step.a_tilde[0]]);

        // Serialize through the wire codec, restore into fresh nodes.
        let fe_blob = fe.snapshot().to_bytes();
        let dc_blob = dc.snapshot().to_bytes();
        let mut fe2 = FrontendNode::new(&inst, 0, &settings);
        let mut dc2 = DatacenterNode::new(&inst, 0, &settings, true, true);
        fe2.restore(&crate::snapshot::FrontendSnapshot::from_bytes(&fe_blob).unwrap())
            .unwrap();
        dc2.restore(&crate::snapshot::DatacenterSnapshot::from_bytes(&dc_blob).unwrap())
            .unwrap();

        // The next round must be bit-identical.
        let r1 = fe.predict_lambda().unwrap();
        let r2 = fe2.predict_lambda().unwrap();
        assert_eq!(r1, r2);
        let s1 = dc.process(&[r1[0], r1[0]]).unwrap();
        let s2 = dc2.process(&[r2[0], r2[0]]).unwrap();
        assert_eq!(s1.a_tilde, s2.a_tilde);
        assert_eq!(dc.mu().to_bits(), dc2.mu().to_bits());
        assert_eq!(dc.nu().to_bits(), dc2.nu().to_bits());
        assert_eq!(dc.d().to_bits(), dc2.d().to_bits());
    }

    #[test]
    fn storage_process_matches_core_formulas_bit_for_bit() {
        let fleet = ufc_model::StorageFleet::new(2.0, 1.0)
            .initial_charge_frac(0.5)
            .value_per_mwh(40.0)
            .degradation(2.0)
            .ramp_mw(0.3);
        let inst = tiny().with_storage(fleet.initial_params(2)).unwrap();
        let settings = AdmgSettings::default();
        let (rho, eps) = (settings.rho, settings.epsilon);
        let h = inst.slot_hours;
        let j = 0;
        let mut dc = DatacenterNode::new(&inst, j, &settings, true, true);
        let step = dc.process(&[0.5, 1.0]).unwrap();

        // Reference: the shared scalar kernels + the core correction
        // recursion, evaluated from the same zero state.
        let sp = inst.storage.as_ref().unwrap();
        let demand = inst.alpha[j]; // a replicas start at zero
        let (mu_lo, mu_hi) = sp.mu_bounds(j, inst.mu_max[j]);
        assert_eq!((mu_lo, mu_hi), (0.0, 0.3), "ramp window from μ_prev = 0");
        let mt = mu_scalar_step_bounded(
            demand - 0.0,
            0.0,
            0.0,
            h * inst.fuel_cell_price,
            rho,
            mu_lo,
            mu_hi,
        );
        let nt = nu_scalar_step(
            demand - 0.0,
            mt,
            0.0,
            h * inst.grid_price[j],
            inst.carbon_t_per_mwh[j] * h,
            &inst.emission_cost[j],
            rho,
        );
        let (d_lo, d_hi) = sp.discharge_bounds(j, h);
        let dt = storage_scalar_step(
            demand,
            mt,
            nt,
            0.0,
            sp.value_per_mwh[j] * h,
            sp.degradation_per_mwh * h,
            rho,
            d_lo,
            d_hi,
        );
        assert!((d_lo..=d_hi).contains(&dt), "d̃ must respect the box");
        let delta_a_load: f64 = step.a_tilde.iter().map(|&v| eps * (v - 0.0)).sum();
        let dd = eps * (dt - 0.0) + inst.beta[j] * delta_a_load;
        let dnu = eps * (nt - 0.0) + inst.beta[j] * delta_a_load - dd;
        let dmu = eps * (mt - 0.0) - dnu + inst.beta[j] * delta_a_load - dd;
        assert_eq!(step.d.to_bits(), dc.d().to_bits());
        assert_eq!(dc.d().to_bits(), dd.to_bits(), "Δd recursion diverged");
        assert_eq!(dc.nu().to_bits(), dnu.to_bits(), "Δν recursion diverged");
        assert_eq!(dc.mu().to_bits(), dmu.to_bits(), "Δμ recursion diverged");
        assert!(dc.mu() <= mu_hi + 1e-9, "ramp bound violated");
    }

    #[test]
    fn zero_capacity_storage_is_bit_identical_to_no_storage() {
        let inst = tiny();
        let inst_s = tiny()
            .with_storage(ufc_model::StorageFleet::new(0.0, 1.0).initial_params(2))
            .unwrap();
        let settings = AdmgSettings::default();
        let mut plain = DatacenterNode::new(&inst, 0, &settings, true, true);
        let mut stored = DatacenterNode::new(&inst_s, 0, &settings, true, true);
        for _ in 0..3 {
            let s1 = plain.process(&[0.5, 1.0]).unwrap();
            let s2 = stored.process(&[0.5, 1.0]).unwrap();
            assert_eq!(s1.a_tilde, s2.a_tilde);
            assert_eq!(s2.d, 0.0, "inactive battery must pin d at zero");
            assert_eq!(plain.mu().to_bits(), stored.mu().to_bits());
            assert_eq!(plain.nu().to_bits(), stored.nu().to_bits());
            assert_eq!(
                s1.residuals.balance.to_bits(),
                s2.residuals.balance.to_bits()
            );
        }
    }

    #[test]
    fn residual_folds_are_nan_sticky() {
        // `f64::max` silently drops NaN operands; the residual folds must
        // not, or a poisoned iterate becomes invisible to the stop rule.
        assert!(nan_max(1.0, f64::NAN).is_nan());
        assert!(nan_max(f64::NAN, 1.0).is_nan());
        assert_eq!(nan_max(1.0, 2.0), 2.0);
        let mut res = NodeResiduals {
            movement: 0.5,
            ..NodeResiduals::default()
        };
        res.track(f64::NAN);
        assert!(res.movement.is_nan(), "NaN movement must poison the fold");

        let inst = tiny();
        let mut fe = FrontendNode::new(&inst, 0, &AdmgSettings::default());
        fe.predict_lambda().unwrap();
        let res = fe.receive_a_and_correct(&[f64::NAN, 0.0]);
        assert!(
            res.link.is_nan() || res.movement.is_nan(),
            "a NaN ã must surface in the residuals: {res:?}"
        );
    }

    /// Found by `repro fuzz --faults` (seed 777): an unverified corrupted
    /// delivery poisons the replicas, the next λ-/a-QP cannot converge, and
    /// the node used to `.expect()` — an abort instead of the typed
    /// rejection the §12 corruption contract promises. Huge-magnitude
    /// poison (a bit-flipped exponent) overflows the KKT steps into
    /// NaN and the active set thrashes to its iteration cap; NaN poison
    /// instead flows through to the residuals for the divergence gate.
    /// Either way the process must survive with a typed outcome.
    #[test]
    fn poisoned_iterate_is_a_typed_subproblem_error_not_a_panic() {
        let inst = tiny();
        let mut fe = FrontendNode::new(&inst, 0, &AdmgSettings::default());
        fe.predict_lambda().unwrap();
        fe.receive_a_and_correct(&[-5.5e307, -5.5e307]);
        let err = fe.predict_lambda().unwrap_err();
        assert!(
            matches!(err, CoreError::Subproblem { .. }),
            "expected a typed Subproblem error, got {err:?}"
        );

        let mut dc = DatacenterNode::new(&inst, 0, &AdmgSettings::default(), true, true);
        dc.process(&[0.5, 1.0]).unwrap();
        let err = dc.process(&[-5.5e307, -5.5e307]).unwrap_err();
        assert!(
            matches!(err, CoreError::Subproblem { .. }),
            "expected a typed Subproblem error, got {err:?}"
        );

        // NaN poison takes the graceful path: the QP accepts the iterate
        // and the divergence gate downstream flags the NaN residuals.
        let mut fe = FrontendNode::new(&inst, 0, &AdmgSettings::default());
        fe.predict_lambda().unwrap();
        fe.receive_a_and_correct(&[f64::NAN, f64::NAN]);
        let _ = fe.predict_lambda();
        let mut dc = DatacenterNode::new(&inst, 0, &AdmgSettings::default(), true, true);
        dc.process(&[0.5, 1.0]).unwrap();
        let _ = dc.process(&[f64::NAN, f64::NAN]);
    }

    #[test]
    fn restore_rejects_wrong_shape() {
        let inst = tiny();
        let mut fe = FrontendNode::new(&inst, 0, &AdmgSettings::default());
        let bad = crate::snapshot::FrontendSnapshot {
            lambda: vec![0.0; 5],
            lambda_tilde: vec![0.0; 5],
            a: vec![0.0; 5],
            varphi: vec![0.0; 5],
            evicted: vec![false; 5],
        };
        assert!(fe.restore(&bad).is_err());
    }
}
