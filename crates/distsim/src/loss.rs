//! Lossy-channel fault injection.
//!
//! The paper's protocol is synchronous: each iteration's phases complete
//! only when every message has arrived. Under message loss with
//! retransmission the *results* are unchanged (delivery is reliable in the
//! end) but the *cost* is not: lost attempts consume bandwidth, and each
//! phase stalls for its slowest message. [`LossyChannel`] models an
//! independent-loss channel with immediate retransmission and feeds the
//! extra attempts into the run's traffic and wall-clock accounting —
//! demonstrating that the iteration tolerates unreliable WANs at a
//! quantifiable price.

/// Channel loss configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossConfig {
    /// Per-attempt loss probability in `[0, 1)`.
    pub probability: f64,
    /// RNG seed for the loss process.
    pub seed: u64,
}

impl LossConfig {
    /// Creates a configuration, validating the probability.
    ///
    /// # Errors
    ///
    /// [`ufc_core::CoreError::InvalidConfig`] unless `0 ≤ probability < 1`
    /// (at `p = 1` no message is ever delivered).
    pub fn try_new(probability: f64, seed: u64) -> Result<Self, ufc_core::CoreError> {
        if !(0.0..1.0).contains(&probability) {
            return Err(ufc_core::CoreError::invalid_config(format!(
                "loss probability must be in [0, 1), got {probability}"
            )));
        }
        Ok(LossConfig { probability, seed })
    }

    /// Creates a configuration, panicking on an invalid probability (thin
    /// wrapper over [`LossConfig::try_new`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ probability < 1`.
    #[must_use]
    pub fn new(probability: f64, seed: u64) -> Self {
        match Self::try_new(probability, seed) {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }
}

/// A lossy channel with retransmission: every send reports how many
/// attempts it took (geometric with success probability `1 − p`).
///
/// Uses the crate's shared SplitMix64 generator — deterministic given the
/// seed and free of external dependencies (this is accounting noise, not
/// statistics).
#[derive(Debug, Clone)]
pub struct LossyChannel {
    probability: f64,
    rng: crate::rng::SplitMix64,
    /// Total failed attempts observed so far.
    pub retransmissions: usize,
}

impl LossyChannel {
    /// Opens a channel with the given configuration.
    #[must_use]
    pub fn new(config: LossConfig) -> Self {
        LossyChannel {
            probability: config.probability,
            rng: crate::rng::SplitMix64::new(config.seed),
            retransmissions: 0,
        }
    }

    /// Sends one message; returns the number of attempts (≥ 1) it took.
    pub fn send(&mut self) -> usize {
        let mut attempts = 1;
        while self.rng.uniform() < self.probability {
            attempts += 1;
            self.retransmissions += 1;
        }
        attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_channel_never_retransmits() {
        let mut ch = LossyChannel::new(LossConfig::new(0.0, 1));
        for _ in 0..1000 {
            assert_eq!(ch.send(), 1);
        }
        assert_eq!(ch.retransmissions, 0);
    }

    #[test]
    fn attempts_match_geometric_mean() {
        // E[attempts] = 1/(1−p); p = 0.5 ⇒ 2.
        let mut ch = LossyChannel::new(LossConfig::new(0.5, 42));
        let n = 20_000;
        let total: usize = (0..n).map(|_| ch.send()).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean attempts {mean}");
        assert_eq!(ch.retransmissions, total - n);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = LossyChannel::new(LossConfig::new(0.3, 7));
        let mut b = LossyChannel::new(LossConfig::new(0.3, 7));
        for _ in 0..100 {
            assert_eq!(a.send(), b.send());
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_certain_loss() {
        let _ = LossConfig::new(1.0, 0);
    }

    #[test]
    fn try_new_returns_typed_error() {
        assert!(matches!(
            LossConfig::try_new(1.5, 0),
            Err(ufc_core::CoreError::InvalidConfig { .. })
        ));
        assert!(LossConfig::try_new(0.25, 0).is_ok());
    }
}
