//! The crate's tiny deterministic generator.
//!
//! SplitMix64 (Steele et al.) — well-distributed, seedable, and free of
//! external dependencies. Fault schedules, loss processes, and corruption
//! injection all draw from private instances of this one generator so every
//! injected event is exactly reproducible from its seed.

/// SplitMix64 state.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator (the XOR keeps seed 0 from degenerating).
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub(crate) fn uniform(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let same: Vec<u64> = (0..32).map(|_| a.next()).collect();
        assert_eq!(same, (0..32).map(|_| b.next()).collect::<Vec<_>>());
        assert_ne!(same, (0..32).map(|_| c.next()).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
