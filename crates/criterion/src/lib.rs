//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io mirror, so this
//! workspace vendors a dependency-free harness covering the API slice our
//! benches use: [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each sample times a fixed batch of
//! iterations with [`std::time::Instant`] and the harness prints
//! median/min/max per-iteration wall time. There is no statistical
//! bootstrap, HTML report, or baseline comparison — the point is that
//! `cargo bench` compiles, runs, and emits usable numbers offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the configured number of iterations, timing the batch.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark context; one per `criterion_group!` function list.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        run_benchmark(&id.to_string(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group (report spacing only in this stand-in).
    pub fn finish(self) {
        println!();
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up sample sizes the timed batches so each sample runs long
    // enough for Instant to resolve, without letting slow benches crawl.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!(
        "{label:<48} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_time(samples[0]),
        fmt_time(median),
        fmt_time(*samples.last().unwrap()),
        samples.len(),
        iters,
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion's
/// plain `criterion_group!(name, fn_a, fn_b, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_batches() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn group_runs_all_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut runs = 0;
        g.bench_function("counted", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1));
        });
        g.finish();
        // warm-up + 2 samples
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }
}
