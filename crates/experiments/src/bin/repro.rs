//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <command> [--hours N] [--seed N] [--csv DIR]
//!
//! commands:
//!   table1   Table I  — weekly energy costs at Dallas / San Jose
//!   fig3     Fig. 3   — input traces (workload, prices, carbon rates)
//!   fig4     Fig. 4   — hourly UFC improvements
//!   fig5     Fig. 5   — hourly average propagation latency
//!   fig6     Fig. 6   — hourly energy cost
//!   fig7     Fig. 7   — hourly carbon cost
//!   fig8     Fig. 8   — hourly fuel-cell utilization
//!   fig9     Fig. 9   — fuel-cell price sweep
//!   fig10    Fig. 10  — carbon-tax sweep
//!   fig11    Fig. 11  — CDF of ADM-G iterations
//!   rightsize  extension: server right-sizing (the paper's §II-C Remark)
//!   baseline   extension: ADM-G vs dual-subgradient iteration counts
//!   forecast   extension: UFC regret when acting on forecasted arrivals
//!   faults     extension: crash/straggler injection and degraded-mode cost
//!   chaos      extension: corruption-rate sweep of the checksummed wire
//!              codec and divergence safeguards, both distributed engines;
//!              `--engine sockets` runs the sweep over the multi-process
//!              socket engine's real TCP frames instead, including the
//!              wire-level kinds (frame truncate/duplicate/reorder);
//!              `--quick` shrinks the sweep for CI smoke runs
//!   sockets    extension: multi-process socket engine (one OS process per
//!              node over loopback TCP) vs lockstep, clean and under real
//!              SIGKILL + partition recovery; `--quick` shrinks the sweep
//!              for CI smoke runs
//!   storage    extension: receding-horizon battery + fuel-cell ramp study
//!              (the 5th ADM-G block) over the 24-hour trace, lockstep vs
//!              threaded bit-compared each hour; `--quick` shrinks the
//!              horizon for CI smoke runs
//!   wsweep     extension: latency-weight (w) Pareto sweep
//!   bench      solver hot-path wall-clock (writes BENCH_solver.json);
//!              `--quick` shrinks the workload for CI smoke runs
//!   trace      run-telemetry JSONL trace of one instrumented solve;
//!              `--engine inprocess|lockstep|threaded|faulty|corrupt|sockets`
//!              picks the execution engine, `--check` validates the emitted
//!              JSON and counter invariants
//!   verify     self-test: centralized / in-memory / distributed agreement
//!   fuzz       differential fuzzing of the whole solver stack: replays the
//!              corpus under `--corpus DIR` (default `tests/corpus`), then
//!              generates `--cases N` (default 500; `--quick` → 60) random
//!              instances and cross-checks every engine plus the generic
//!              matrix-form reference; failing cases are shrunk and written
//!              to the corpus as permanent reproducers; `--faults` forces
//!              the crash/recovery and corruption legs onto every generated
//!              case, `--mutate-corpus` biases generation toward mutants of
//!              the committed reproducers
//!   all      everything above (except extensions)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ufc_core::AdmgSettings;
use ufc_experiments::report::{fmt, pct, text_table, write_csv};
use ufc_experiments::{convergence, fig3, sweep, table1, weekly, DEFAULT_SEED};

struct Options {
    command: String,
    hours: usize,
    seed: u64,
    csv_dir: Option<PathBuf>,
    quick: bool,
    threads: usize,
    engine: String,
    check: bool,
    min_speedup: Option<f64>,
    cases: Option<usize>,
    corpus: PathBuf,
    faults: bool,
    mutate_corpus: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command (try `repro all`)")?;
    let mut opts = Options {
        command,
        hours: 168,
        seed: DEFAULT_SEED,
        csv_dir: None,
        quick: false,
        threads: 4,
        engine: "inprocess".to_owned(),
        check: false,
        min_speedup: None,
        cases: None,
        corpus: PathBuf::from("tests/corpus"),
        faults: false,
        mutate_corpus: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--hours" => {
                let v = args.next().ok_or("--hours needs a value")?;
                opts.hours = v.parse().map_err(|_| format!("bad --hours value {v:?}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed value {v:?}"))?;
            }
            "--csv" => {
                let v = args.next().ok_or("--csv needs a directory")?;
                opts.csv_dir = Some(PathBuf::from(v));
            }
            "--quick" => opts.quick = true,
            "--check" => opts.check = true,
            "--faults" => opts.faults = true,
            "--mutate-corpus" => opts.mutate_corpus = true,
            "--engine" => {
                let v = args.next().ok_or("--engine needs a value")?;
                opts.engine = v;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
            }
            "--cases" => {
                let v = args.next().ok_or("--cases needs a value")?;
                opts.cases = Some(v.parse().map_err(|_| format!("bad --cases value {v:?}"))?);
            }
            "--corpus" => {
                let v = args.next().ok_or("--corpus needs a directory")?;
                opts.corpus = PathBuf::from(v);
            }
            "--min-speedup" => {
                let v = args.next().ok_or("--min-speedup needs a value")?;
                opts.min_speedup = Some(
                    v.parse()
                        .map_err(|_| format!("bad --min-speedup value {v:?}"))?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let settings = AdmgSettings::default();
    let all = opts.command == "all";
    let mut matched = all;

    if all || opts.command == "table1" {
        matched = true;
        run_table1(opts)?;
    }
    if all || opts.command == "fig3" {
        matched = true;
        run_fig3(opts)?;
    }
    let weekly_needed = all
        || matches!(
            opts.command.as_str(),
            "fig4" | "fig5" | "fig6" | "fig7" | "fig8" | "fig11"
        );
    if weekly_needed {
        matched = true;
        run_weekly(opts, settings, all)?;
    }
    if all || opts.command == "fig9" {
        matched = true;
        run_fig9(opts, settings)?;
    }
    if all || opts.command == "fig10" {
        matched = true;
        run_fig10(opts, settings)?;
    }
    if opts.command == "rightsize" {
        matched = true;
        run_rightsize(opts, settings)?;
    }
    if opts.command == "baseline" {
        matched = true;
        run_baseline(opts, settings)?;
    }
    if opts.command == "forecast" {
        matched = true;
        run_forecast(opts, settings)?;
    }
    if opts.command == "faults" {
        matched = true;
        run_faults(opts, settings)?;
    }
    if opts.command == "chaos" {
        matched = true;
        run_chaos(opts, settings)?;
    }
    if opts.command == "sockets" {
        matched = true;
        run_sockets(opts, settings)?;
    }
    if opts.command == "storage" {
        matched = true;
        run_storage(opts, settings)?;
    }
    if opts.command == "wsweep" {
        matched = true;
        run_wsweep(opts, settings)?;
    }
    if opts.command == "bench" {
        matched = true;
        run_bench(opts)?;
    }
    if opts.command == "trace" {
        matched = true;
        run_trace(opts)?;
    }
    if opts.command == "verify" {
        matched = true;
        run_verify(opts, settings)?;
    }
    if opts.command == "fuzz" {
        matched = true;
        run_fuzz(opts)?;
    }
    if !matched {
        return Err(format!("unknown command {:?} (try `repro all`)", opts.command).into());
    }
    Ok(())
}

fn run_table1(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let t = table1::run(opts.seed);
    println!(
        "== Table I: one-week energy costs ($), p0 = {} $/MWh ==",
        t.fuel_cell_price
    );
    let rows: Vec<Vec<String>> = t
        .sites
        .iter()
        .map(|s| {
            vec![
                s.site.clone(),
                fmt(s.grid, 0),
                fmt(s.fuel_cell, 0),
                fmt(s.hybrid, 0),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(&["Strategy", "Grid", "Fuel Cell", "Hybrid"], &rows)
    );
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "table1_costs", &t.costs_csv())?;
        write_csv(dir, "fig1_series", &t.series_csv())?;
        println!("(csv written to {})", dir.display());
    }
    Ok(())
}

fn run_fig3(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let f = fig3::run(opts.seed, opts.hours)?;
    println!("== Fig. 3: input traces ({} hours) ==", f.scenario.hours());
    let p = f.mean_prices();
    let c = f.mean_carbon();
    let rows: Vec<Vec<String>> = f
        .scenario
        .dc_names
        .iter()
        .enumerate()
        .map(|(j, n)| vec![n.clone(), fmt(p[j], 1), fmt(c[j], 0)])
        .collect();
    println!(
        "{}",
        text_table(
            &["Datacenter", "mean price $/MWh", "mean carbon g/kWh"],
            &rows
        )
    );
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "fig3_traces", &f.csv())?;
        println!("(csv written to {})", dir.display());
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn run_weekly(
    opts: &Options,
    settings: AdmgSettings,
    all: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let results = weekly::run(opts.seed, opts.hours, settings)?;
    let which = |name: &str| all || opts.command == name;

    if which("fig4") {
        println!("== Fig. 4: UFC improvements (week averages) ==");
        let rows = vec![
            vec![
                "I_hg (Hybrid vs Grid)".to_owned(),
                pct(results.mean_of(|h| h.i_hg)),
            ],
            vec![
                "I_hf (Hybrid vs Fuel cell)".to_owned(),
                pct(results.mean_of(|h| h.i_hf)),
            ],
            vec![
                "I_fg (Fuel cell vs Grid)".to_owned(),
                pct(results.mean_of(|h| h.i_fg)),
            ],
            vec![
                "max I_hg".to_owned(),
                pct(results
                    .hours
                    .iter()
                    .map(|h| h.i_hg)
                    .fold(f64::MIN, f64::max)),
            ],
            vec![
                "min I_fg".to_owned(),
                pct(results
                    .hours
                    .iter()
                    .map(|h| h.i_fg)
                    .fold(f64::MAX, f64::min)),
            ],
        ];
        println!("{}", text_table(&["metric", "value"], &rows));
    }
    if which("fig5") {
        println!("== Fig. 5: average propagation latency (ms) ==");
        let rows = vec![
            vec![
                "Hybrid".to_owned(),
                fmt(1e3 * results.mean_of(|h| h.latency_s[0]), 2),
            ],
            vec![
                "Grid".to_owned(),
                fmt(1e3 * results.mean_of(|h| h.latency_s[1]), 2),
            ],
            vec![
                "Fuel cell".to_owned(),
                fmt(1e3 * results.mean_of(|h| h.latency_s[2]), 2),
            ],
        ];
        println!("{}", text_table(&["strategy", "mean latency"], &rows));
    }
    if which("fig6") {
        println!("== Fig. 6: energy cost ($, weekly totals) ==");
        let n = results.hours.len() as f64;
        let rows = vec![
            vec![
                "Hybrid".to_owned(),
                fmt(n * results.mean_of(|h| h.energy_cost[0]), 0),
            ],
            vec![
                "Grid".to_owned(),
                fmt(n * results.mean_of(|h| h.energy_cost[1]), 0),
            ],
            vec![
                "Fuel cell".to_owned(),
                fmt(n * results.mean_of(|h| h.energy_cost[2]), 0),
            ],
        ];
        println!("{}", text_table(&["strategy", "total energy cost"], &rows));
    }
    if which("fig7") {
        println!("== Fig. 7: carbon cost ($, weekly totals) ==");
        let n = results.hours.len() as f64;
        let rows = vec![
            vec![
                "Hybrid".to_owned(),
                fmt(n * results.mean_of(|h| h.carbon_cost[0]), 0),
            ],
            vec![
                "Grid".to_owned(),
                fmt(n * results.mean_of(|h| h.carbon_cost[1]), 0),
            ],
            vec![
                "Fuel cell".to_owned(),
                fmt(n * results.mean_of(|h| h.carbon_cost[2]), 0),
            ],
        ];
        println!("{}", text_table(&["strategy", "total carbon cost"], &rows));
    }
    if which("fig8") {
        println!("== Fig. 8: hybrid fuel-cell utilization ==");
        let avg = results.mean_of(|h| h.utilization);
        let max = results
            .hours
            .iter()
            .map(|h| h.utilization)
            .fold(f64::MIN, f64::max);
        let rows = vec![
            vec!["average".to_owned(), pct(avg)],
            vec!["maximum".to_owned(), pct(max)],
        ];
        println!("{}", text_table(&["metric", "value"], &rows));
    }
    if which("fig11") {
        let cdf = convergence::from_counts(results.iteration_counts());
        println!("== Fig. 11: ADM-G iterations to convergence ==");
        let rows = vec![
            vec!["min".to_owned(), cdf.min().to_string()],
            vec!["max".to_owned(), cdf.max().to_string()],
            vec![
                "within 100 iterations".to_owned(),
                pct(cdf.fraction_within(100)),
            ],
        ];
        println!("{}", text_table(&["metric", "value"], &rows));
        if let Some(dir) = &opts.csv_dir {
            write_csv(dir, "fig11_cdf", &cdf.csv())?;
        }
    }
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "fig4_improvements", &results.improvements_csv())?;
        write_csv(dir, "fig5_latency", &results.latency_csv())?;
        write_csv(dir, "fig6_energy", &results.energy_csv())?;
        write_csv(dir, "fig7_carbon", &results.carbon_csv())?;
        write_csv(dir, "fig8_utilization", &results.utilization_csv())?;
        println!("(csv written to {})", dir.display());
    }
    Ok(())
}

fn run_fig9(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    let s = sweep::sweep_fuel_cell_price(opts.seed, opts.hours, settings, &sweep::fig9_prices())?;
    println!("== Fig. 9: fuel-cell price sweep ==");
    print_sweep(&s, "p0 $/MWh");
    if let Some(x) = s.crossover(0.99, false) {
        println!("utilization reaches ~100% at p0 ≈ {x} $/MWh (paper: 27)\n");
    }
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "fig9_p0_sweep", &s.csv())?;
    }
    Ok(())
}

fn run_fig10(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    let s = sweep::sweep_carbon_tax(opts.seed, opts.hours, settings, &sweep::fig10_taxes())?;
    println!("== Fig. 10: carbon-tax sweep ==");
    print_sweep(&s, "tax $/ton");
    if let Some(x) = s.crossover(0.99, true) {
        println!("utilization reaches ~100% at tax ≈ {x} $/ton (paper: 140)\n");
    }
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "fig10_tax_sweep", &s.csv())?;
    }
    Ok(())
}

fn run_rightsize(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_core::right_sizing::{solve_with_right_sizing, RightSizingOptions};
    use ufc_core::Strategy;
    use ufc_model::scenario::ScenarioBuilder;

    let hours = opts.hours.min(24);
    let scenario = ScenarioBuilder::paper_default()
        .seed(opts.seed)
        .hours(hours)
        .build()?;
    println!("== Extension: server right-sizing (paper §II-C Remark), {hours} hours ==");
    let mut rows = Vec::new();
    let mut total_gain = 0.0;
    for (t, inst) in scenario.instances.iter().enumerate() {
        let out = solve_with_right_sizing(
            inst,
            Strategy::Hybrid,
            settings,
            RightSizingOptions::default(),
        )?;
        total_gain += out.ufc_gain();
        if t % 6 == 0 {
            let active: f64 = out.active_servers_k.iter().sum();
            rows.push(vec![
                t.to_string(),
                fmt(active, 1),
                fmt(inst.total_capacity(), 1),
                fmt(out.ufc_gain(), 2),
            ]);
        }
    }
    println!(
        "{}",
        text_table(
            &["hour", "active kservers", "fleet kservers", "UFC gain $"],
            &rows
        )
    );
    println!("total UFC gain over {hours} hours: {total_gain:.2} $\n");
    Ok(())
}

fn run_baseline(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    let hours = opts.hours.min(24);
    let cmp = ufc_experiments::baseline::run(opts.seed, hours, settings)?;
    println!("== Extension: ADM-G vs dual-subgradient baseline ({hours} hours) ==");
    let (admg, sub) = cmp.mean_iterations();
    let rows = vec![
        vec!["mean ADM-G iterations".to_owned(), fmt(admg, 0)],
        vec!["mean subgradient iterations".to_owned(), fmt(sub, 0)],
        vec!["speedup".to_owned(), format!("{:.1}x", sub / admg)],
        vec![
            "mean UFC gap of baseline".to_owned(),
            pct(cmp.mean_ufc_gap()),
        ],
    ];
    println!("{}", text_table(&["metric", "value"], &rows));
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "baseline_comparison", &cmp.csv())?;
    }
    Ok(())
}

fn run_forecast(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_experiments::robustness;
    let hours = opts.hours.max(robustness::WARMUP_HOURS + 12);
    let study = robustness::run(opts.seed, hours, settings)?;
    println!(
        "== Extension: forecast robustness ({} evaluated hours after {}-hour warm-up) ==",
        study.hours.len(),
        robustness::WARMUP_HOURS
    );
    let rows = vec![
        vec!["mean arrival MAPE".to_owned(), pct(study.mean_mape())],
        vec!["mean UFC regret".to_owned(), pct(study.mean_regret())],
        vec!["max UFC regret".to_owned(), pct(study.max_regret())],
    ];
    println!("{}", text_table(&["metric", "value"], &rows));
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "forecast_robustness", &study.csv())?;
    }
    Ok(())
}

fn run_faults(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_experiments::faults;
    let hours = opts.hours.min(24);
    let study = faults::run(opts.seed, hours, settings)?;
    println!("== Extension: fault-tolerance sweep ({hours} hours per crash rate) ==");
    let rows: Vec<Vec<String>> = study
        .points
        .iter()
        .map(|p| {
            vec![
                fmt(p.crash_rate, 2),
                format!("{}/{}", p.hours_completed, p.hours_attempted),
                p.crashes_observed.to_string(),
                p.evictions.to_string(),
                p.readmissions.to_string(),
                p.recomputed_iterations.to_string(),
                fmt(p.downtime_s, 2),
                pct(p.mean_abs_ufc_delta),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "crash rate",
                "completed",
                "crashes",
                "evictions",
                "readmits",
                "recomputed",
                "downtime s",
                "mean |UFC delta|"
            ],
            &rows
        )
    );
    println!(
        "completion at the harshest rate: {}\n",
        pct(study.worst_completion_rate())
    );
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "fault_sweep", &study.csv())?;
        println!("(csv written to {})", dir.display());
    }
    Ok(())
}

fn run_chaos(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_experiments::chaos;
    if opts.engine == "sockets" {
        return run_chaos_sockets(opts, settings);
    }
    if opts.engine != "inprocess" {
        return Err(format!(
            "unknown chaos --engine {:?} (expected inprocess|sockets)",
            opts.engine
        )
        .into());
    }
    let (hours, rates): (usize, &[f64]) = if opts.quick {
        (2, &[0.0, 1e-3])
    } else {
        (opts.hours.min(24), &chaos::CORRUPTION_RATES)
    };
    let study = chaos::run_rates(opts.seed, hours, settings, rates)?;
    println!("== Extension: corruption chaos sweep ({hours} hours per cell) ==");
    let rows: Vec<Vec<String>> = study
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0e}", p.rate),
                format!("{:?}", p.runtime).to_lowercase(),
                if p.verified { "on" } else { "off" }.to_owned(),
                format!(
                    "{}/{}/{}",
                    p.hours_converged, p.hours_diverged, p.hours_exhausted
                ),
                p.corruptions_injected.to_string(),
                p.corruptions_detected.to_string(),
                p.corruptions_delivered.to_string(),
                p.retransmissions.to_string(),
                pct(p.mean_extra_bytes),
                pct(p.max_abs_ufc_delta),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "rate",
                "engine",
                "crc",
                "ok/div/exh",
                "injected",
                "detected",
                "delivered",
                "resends",
                "extra bytes",
                "max |UFC delta|"
            ],
            &rows
        )
    );
    if !study.verified_cells_clean() {
        return Err("checksummed runs failed to reproduce the clean operating point".into());
    }
    println!("checksummed runs reproduced the clean operating point in every cell\n");
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "chaos_sweep", &study.csv())?;
        println!("(csv written to {})", dir.display());
    }
    Ok(())
}

fn run_chaos_sockets(
    opts: &Options,
    settings: AdmgSettings,
) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_experiments::{chaos, sockets};
    let worker = sockets::locate_worker()?;
    let (hours, rates): (usize, &[f64]) = if opts.quick {
        (1, &[1e-2])
    } else {
        (opts.hours.min(4), &[1e-3, 1e-2])
    };
    let study = chaos::run_sockets_chaos(opts.seed, hours, settings, rates, &worker)?;
    println!(
        "== Extension: chaos over the real wire ({hours} hours per cell, one OS process per \
         node) =="
    );
    let rows: Vec<Vec<String>> = study
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0e}", p.rate),
                p.kind.map_or("value".to_owned(), |k| {
                    format!("{k:?}").to_lowercase().replace("frame", "")
                }),
                format!(
                    "{}/{}/{}",
                    p.hours_converged, p.hours_attempted, p.hours_exhausted
                ),
                p.hours_bitwise_clean.to_string(),
                p.corruptions_injected.to_string(),
                p.corruptions_detected.to_string(),
                p.corruptions_delivered.to_string(),
                p.retransmissions.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "rate",
                "kind",
                "ok/att/exh",
                "bitwise",
                "injected",
                "detected",
                "delivered",
                "resends"
            ],
            &rows
        )
    );
    if !study.all_hours_bitwise_clean() {
        return Err(
            "a verified socket run failed to reproduce the clean operating point bitwise".into(),
        );
    }
    if !study.wire_faults_all_caught() {
        return Err("a wire-level fault was injected but never detected".into());
    }
    println!(
        "every injected corruption was caught and every hour reproduced the clean UFC \
         bit-for-bit\n"
    );
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "chaos_sockets", &study.csv())?;
        println!("(csv written to {})", dir.display());
    }
    Ok(())
}

fn run_sockets(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_experiments::sockets;
    let hours = if opts.quick { 2 } else { opts.hours.min(24) };
    let worker = sockets::locate_worker()?;
    let study = sockets::run(opts.seed, hours, settings, &worker)?;
    println!(
        "== Extension: multi-process socket engine ({hours} clean hours, {} worker processes) ==",
        study.processes
    );
    let rows: Vec<Vec<String>> = study
        .hours
        .iter()
        .map(|h| {
            vec![
                h.hour.to_string(),
                h.iterations.to_string(),
                if h.converged { "yes" } else { "no" }.to_owned(),
                if h.bitwise_match { "yes" } else { "no" }.to_owned(),
                fmt(h.wan_seconds, 3),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &["hour", "iterations", "converged", "bitwise", "est WAN s"],
            &rows
        )
    );
    let r = &study.recovery;
    println!(
        "recovery scenario: {} SIGKILLs resolved, {} dead-node declarations, \
         {} reconnects, {} checkpoints, {} iterations recomputed, UFC delta {} $",
        r.crashes_resolved,
        r.dead_node_declarations,
        r.reconnects,
        r.checkpoints_taken,
        r.recomputed_iterations,
        fmt(r.ufc_delta_vs_clean, 6),
    );
    if !study.all_bitwise() {
        return Err("socket engine failed to reproduce the lockstep operating point".into());
    }
    println!("socket engine reproduced the lockstep operating point bit-for-bit in every run\n");
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "socket_sweep", &study.csv())?;
        println!("(csv written to {})", dir.display());
    }
    Ok(())
}

fn run_storage(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_experiments::storage;
    let hours = if opts.quick { 6 } else { opts.hours.min(24) };
    let study = storage::run(opts.seed, hours, settings, storage::default_fleet())?;
    println!("== Extension: battery storage + ramp limits (5-block schedule, {hours} hours) ==");
    let rows: Vec<Vec<String>> = study
        .hours
        .iter()
        .map(|h| {
            vec![
                h.hour.to_string(),
                fmt(h.baseline_ufc, 2),
                fmt(h.storage_ufc, 2),
                fmt(h.net_discharge_mwh, 3),
                fmt(h.mean_charge_mwh, 3),
                h.iterations.to_string(),
                if h.bitwise { "yes" } else { "no" }.to_owned(),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &[
                "hour",
                "spatial UFC $",
                "5-block UFC $",
                "net discharge MWh",
                "mean charge MWh",
                "iters",
                "bitwise"
            ],
            &rows
        )
    );
    let summary = vec![
        vec![
            "total spatial-only UFC $".to_owned(),
            fmt(study.total_baseline_ufc(), 2),
        ],
        vec![
            "total 5-block UFC $".to_owned(),
            fmt(study.total_storage_ufc(), 2),
        ],
        vec!["UFC improvement".to_owned(), pct(study.improvement())],
        vec![
            "charge-adjusted improvement".to_owned(),
            pct(study.adjusted_improvement()),
        ],
        vec![
            "net stored-energy value $".to_owned(),
            fmt(study.charge_delta_value(), 2),
        ],
    ];
    println!("{}", text_table(&["metric", "value"], &summary));
    if !study.all_converged() {
        return Err("a storage-study solve failed to converge".into());
    }
    if !study.all_bitwise() {
        return Err("lockstep and threaded storage runs diverged bitwise".into());
    }
    println!("lockstep and threaded engines agreed bit-for-bit in every hour\n");
    if let Some(dir) = &opts.csv_dir {
        write_csv(dir, "storage_horizon", &study.csv())?;
        println!("(csv written to {})", dir.display());
    }
    Ok(())
}

fn run_wsweep(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    let hours = opts.hours.min(48);
    let weights = [0.5, 2.0, 5.0, 10.0, 25.0, 60.0, 150.0];
    let pts = sweep::sweep_latency_weight(opts.seed, hours, settings, &weights)?;
    println!("== Extension: latency-weight sweep ({hours} hours, Hybrid) ==");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                fmt(p.weight, 1),
                fmt(1e3 * p.avg_latency_s, 2),
                fmt(p.avg_cost, 0),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(&["w $/s²", "mean latency ms", "mean hourly cost $"], &rows)
    );
    println!("(the paper fixes w = 10; the sweep shows the Pareto front that choice sits on)\n");
    Ok(())
}

fn run_bench(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_experiments::solver_bench;

    // `--quick` is the CI smoke configuration; the full run times a day's
    // worth of hourly instances and the full size trajectory.
    let hours = if opts.quick { 3 } else { opts.hours.min(24) };
    let sizes = if opts.quick {
        solver_bench::QUICK_TRAJECTORY
    } else {
        solver_bench::TRAJECTORY
    };
    let mut report = solver_bench::run(opts.seed, hours, opts.threads, sizes)?;
    report.socket = solver_bench::socket_latency(opts.seed)?;
    println!(
        "== Solver bench: admg_scaling, {} hours, {} threads ==",
        report.hours, report.parallel.threads
    );
    let rows = vec![
        vec![
            "baseline (1 thread, no cache)".to_owned(),
            fmt(report.baseline.wall_ms, 1),
            report.baseline.iters.to_string(),
        ],
        vec![
            "cached (1 thread)".to_owned(),
            fmt(report.sequential.wall_ms, 1),
            report.sequential.iters.to_string(),
        ],
        vec![
            format!("cached ({} threads)", report.parallel.threads),
            fmt(report.parallel.wall_ms, 1),
            report.parallel.iters.to_string(),
        ],
    ];
    println!(
        "{}",
        text_table(&["configuration", "wall ms", "iterations"], &rows)
    );
    println!(
        "speedup vs baseline: {:.2}x parallel, {:.2}x sequential",
        report.speedup(),
        report.sequential_speedup()
    );
    if !report.sizes.is_empty() {
        let rows: Vec<Vec<String>> = report
            .sizes
            .iter()
            .map(|leg| {
                vec![
                    format!("{}x{}", leg.frontends, leg.datacenters),
                    fmt(leg.wall_ms, 1),
                    leg.iters.to_string(),
                    fmt(leg.per_iter_ms(), 3),
                    leg.dense_wall_ms
                        .map_or("intractable".to_owned(), |d| fmt(d, 1)),
                    leg.dense_speedup()
                        .map_or("-".to_owned(), |s| format!("{s:.2}x")),
                ]
            })
            .collect();
        println!(
            "{}",
            text_table(
                &[
                    "size (FE x DC)",
                    "fast wall ms",
                    "iters",
                    "ms/iter",
                    "dense wall ms",
                    "rank-1 speedup"
                ],
                &rows
            )
        );
    }
    match &report.socket {
        Some(s) => println!(
            "socket engine: {:.3} ms/iter vs {:.3} ms/iter threaded ({:.2}x overhead, {} iters)",
            s.socket_per_iter_ms(),
            s.threaded_per_iter_ms(),
            s.overhead(),
            s.iterations
        ),
        None => println!("socket engine: skipped (ufc-node worker binary not found)"),
    }
    let path = PathBuf::from("BENCH_solver.json");
    std::fs::write(&path, report.to_json())?;
    println!("(written to {})\n", path.display());
    if let Some(floor) = opts.min_speedup {
        let speedup = report.speedup();
        if speedup < floor {
            return Err(format!(
                "bench regression: speedup {speedup:.2}x is below the --min-speedup floor {floor:.2}x"
            )
            .into());
        }
        println!("speedup {speedup:.2}x clears the --min-speedup floor {floor:.2}x\n");
    }
    Ok(())
}

fn run_trace(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_experiments::trace;

    let engine = trace::TraceEngine::parse(&opts.engine).ok_or_else(|| {
        format!(
            "unknown --engine {:?} (expected inprocess|lockstep|threaded|faulty|corrupt|sockets)",
            opts.engine
        )
    })?;
    let out = trace::run(opts.seed, opts.threads, engine)?;
    // JSON lines go to stdout, everything human-facing to stderr, so the
    // trace pipes cleanly into `jq` and friends.
    for line in &out.lines {
        println!("{line}");
    }
    eprintln!(
        "trace: engine={} iterations={} converged={} lines={}",
        engine.name(),
        out.iterations,
        out.converged,
        out.lines.len()
    );
    if opts.check {
        trace::check(&out).map_err(|e| format!("trace check failed: {e}"))?;
        eprintln!("trace: check passed");
    }
    Ok(())
}

fn run_verify(opts: &Options, settings: AdmgSettings) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_core::{centralized, AdmgSolver, Strategy};
    use ufc_distsim::{DistributedAdmg, Runtime};
    use ufc_model::scenario::ScenarioBuilder;

    let hours = opts.hours.min(3);
    let scenario = ScenarioBuilder::paper_default()
        .seed(opts.seed)
        .hours(hours)
        .build()?;
    println!("== Self-test: three solution paths on {hours} hourly instances ==");
    let solver = AdmgSolver::new(settings);
    let dist = DistributedAdmg::new(settings);
    let mut rows = Vec::new();
    let mut ok = true;
    for (t, inst) in scenario.instances.iter().enumerate() {
        let mem = solver.solve(inst, Strategy::Hybrid)?;
        let net = dist.run(inst, Strategy::Hybrid, Runtime::Threaded)?;
        let cen = centralized::solve(inst, Strategy::Hybrid, centralized::Backend::Admm)?;
        let scale = cen.breakdown.ufc().abs().max(1.0);
        let gap_mc = (mem.breakdown.ufc() - cen.breakdown.ufc()).abs() / scale;
        let gap_md = (mem.breakdown.ufc() - net.breakdown.ufc()).abs() / scale;
        let pass =
            mem.converged && gap_mc < 5e-3 && gap_md < 1e-9 && mem.iterations == net.iterations;
        ok &= pass;
        rows.push(vec![
            t.to_string(),
            fmt(cen.breakdown.ufc(), 2),
            fmt(mem.breakdown.ufc(), 2),
            mem.iterations.to_string(),
            format!("{:.2e}", gap_mc),
            format!("{:.1e}", gap_md),
            if pass {
                "PASS".to_owned()
            } else {
                "FAIL".to_owned()
            },
        ]);
    }
    println!(
        "{}",
        text_table(
            &[
                "hour",
                "centralized UFC",
                "ADM-G UFC",
                "iters",
                "gap(central)",
                "gap(distributed)",
                "status"
            ],
            &rows
        )
    );
    if !ok {
        return Err("self-test failed".into());
    }
    println!("all paths agree.\n");
    Ok(())
}

fn run_fuzz(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    use ufc_experiments::{fuzz, sockets};

    let cases = opts.cases.unwrap_or(if opts.quick { 60 } else { 500 });
    // Socket legs need the ufc-node worker binary; skip them (they are a
    // sampled subset anyway) when it is not built next to us.
    let worker = sockets::locate_worker().ok();
    println!(
        "== Differential fuzzing: corpus {} + {cases} generated cases, seed {} ==",
        opts.corpus.display(),
        opts.seed
    );
    if worker.is_none() {
        println!("(ufc-node worker not found; socket legs skipped)");
    }
    let report = fuzz::run_with(
        opts.seed,
        cases,
        &opts.corpus,
        worker.as_deref(),
        opts.mutate_corpus,
        opts.faults,
    )?;
    println!(
        "corpus replayed: {}  generated: {}  solved: {}  rejected: {}  socket runs: {}",
        report.corpus_replayed,
        report.generated,
        report.solved,
        report.rejected,
        report.socket_runs
    );
    println!(
        "faulty legs: {}  corrupt legs: {}  corpus mutants: {}",
        report.faulty_runs, report.corrupt_runs, report.mutated
    );
    if report.failures.is_empty() {
        println!("no divergences.\n");
        return Ok(());
    }
    for f in &report.failures {
        eprintln!("FAIL [{}] {}: {}", f.kind, f.label, f.message);
        if let Some(path) = &f.reproducer {
            eprintln!("  reproducer: {}", path.display());
        }
    }
    Err(format!("fuzzing found {} divergence(s)", report.failures.len()).into())
}

fn print_sweep(s: &sweep::Sweep, label: &str) {
    let rows: Vec<Vec<String>> = s
        .points
        .iter()
        .map(|p| {
            vec![
                fmt(p.value, 0),
                pct(p.avg_improvement),
                pct(p.avg_utilization),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(&[label, "avg UFC improvement", "avg utilization"], &rows)
    );
}
