//! `ufc-node` — a worker process of the multi-process socket runtime.
//!
//! Spawned by the socket engine's coordinator
//! (`ufc_distsim::DistributedAdmg::run_sockets`), one per process slot:
//!
//! ```text
//! ufc-node --connect 127.0.0.1:PORT --process P --session S \
//!     [--incarnation I] [--auth-key HEX]
//! ```
//!
//! The process connects to the coordinator, rebuilds its hosted node
//! kernels from the handshake's run configuration, and serves ADM-G
//! commands until the run finishes. With `--auth-key` (64 hex chars) the
//! worker answers the coordinator's challenge with a keyed MAC before any
//! iteration state is exchanged. All protocol logic lives in
//! `ufc_distsim::worker::run_worker`; this binary only parses the flags.

use std::process::ExitCode;

use ufc_distsim::worker::run_worker;
use ufc_distsim::AuthKey;

struct Args {
    connect: String,
    process: usize,
    session: u64,
    incarnation: u32,
    auth: Option<AuthKey>,
}

fn parse_args() -> Result<Args, String> {
    let mut connect = None;
    let mut process = None;
    let mut session = None;
    let mut incarnation = 0u32;
    let mut auth = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--process" => {
                let v = value("--process")?;
                process = Some(
                    v.parse()
                        .map_err(|_| format!("bad --process value {v:?}"))?,
                );
            }
            "--session" => {
                let v = value("--session")?;
                session = Some(
                    v.parse()
                        .map_err(|_| format!("bad --session value {v:?}"))?,
                );
            }
            "--incarnation" => {
                let v = value("--incarnation")?;
                incarnation = v
                    .parse()
                    .map_err(|_| format!("bad --incarnation value {v:?}"))?;
            }
            "--auth-key" => {
                let v = value("--auth-key")?;
                auth = Some(AuthKey::from_hex(&v).map_err(|e| format!("bad --auth-key: {e}"))?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Args {
        connect: connect.ok_or("missing --connect")?,
        process: process.ok_or("missing --process")?,
        session: session.ok_or("missing --session")?,
        incarnation,
        auth,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ufc-node: {e}");
            eprintln!(
                "usage: ufc-node --connect HOST:PORT --process P --session S \
                 [--incarnation I] [--auth-key HEX]"
            );
            return ExitCode::FAILURE;
        }
    };
    match run_worker(
        &args.connect,
        args.process,
        args.session,
        args.incarnation,
        args.auth.as_ref(),
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ufc-node[{}]: {e}", args.process);
            ExitCode::FAILURE
        }
    }
}
