//! Fault-tolerance study.
//!
//! The paper's protocol (§III) is analyzed failure-free; this extension
//! quantifies what geo-distributed reality costs it. Every hour is re-run
//! under seeded random [`FaultPlan`]s at increasing crash rates — node
//! crashes recovered from checkpoints, permanent crashes answered by
//! degraded-mode eviction — and the achieved UFC is compared with the
//! clean run. The measurement mirrors the loss study: recoverable faults
//! are *result-free* (checkpoint replay is bit-faithful) and only evictions
//! move the objective, by an amount the [`FaultStudy`] reports per rate.

use ufc_core::{AdmgSettings, CoreError, Result, Strategy};
use ufc_distsim::{DistributedAdmg, FaultPlan, Runtime};
use ufc_model::scenario::ScenarioBuilder;
use ufc_traces::csv::Csv;

use crate::parallel::{default_threads, par_map};

/// Per-datacenter crash probabilities swept by the study.
pub const CRASH_RATES: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

/// Straggler probability per node (fixed across the sweep).
pub const STRAGGLER_RATE: f64 = 0.2;

/// Crash iterations are drawn from `[1, HORIZON]` — early enough that a
/// scheduled crash almost always fires before convergence.
pub const HORIZON: usize = 15;

/// Aggregate over all hours at one crash rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPoint {
    /// Per-datacenter crash probability.
    pub crash_rate: f64,
    /// Hours attempted.
    pub hours_attempted: usize,
    /// Hours that completed (converged or hit the iteration cap).
    pub hours_completed: usize,
    /// Hours aborted with an unrecoverable `NodeFailure`.
    pub hours_aborted: usize,
    /// Crash events scheduled by the plans.
    pub crashes_scheduled: usize,
    /// Crash events that actually fired before the run finished.
    pub crashes_observed: usize,
    /// Datacenter evictions (degraded-mode transitions).
    pub evictions: usize,
    /// Evicted datacenters later readmitted.
    pub readmissions: usize,
    /// Total checkpoint rounds taken.
    pub checkpoints: usize,
    /// Total iterations recomputed during checkpoint-restart replay.
    pub recomputed_iterations: usize,
    /// Total modeled downtime across completed hours (s).
    pub downtime_s: f64,
    /// Mean |UFC delta| vs the clean run, relative (fraction).
    pub mean_abs_ufc_delta: f64,
    /// Worst |UFC delta| vs the clean run, relative (fraction).
    pub max_abs_ufc_delta: f64,
}

/// The full study result.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStudy {
    /// One aggregate per swept crash rate.
    pub points: Vec<FaultPoint>,
}

/// One hour's outcome (internal).
enum HourOutcome {
    Completed {
        scheduled: usize,
        report: ufc_distsim::FaultReport,
        rel_delta: f64,
    },
    Aborted {
        scheduled: usize,
    },
}

/// Runs the sweep over `hours` hourly instances at every [`CRASH_RATES`]
/// entry. Unrecoverable failures (a permanently dead front-end, losing the
/// last datacenter) abort only their own hour and are tallied, not
/// propagated.
///
/// # Errors
///
/// Scenario construction or clean-run solver failures.
pub fn run(seed: u64, hours: usize, settings: AdmgSettings) -> Result<FaultStudy> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()
        .map_err(CoreError::Model)?;
    let runner = DistributedAdmg::try_new(settings)?;
    let hour_ids: Vec<usize> = (0..scenario.instances.len()).collect();

    let mut points = Vec::with_capacity(CRASH_RATES.len());
    for (r, &rate) in CRASH_RATES.iter().enumerate() {
        let outcomes = par_map(&hour_ids, default_threads(), |_, &t| {
            let inst = &scenario.instances[t];
            // One independent, reproducible plan per (rate, hour).
            let plan_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((r * hours + t) as u64);
            let plan = FaultPlan::random(
                plan_seed,
                inst.m_frontends(),
                inst.n_datacenters(),
                HORIZON,
                rate,
                STRAGGLER_RATE,
            );
            let scheduled = plan.crash_count();
            match runner.run_faulty(inst, Strategy::Hybrid, Runtime::Lockstep, plan) {
                Ok(report) => {
                    let fault = report.fault.unwrap_or_default();
                    let clean_ufc = report.breakdown.ufc() - fault.ufc_delta_vs_clean;
                    let rel_delta = fault.ufc_delta_vs_clean.abs() / clean_ufc.abs().max(1.0);
                    Ok(HourOutcome::Completed {
                        scheduled,
                        report: fault,
                        rel_delta,
                    })
                }
                Err(CoreError::NodeFailure { .. }) => Ok(HourOutcome::Aborted { scheduled }),
                Err(e) => Err(e),
            }
        });

        let mut point = FaultPoint {
            crash_rate: rate,
            hours_attempted: hour_ids.len(),
            hours_completed: 0,
            hours_aborted: 0,
            crashes_scheduled: 0,
            crashes_observed: 0,
            evictions: 0,
            readmissions: 0,
            checkpoints: 0,
            recomputed_iterations: 0,
            downtime_s: 0.0,
            mean_abs_ufc_delta: 0.0,
            max_abs_ufc_delta: 0.0,
        };
        let mut delta_sum = 0.0;
        for outcome in outcomes {
            match outcome? {
                HourOutcome::Completed {
                    scheduled,
                    report,
                    rel_delta,
                } => {
                    point.hours_completed += 1;
                    point.crashes_scheduled += scheduled;
                    point.crashes_observed += report.crashes_observed;
                    point.evictions += report.evicted.len();
                    point.readmissions += report.readmitted.len();
                    point.checkpoints += report.checkpoints_taken;
                    point.recomputed_iterations += report.recomputed_iterations;
                    point.downtime_s += report.downtime_seconds;
                    delta_sum += rel_delta;
                    point.max_abs_ufc_delta = point.max_abs_ufc_delta.max(rel_delta);
                }
                HourOutcome::Aborted { scheduled } => {
                    point.hours_aborted += 1;
                    point.crashes_scheduled += scheduled;
                }
            }
        }
        point.mean_abs_ufc_delta = delta_sum / point.hours_completed.max(1) as f64;
        points.push(point);
    }
    Ok(FaultStudy { points })
}

impl FaultStudy {
    /// Fraction of hours that completed at the highest swept crash rate.
    #[must_use]
    pub fn worst_completion_rate(&self) -> f64 {
        self.points.last().map_or(1.0, |p| {
            p.hours_completed as f64 / p.hours_attempted.max(1) as f64
        })
    }

    /// CSV with one row per crash rate.
    #[must_use]
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new(&[
            "crash_rate",
            "hours_completed",
            "hours_aborted",
            "crashes_observed",
            "evictions",
            "readmissions",
            "recomputed_iterations",
            "downtime_s",
            "mean_abs_ufc_delta_pct",
            "max_abs_ufc_delta_pct",
        ]);
        for p in &self.points {
            csv.push_row(&[
                p.crash_rate,
                p.hours_completed as f64,
                p.hours_aborted as f64,
                p.crashes_observed as f64,
                p.evictions as f64,
                p.readmissions as f64,
                p.recomputed_iterations as f64,
                p.downtime_s,
                100.0 * p.mean_abs_ufc_delta,
                100.0 * p.max_abs_ufc_delta,
            ]);
        }
        csv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_scales_with_crash_rate() {
        let study = run(crate::DEFAULT_SEED, 4, AdmgSettings::default()).unwrap();
        assert_eq!(study.points.len(), CRASH_RATES.len());

        let calm = &study.points[0];
        assert_eq!(calm.crash_rate, 0.0);
        assert_eq!(calm.crashes_scheduled, 0);
        assert_eq!(calm.hours_completed, calm.hours_attempted);
        assert_eq!(calm.mean_abs_ufc_delta, 0.0);

        let stormy = study.points.last().unwrap();
        assert!(
            stormy.crashes_scheduled > 0,
            "0.5 rate must schedule crashes"
        );
        assert!(stormy.crashes_observed <= stormy.crashes_scheduled);
        assert_eq!(
            stormy.hours_completed + stormy.hours_aborted,
            stormy.hours_attempted
        );
        // Observed crashes imply modeled downtime, and vice versa.
        assert_eq!(stormy.crashes_observed > 0, stormy.downtime_s > 0.0);
    }
}
