//! `repro storage` — the temporal-coupling study of the 5th ADM-G block:
//! per-datacenter batteries plus fuel-cell ramp limits, driven over the
//! 24-hour trace by a receding-horizon loop.
//!
//! Each hour the loop freezes the fleet's charge state and the previous
//! hour's fuel-cell output into [`StorageParams`], attaches them to the
//! hourly instance (which switches the solver onto the 5-block
//! [`ufc_core::BlockSchedule`]), solves, and advances
//! `b_j(t+1) = b_j(t) − d_j·h` / `μ_prev ← μ`. The opportunity value
//! `κ_j` is set to datacenter `j`'s *mean* grid price over the horizon, so
//! the myopic hourly solve charges when power is cheap and discharges when
//! it is dear — the arbitrage a look-ahead controller would extract.
//! Hour 0's ramp anchor is the hour-0 spatial-only optimum, not 0 MW — a
//! running plant has an operating point before the horizon starts.
//!
//! Every hour is solved three ways: the plain instance in-process (the
//! spatial-only baseline), and the storage instance on both the lockstep
//! and the supervised threaded engine, which must agree **bit for bit**
//! (the study fails loudly if they do not). The headline metric is the
//! horizon-total UFC improvement over the baseline, both raw and adjusted
//! for the battery's net change in stored energy (valued at `κ_j`, so a
//! run cannot look good by merely draining its batteries).

use ufc_core::{AdmgSettings, AdmgSolver, CoreError, Result, Strategy};
use ufc_distsim::{DistRunReport, DistributedAdmg, Runtime};
use ufc_model::scenario::ScenarioBuilder;
use ufc_model::{StorageFleet, StorageParams};
use ufc_traces::csv::Csv;

/// The study's default battery fleet: 4 MWh / 2 MW per datacenter (half a
/// peak-hour of demand), starting half charged, with a mild quadratic wear
/// cost and a 2.5 MW/h fuel-cell ramp limit. The ramp is genuinely active
/// at this setting (on its own it *costs* ≈0.25% of UFC — slow fuel cells
/// cannot follow hourly price crossings), and the battery more than buys
/// that flexibility back. `value_per_mwh` is left 0 here — [`run`]
/// overrides it per datacenter with the mean grid price.
#[must_use]
pub fn default_fleet() -> StorageFleet {
    StorageFleet::new(4.0, 2.0)
        .initial_charge_frac(0.5)
        .degradation(0.5)
        .ramp_mw(2.5)
}

/// One receding-horizon hour of the study.
#[derive(Debug, Clone)]
pub struct StorageHour {
    /// Hour index.
    pub hour: usize,
    /// Spatial-only (no storage) Hybrid UFC ($).
    pub baseline_ufc: f64,
    /// 5-block Hybrid UFC ($) — degradation cost already deducted.
    pub storage_ufc: f64,
    /// Fleet-total net discharged energy this hour (MWh; negative while
    /// charging).
    pub net_discharge_mwh: f64,
    /// Mean state of charge across the fleet after the hour (MWh).
    pub mean_charge_mwh: f64,
    /// ADM-G iterations of the storage solve (lockstep == threaded).
    pub iterations: usize,
    /// Whether all three solves converged.
    pub converged: bool,
    /// Whether the lockstep and threaded engines agreed bit for bit
    /// (operating point, breakdown, iteration count, and traffic).
    pub bitwise: bool,
}

/// The full receding-horizon study.
#[derive(Debug, Clone)]
pub struct StorageStudy {
    /// One record per hour of the horizon.
    pub hours: Vec<StorageHour>,
    /// The per-datacenter opportunity value κ used ($/MWh = mean grid
    /// price over the horizon).
    pub kappa: Vec<f64>,
    /// Initial per-datacenter charge (MWh).
    pub initial_charge_mwh: Vec<f64>,
    /// Final per-datacenter charge (MWh).
    pub final_charge_mwh: Vec<f64>,
}

impl StorageStudy {
    /// Horizon-total spatial-only UFC ($).
    #[must_use]
    pub fn total_baseline_ufc(&self) -> f64 {
        self.hours.iter().map(|h| h.baseline_ufc).sum()
    }

    /// Horizon-total 5-block UFC ($).
    #[must_use]
    pub fn total_storage_ufc(&self) -> f64 {
        self.hours.iter().map(|h| h.storage_ufc).sum()
    }

    /// The value of the fleet's net change in stored energy over the
    /// horizon, at κ: positive when the batteries end fuller than they
    /// started.
    #[must_use]
    pub fn charge_delta_value(&self) -> f64 {
        self.kappa
            .iter()
            .zip(self.final_charge_mwh.iter().zip(&self.initial_charge_mwh))
            .map(|(k, (fin, init))| k * (fin - init))
            .sum()
    }

    /// Raw UFC improvement of the 5-block run over the spatial-only
    /// baseline, as a fraction of the baseline magnitude.
    #[must_use]
    pub fn improvement(&self) -> f64 {
        let base = self.total_baseline_ufc();
        (self.total_storage_ufc() - base) / base.abs().max(1.0)
    }

    /// Charge-adjusted improvement: the raw improvement with the net
    /// stored-energy delta credited/charged at κ, so draining the
    /// batteries does not count as profit.
    #[must_use]
    pub fn adjusted_improvement(&self) -> f64 {
        let base = self.total_baseline_ufc();
        (self.total_storage_ufc() + self.charge_delta_value() - base) / base.abs().max(1.0)
    }

    /// Whether every hour's lockstep and threaded runs agreed bit for bit.
    #[must_use]
    pub fn all_bitwise(&self) -> bool {
        self.hours.iter().all(|h| h.bitwise)
    }

    /// Whether every solve of every hour converged.
    #[must_use]
    pub fn all_converged(&self) -> bool {
        self.hours.iter().all(|h| h.converged)
    }

    /// CSV of the hourly trajectory (the study's figure data).
    #[must_use]
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new(&[
            "hour",
            "baseline_ufc",
            "storage_ufc",
            "net_discharge_mwh",
            "mean_charge_mwh",
            "iterations",
        ]);
        for h in &self.hours {
            csv.push_row(&[
                h.hour as f64,
                h.baseline_ufc,
                h.storage_ufc,
                h.net_discharge_mwh,
                h.mean_charge_mwh,
                h.iterations as f64,
            ]);
        }
        csv
    }
}

fn bits_of(values: impl IntoIterator<Item = f64>) -> Vec<u64> {
    values.into_iter().map(f64::to_bits).collect()
}

/// Every bit-compared facet of one distributed run: the full operating
/// point (λ, μ, ν, d), the UFC breakdown, and the iteration count.
fn report_bits(report: &DistRunReport) -> (Vec<u64>, usize) {
    let p = &report.point;
    let b = &report.breakdown;
    let mut bits = bits_of(p.lambda.iter().flatten().copied());
    bits.extend(bits_of(p.mu.iter().copied()));
    bits.extend(bits_of(p.nu.iter().copied()));
    bits.extend(bits_of(p.d.iter().copied()));
    bits.extend(bits_of([
        b.utility_dollars,
        b.energy_cost_dollars,
        b.carbon_cost_dollars,
        b.queueing_cost_dollars,
        b.storage_mwh,
        b.storage_cost_dollars,
        b.ufc(),
    ]));
    (bits, report.iterations)
}

/// Runs the receding-horizon storage study over `hours` hours of the
/// trace-driven scenario.
///
/// # Errors
///
/// Scenario construction, storage-parameter validation, or solver
/// failures.
pub fn run(
    seed: u64,
    hours: usize,
    settings: AdmgSettings,
    fleet: StorageFleet,
) -> Result<StorageStudy> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()
        .map_err(CoreError::Model)?;
    let n = scenario.instances[0].n_datacenters();

    // κ_j = datacenter j's mean grid price over the horizon: the price
    // level the battery arbitrages around.
    let mut kappa = vec![0.0; n];
    for inst in &scenario.instances {
        for (k, &p) in kappa.iter_mut().zip(&inst.grid_price) {
            *k += p / scenario.instances.len() as f64;
        }
    }

    let solver = AdmgSolver::new(settings);
    let dist = DistributedAdmg::new(settings);
    let mut charge = vec![fleet.initial_charge_frac * fleet.capacity_mwh; n];
    let initial_charge_mwh = charge.clone();
    let mut mu_prev = vec![0.0; n];
    let mut out_hours = Vec::with_capacity(scenario.instances.len());

    for (t, inst) in scenario.instances.iter().enumerate() {
        let baseline = solver.solve(inst, Strategy::Hybrid)?;
        if t == 0 {
            // Anchor the ramp at the hour-0 spatial optimum: a running
            // plant has an operating point before the horizon starts, and
            // ramping the fuel cells up from an artificial 0 MW would
            // charge the 5-block run a cold-start penalty the baseline
            // never pays.
            for (prev, (&mu, &cap)) in mu_prev
                .iter_mut()
                .zip(baseline.point.mu.iter().zip(&inst.mu_max))
            {
                *prev = mu.clamp(0.0, cap);
            }
        }

        let mut params: StorageParams = fleet.params(charge.clone(), mu_prev.clone());
        params.value_per_mwh.clone_from(&kappa);
        let sinst = inst
            .clone()
            .with_storage(params)
            .map_err(CoreError::Model)?;

        let lockstep = dist.run(&sinst, Strategy::Hybrid, Runtime::Lockstep)?;
        let threaded = dist.run(&sinst, Strategy::Hybrid, Runtime::Threaded)?;
        let bitwise =
            report_bits(&lockstep) == report_bits(&threaded) && lockstep.stats == threaded.stats;

        let h = sinst.slot_hours;
        let mut net_discharge = 0.0;
        for j in 0..n {
            net_discharge += lockstep.point.d[j] * h;
            // FP-safe advance: d sits in the discharge box by construction,
            // so the clamp only shaves round-off at the rails.
            charge[j] = (charge[j] - lockstep.point.d[j] * h).clamp(0.0, fleet.capacity_mwh);
            mu_prev[j] = lockstep.point.mu[j].clamp(0.0, inst.mu_max[j]);
        }

        out_hours.push(StorageHour {
            hour: t,
            baseline_ufc: baseline.breakdown.ufc(),
            storage_ufc: lockstep.breakdown.ufc(),
            net_discharge_mwh: net_discharge,
            mean_charge_mwh: charge.iter().sum::<f64>() / n as f64,
            iterations: lockstep.iterations,
            converged: baseline.converged && lockstep.converged && threaded.converged,
            bitwise,
        });
    }

    Ok(StorageStudy {
        hours: out_hours,
        kappa,
        initial_charge_mwh,
        final_charge_mwh: charge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared 24-hour study (the `repro storage` configuration).
    fn study() -> &'static StorageStudy {
        use std::sync::OnceLock;
        static CELL: OnceLock<StorageStudy> = OnceLock::new();
        CELL.get_or_init(|| {
            run(
                crate::DEFAULT_SEED,
                24,
                AdmgSettings::default(),
                default_fleet(),
            )
            .unwrap()
        })
    }

    #[test]
    fn converges_and_engines_agree_bitwise_every_hour() {
        let s = study();
        assert!(s.all_converged());
        assert!(s.all_bitwise(), "lockstep and threaded runs diverged");
    }

    #[test]
    fn storage_improves_ufc_even_charge_adjusted() {
        let s = study();
        assert!(
            s.improvement() > 0.0,
            "raw improvement {} not positive",
            s.improvement()
        );
        assert!(
            s.adjusted_improvement() > 0.0,
            "charge-adjusted improvement {} not positive",
            s.adjusted_improvement()
        );
    }

    #[test]
    fn batteries_actually_cycle() {
        let s = study();
        assert!(
            s.hours.iter().any(|h| h.net_discharge_mwh > 1e-6),
            "the fleet never discharged"
        );
        assert!(
            s.hours.iter().any(|h| h.net_discharge_mwh < -1e-6),
            "the fleet never charged"
        );
        for (j, &c) in s.final_charge_mwh.iter().enumerate() {
            assert!(
                c.is_finite() && (0.0..=default_fleet().capacity_mwh).contains(&c),
                "dc {j}: final charge {c} left the battery"
            );
        }
    }

    #[test]
    fn zero_capacity_fleet_reproduces_the_baseline_bit_for_bit() {
        let s = run(
            crate::DEFAULT_SEED,
            3,
            AdmgSettings::default(),
            StorageFleet::new(0.0, 1.0),
        )
        .unwrap();
        for h in &s.hours {
            assert!(h.bitwise && h.converged);
            assert_eq!(
                h.storage_ufc.to_bits(),
                h.baseline_ufc.to_bits(),
                "hour {}: zero-capacity UFC diverged from spatial-only",
                h.hour
            );
            assert_eq!(h.net_discharge_mwh.to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn csv_has_one_row_per_hour() {
        let s = study();
        assert_eq!(s.csv().len(), s.hours.len());
    }
}
