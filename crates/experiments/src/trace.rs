//! `repro trace` — one telemetry-instrumented ADM-G run emitted as JSON
//! lines: one `"type":"iteration"` object per iteration (residuals,
//! objective, stop decision, per-phase wall-clock) followed by one
//! `"type":"summary"` object (the full `RunTelemetry` snapshot: phase
//! histograms plus solver/traffic/fault counters).
//!
//! The run itself is a plain solve with `AdmgSettings::telemetry` enabled —
//! telemetry is strictly observational, so the iterates are bit-identical
//! to an untraced run (see DESIGN.md §11). The module also carries a
//! dependency-free JSON well-formedness checker used by `--check` and CI.

use std::time::Duration;

use ufc_core::telemetry::RunTelemetry;
use ufc_core::{AdmgSettings, AdmgSolver, BlockSchedule, JsonlSink, Strategy};
use ufc_distsim::{CorruptionConfig, DistributedAdmg, FaultPlan, NodeId, Runtime, SocketOptions};
use ufc_model::scenario::ScenarioBuilder;

/// Which execution engine the trace drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEngine {
    /// The in-memory `AdmgSolver` (solver counters, no traffic).
    InProcess,
    /// The distributed lockstep engine (solver + traffic counters).
    Lockstep,
    /// The supervised threaded engine (traffic counters; the per-node
    /// kernels die with their worker threads, so solver counters read 0).
    Threaded,
    /// The lockstep engine under a scripted [`FaultPlan`] (solver +
    /// traffic + fault counters).
    Faulty,
    /// The lockstep engine under seeded payload corruption with CRC32
    /// verification on (solver + traffic + integrity counters).
    Corrupt,
    /// The multi-process socket engine under the
    /// [`crate::sockets::recovery_fault_plan`] script: real `SIGKILL`s and
    /// torn TCP connections (traffic + fault + integrity counters; the
    /// kernels live in worker processes, so solver counters read 0).
    Sockets,
}

impl TraceEngine {
    /// Parses the `--engine` flag value.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "inprocess" => Some(TraceEngine::InProcess),
            "lockstep" => Some(TraceEngine::Lockstep),
            "threaded" => Some(TraceEngine::Threaded),
            "faulty" => Some(TraceEngine::Faulty),
            "corrupt" => Some(TraceEngine::Corrupt),
            "sockets" => Some(TraceEngine::Sockets),
            _ => None,
        }
    }

    /// The flag spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceEngine::InProcess => "inprocess",
            TraceEngine::Lockstep => "lockstep",
            TraceEngine::Threaded => "threaded",
            TraceEngine::Faulty => "faulty",
            TraceEngine::Corrupt => "corrupt",
            TraceEngine::Sockets => "sockets",
        }
    }
}

/// A finished trace: the JSON lines (iterations, then the summary) plus the
/// structured snapshot they were rendered from.
#[derive(Debug)]
pub struct TraceOutput {
    /// The engine that ran.
    pub engine: TraceEngine,
    /// One JSON object per line: `iterations` iteration lines followed by
    /// one summary line.
    pub lines: Vec<String>,
    /// The structured telemetry snapshot behind the summary line.
    pub telemetry: RunTelemetry,
    /// Iterations the run performed.
    pub iterations: usize,
    /// Whether the run converged before the iteration cap.
    pub converged: bool,
}

/// The deterministic fault script the `faulty` trace engine runs under:
/// two recoverable crashes, one straggler, periodic checkpoints — enough
/// to make every fault counter move without slowing the trace down.
#[must_use]
pub fn trace_fault_plan() -> FaultPlan {
    FaultPlan::new()
        .with_phase_timeout(Duration::from_millis(10))
        .crash_and_recover(NodeId::Datacenter(0), 6, 1)
        .crash_and_recover(NodeId::Frontend(1), 10, 1)
        .straggle(NodeId::Datacenter(1), 8, Duration::from_millis(2))
}

/// Runs one Hybrid-strategy hour on the chosen engine with telemetry on,
/// streaming a [`JsonlSink`] and returning the collected lines.
///
/// # Errors
///
/// Scenario construction or solver failures.
pub fn run(
    seed: u64,
    threads: usize,
    engine: TraceEngine,
) -> Result<TraceOutput, Box<dyn std::error::Error>> {
    let settings = AdmgSettings::default()
        .with_threads(threads)
        .with_telemetry(true);
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(1)
        .build()?;
    let instance = &scenario.instances[0];
    let mut sink = JsonlSink::new(Vec::new());
    let (iterations, converged, telemetry) = match engine {
        TraceEngine::InProcess => {
            let sol =
                AdmgSolver::new(settings).solve_observed(instance, Strategy::Hybrid, &mut sink)?;
            (sol.iterations, sol.converged, sol.telemetry)
        }
        TraceEngine::Lockstep | TraceEngine::Threaded => {
            let runtime = if engine == TraceEngine::Lockstep {
                Runtime::Lockstep
            } else {
                Runtime::Threaded
            };
            let report = DistributedAdmg::new(settings).run_observed(
                instance,
                Strategy::Hybrid,
                runtime,
                &mut sink,
            )?;
            (report.iterations, report.converged, report.telemetry)
        }
        TraceEngine::Faulty => {
            let report = DistributedAdmg::new(settings).run_faulty_observed(
                instance,
                Strategy::Hybrid,
                Runtime::Lockstep,
                trace_fault_plan(),
                &mut sink,
            )?;
            (report.iterations, report.converged, report.telemetry)
        }
        TraceEngine::Corrupt => {
            // Rate 0.02 over tens of thousands of payloads: every seed
            // sees strikes, and every strike is caught by the checksum.
            let report = DistributedAdmg::new(settings.with_checksums(true)).run_corrupt_observed(
                instance,
                Strategy::Hybrid,
                Runtime::Lockstep,
                CorruptionConfig::new(0.02, seed),
                &mut sink,
            )?;
            (report.iterations, report.converged, report.telemetry)
        }
        TraceEngine::Sockets => {
            let options = SocketOptions::new(crate::sockets::locate_worker()?);
            let report = DistributedAdmg::new(settings).run_sockets_faulty_observed(
                instance,
                Strategy::Hybrid,
                &options,
                crate::sockets::recovery_fault_plan(),
                &mut sink,
            )?;
            (report.iterations, report.converged, report.telemetry)
        }
    };
    let telemetry = telemetry.ok_or("telemetry was enabled but not returned")?;
    let bytes = sink.finish()?;
    let mut lines: Vec<String> = String::from_utf8(bytes)?
        .lines()
        .map(str::to_owned)
        .collect();
    lines.push(telemetry.to_json());
    Ok(TraceOutput {
        engine,
        lines,
        telemetry,
        iterations,
        converged,
    })
}

/// Validates a finished trace: every line is well-formed JSON, the line
/// count matches the iteration count, every phase histogram saw every
/// iteration with non-zero total time, and the counter groups the engine
/// can observe all moved.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn check(out: &TraceOutput) -> Result<(), String> {
    for (idx, line) in out.lines.iter().enumerate() {
        validate_json(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
    }
    if out.lines.len() != out.iterations + 1 {
        return Err(format!(
            "expected {} iteration lines + 1 summary, got {} lines",
            out.iterations,
            out.lines.len()
        ));
    }
    let t = &out.telemetry;
    if t.iterations as usize != out.iterations {
        return Err(format!(
            "telemetry saw {} iterations, run reported {}",
            t.iterations, out.iterations
        ));
    }
    // The trace scenario carries no storage, so the driver runs the classic
    // schedule; its derived phase list is the source of truth for which
    // histograms must have seen every iteration.
    for phase in BlockSchedule::classic().phases() {
        if t.phase(phase).count() != t.iterations {
            return Err(format!(
                "phase {} recorded {} samples over {} iterations",
                phase.name(),
                t.phase(phase).count(),
                t.iterations
            ));
        }
    }
    if t.total_ns() == 0 {
        return Err("all phase timings are zero".to_owned());
    }
    // The threaded and socket engines host the kernels in worker threads /
    // processes, so the coordinator-side solver counters read 0.
    let solver_observable = !matches!(out.engine, TraceEngine::Threaded | TraceEngine::Sockets);
    if solver_observable {
        if t.solver.kkt_cache_hits + t.solver.kkt_cache_misses == 0 {
            return Err("KKT cache counters never moved".to_owned());
        }
        if t.solver.pool_maps == 0 {
            return Err("worker-pool counters never moved".to_owned());
        }
    }
    if out.engine == TraceEngine::InProcess {
        if t.traffic.is_some() {
            return Err("in-process run reported traffic counters".to_owned());
        }
    } else {
        let traffic = t.traffic.ok_or("distributed run lost traffic counters")?;
        if traffic.data_messages == 0 || traffic.control_messages == 0 {
            return Err("traffic counters never moved".to_owned());
        }
    }
    match out.engine {
        TraceEngine::Faulty => {
            let fault = t.fault.ok_or("faulty run lost fault counters")?;
            if fault.crashes_resolved == 0 {
                return Err("no crash was resolved".to_owned());
            }
            if fault.stragglers_observed == 0 {
                return Err("no straggler was charged".to_owned());
            }
            if fault.checkpoints_taken == 0 {
                return Err("no checkpoint was taken".to_owned());
            }
        }
        TraceEngine::Sockets => {
            let fault = t.fault.ok_or("socket run lost fault counters")?;
            if fault.crashes_resolved == 0 {
                return Err("no SIGKILL'd process was recovered".to_owned());
            }
            if fault.checkpoints_taken == 0 {
                return Err("no checkpoint was taken".to_owned());
            }
        }
        _ => {
            if t.fault.is_some() {
                return Err("clean run reported fault counters".to_owned());
            }
        }
    }
    match out.engine {
        TraceEngine::Corrupt => {
            let integrity = t.integrity.ok_or("corrupt run lost integrity counters")?;
            if integrity.corruptions_injected == 0 {
                return Err("no corruption was injected".to_owned());
            }
            if integrity.corruptions_delivered != 0 {
                return Err("a verified link delivered corrupt bytes".to_owned());
            }
            if integrity.checksum_retransmissions != integrity.corruptions_detected {
                return Err("every detection must trigger exactly one retransmit".to_owned());
            }
        }
        TraceEngine::Sockets => {
            let integrity = t.integrity.ok_or("socket run lost integrity counters")?;
            if integrity.dead_node_declarations == 0 {
                return Err("the deadline ladder never declared a dead node".to_owned());
            }
            if integrity.reconnects == 0 {
                return Err("no torn connection was re-established".to_owned());
            }
        }
        _ => {
            if t.integrity.is_some() {
                return Err("uncorrupted run reported integrity counters".to_owned());
            }
        }
    }
    Ok(())
}

/// Checks that `input` is exactly one well-formed JSON value (RFC 8259
/// grammar; no trailing garbage). Dependency-free: a ~hundred-line
/// recursive-descent walk, used by `repro trace --check` and the tests.
///
/// # Errors
///
/// A message naming the byte offset of the first syntax error.
pub fn validate_json(input: &str) -> Result<(), String> {
    let mut p = JsonCursor {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(())
}

struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl JsonCursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth > 128 {
            return Err("nesting too deep".to_owned());
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.depth += 1;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                                    return Err(format!("bad \\u escape at byte {}", self.pos));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn digits(&mut self) -> Result<(), String> {
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(format!("expected a digit at byte {}", self.pos));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0, or a nonzero digit run (no leading zeros).
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else {
            self.digits()?;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-0.5e+3",
            "{\"a\":[1,2,{\"b\":null}],\"c\":\"x\\n\\u00e9\"}",
            "  {\"nested\":{\"deep\":[true,false]}}  ",
        ] {
            assert!(validate_json(good).is_ok(), "{good}");
        }
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "01",
            "1.",
            "\"unterminated",
            "nul",
            "{} trailing",
            "{\"a\" 1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn engine_names_round_trip() {
        for engine in [
            TraceEngine::InProcess,
            TraceEngine::Lockstep,
            TraceEngine::Threaded,
            TraceEngine::Faulty,
            TraceEngine::Corrupt,
            TraceEngine::Sockets,
        ] {
            assert_eq!(TraceEngine::parse(engine.name()), Some(engine));
        }
        assert_eq!(TraceEngine::parse("warp"), None);
    }

    #[test]
    fn inprocess_trace_passes_check() {
        let out = run(7, 1, TraceEngine::InProcess).expect("trace runs");
        assert!(out.converged);
        check(&out).expect("trace invariants hold");
        assert!(out
            .lines
            .last()
            .expect("summary")
            .contains("\"type\":\"summary\""));
        assert!(out.lines[0].contains("\"type\":\"iteration\""));
    }

    #[test]
    fn corrupt_trace_moves_the_integrity_group() {
        let out = run(7, 1, TraceEngine::Corrupt).expect("trace runs");
        assert!(out.converged);
        check(&out).expect("trace invariants hold");
        let integrity = out.telemetry.integrity.expect("integrity counters");
        assert!(integrity.corruptions_injected > 0);
        assert!(out
            .lines
            .last()
            .expect("summary")
            .contains("\"integrity\":{"));
    }

    #[test]
    fn faulty_trace_moves_every_counter_group() {
        let out = run(7, 1, TraceEngine::Faulty).expect("trace runs");
        check(&out).expect("trace invariants hold");
        let t = &out.telemetry;
        assert!(t.traffic.expect("traffic").total_bytes > 0);
        let fault = t.fault.expect("fault counters");
        assert!(fault.crashes_resolved >= 2);
        assert_eq!(fault.stragglers_observed, 1);
    }
}
