//! Tiny scoped-thread map used to spread independent per-hour solves across
//! cores (the experiments are embarrassingly parallel over time slots).

/// Applies `f` to every item, splitting the index space across up to
/// `threads` scoped OS threads, and returns results in input order.
///
/// `f` must be `Sync` (it is called concurrently) and the item/result types
/// `Send`. Order is preserved regardless of scheduling.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker panics.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        // Split the result buffer into disjoint chunks, one per worker.
        let mut rest: &mut [Option<R>] = &mut results;
        let mut start = 0;
        let mut handles = Vec::new();
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let begin = start;
            start += take;
            let fref = &f;
            handles.push(scope.spawn(move || {
                for (off, slot) in head.iter_mut().enumerate() {
                    let idx = begin + off;
                    *slot = Some(fref(idx, &items[idx]));
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker left a hole"))
        .collect()
}

/// A sensible default worker count: the machine's parallelism, capped at 16.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, 7, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty() {
        let out = par_map(&[1, 2, 3], 1, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<i32> = vec![];
        let out: Vec<i32> = par_map(&empty, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(&[5], 16, |_, &x| x);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
