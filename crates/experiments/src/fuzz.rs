//! Differential fuzzing of the whole solver stack (`repro fuzz`).
//!
//! The pipeline is **generator → engines → oracles → shrinker**
//! (DESIGN.md §16):
//!
//! * the *generator* ([`ufc_model::generator`]) maps a seed to a whole
//!   candidate instance plus solver knobs, deliberately covering the
//!   degenerate corners (zero-demand front-ends, zero-capacity
//!   datacenters, `p₀` below/above/crossing every grid price,
//!   near-singular Hessians, infeasible totals);
//! * the *engines* solve each valid case on the in-process solver (with
//!   the sampled knob combination and again with reference knobs), the
//!   lockstep and threaded runtimes, and — on a sampled subset — the
//!   multi-process socket runtime;
//! * the *oracles* cross-check bit-identity between engines,
//!   tolerance-equality for the rank-1 KKT path, feasibility of the
//!   polished point, the centralized QP's UFC value, the generic
//!   matrix-form correction against the closed form, and that invalid
//!   inputs are rejected with the **same typed error everywhere**;
//! * the *shrinker* greedily simplifies any failing case (fewer
//!   front-ends/datacenters, no storage, plainer tariffs, default knobs)
//!   while the failure *kind* reproduces, and persists the minimal
//!   reproducer to the corpus under `tests/corpus/`.
//!
//! Every corpus file replays deterministically — the
//! `fuzz_corpus_replay` integration test re-checks each one on every
//! `cargo test`, so a fuzz finding can never regress silently.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ufc_core::{
    centralized, correction, generic, AdmgSettings, AdmgSolver, AdmgState, CoreError,
    HistoryRecorder, IterationRecord, Strategy,
};
use ufc_distsim::{CorruptionConfig, DistributedAdmg, FaultPlan, NodeId, Runtime, SocketOptions};
use ufc_model::generator::{arbitrary_params, InstanceParams, SplitMix64};
use ufc_model::{EmissionCostFn, StorageParams, UfcInstance};

/// Relative UFC tolerance for the tolerance-equal knobs: rank-1 KKT
/// (reorders floating-point work) and `cache = false` (cold starts shift
/// the warm-started iterate stream within solver tolerance).
const TOLERANT_REL_TOL: f64 = 1e-6;
/// Relative UFC tolerance against the centralized QP oracle (same gate as
/// `repro verify`).
const CENTRAL_REL_TOL: f64 = 5e-3;
/// Feasibility ceiling for the polished operating point.
const FEASIBILITY_TOL: f64 = 1e-6;
/// Component tolerance for the generic matrix-form correction oracle.
const GENERIC_TOL: f64 = 1e-9;
/// Per-iterate relative tolerance for the residual-trajectory cross-check
/// between the in-process history and a distributed engine's observed
/// stream. The engines run the same arithmetic in the same order, so any
/// drift past rounding is a real divergence, not float noise.
const RESIDUAL_REL_TOL: f64 = 1e-9;

/// One fully-specified fuzz case: candidate instance parameters plus the
/// sampled solver-knob combination. This is the unit of generation,
/// checking, shrinking, and corpus persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Candidate instance (possibly deliberately invalid).
    pub params: InstanceParams,
    /// Procurement strategy to solve.
    pub strategy: Strategy,
    /// Worker-thread count of the main leg (bit-identity knob).
    pub threads: usize,
    /// Factorization/warm-start caching (bit-identity knob).
    pub cache: bool,
    /// Rank-1 KKT updates (tolerance-equal knob).
    pub rank1_kkt: bool,
    /// Blocked factorization kernels (bit-identity knob).
    pub blocked: bool,
    /// Whether construction is expected to fail with a typed error.
    pub expect_reject: bool,
    /// Whether to also run the multi-process socket engine.
    pub socket: bool,
    /// Seed of the crash/recovery leg (`None` skips it): derives a
    /// deterministic recovering [`FaultPlan`] whose checkpoint restart
    /// must land back on the clean operating point bit-for-bit.
    pub fault_seed: Option<u64>,
    /// Seed of the corruption leg (`None` skips it): drives §12 value
    /// corruption through the verified posture (repair + bitwise-clean
    /// point, nothing delivered) and the unverified posture (lockstep and
    /// threaded agree on the outcome, errors stay in the typed
    /// corruption/divergence classes).
    pub corrupt_seed: Option<u64>,
}

/// What a clean case did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The instance built and every engine/oracle agreed on the solution.
    Solved,
    /// The instance (or configuration) was rejected with the same typed
    /// error everywhere.
    Rejected,
}

/// A cross-check failure: a stable `kind` (the shrinker keeps a
/// simplification only if the same kind reproduces) plus a full message.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Stable failure class, e.g. `engine-divergence`, `oracle-central`.
    pub kind: String,
    /// Human-readable description with the offending values.
    pub message: String,
}

fn fail(kind: &str, message: impl Into<String>) -> CaseFailure {
    CaseFailure {
        kind: kind.to_owned(),
        message: message.into(),
    }
}

/// Generates one fuzz case from a seed (pure and deterministic). The knob
/// stream is decorrelated from the instance stream so the same instance
/// shape appears under many knob combinations across seeds.
#[must_use]
pub fn arbitrary_case(seed: u64) -> FuzzCase {
    let params = arbitrary_params(seed);
    let mut rng = SplitMix64::new(seed ^ 0xA5A5_5A5A_0F0F_F0F0);
    let threads = [1usize, 2, 4][rng.below(3)];
    let cache = rng.chance(0.5);
    let rank1_kkt = rng.chance(0.3);
    let blocked = rng.chance(0.3);
    let strategy = {
        let r = rng.next_f64();
        if r < 0.6 {
            Strategy::Hybrid
        } else if r < 0.85 {
            Strategy::GridOnly
        } else {
            // Sampled even when fuel cells cannot cover peak demand: the
            // typed `Unsupported` rejection must then agree across engines.
            Strategy::FuelCellOnly
        }
    };
    let expect_reject = params.build().is_err();
    let socket = rng.chance(0.08);
    // Drawn last so every earlier seed keeps mapping to the exact case it
    // produced before these legs existed (corpus reproducer names stay
    // pinned to their seeds).
    let fault_seed = rng.chance(0.2).then(|| rng.next_u64());
    let corrupt_seed = rng.chance(0.2).then(|| rng.next_u64());
    FuzzCase {
        params,
        strategy,
        threads,
        cache,
        rank1_kkt,
        blocked,
        expect_reject,
        socket,
        fault_seed,
        corrupt_seed,
    }
}

fn settings_for(case: &FuzzCase) -> AdmgSettings {
    AdmgSettings::default()
        .with_threads(case.threads)
        .with_factorization_caching(case.cache)
        .with_rank1_kkt(case.rank1_kkt)
        .with_blocked_factorizations(case.blocked)
}

fn error_key(e: &CoreError) -> String {
    // Variant-level identity: engines must agree on *what* failed; the
    // NotConverged residual floats may differ in ulps between knob sets.
    match e {
        CoreError::NotConverged { .. } => "NotConverged".to_owned(),
        other => other.to_string(),
    }
}

fn rel_gap(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1.0)
}

/// Compares a distributed engine's observed per-iterate residuals (link,
/// balance, dual — the KKT quantities the stop rule max-reduces) against
/// the in-process solver's recorded history. The objective column is
/// excluded: distributed transports report it as `NaN` by contract.
fn check_residual_trajectory(
    name: &str,
    expected: &[IterationRecord],
    observed: &[IterationRecord],
) -> Result<(), CaseFailure> {
    if expected.len() != observed.len() {
        return Err(fail(
            "residual-divergence",
            format!(
                "{name} streamed {} iteration records, in-process recorded {}",
                observed.len(),
                expected.len()
            ),
        ));
    }
    for (e, o) in expected.iter().zip(observed) {
        for (label, x, y) in [
            ("link", e.link_residual, o.link_residual),
            ("balance", e.balance_residual, o.balance_residual),
            ("dual", e.dual_residual, o.dual_residual),
        ] {
            let diff = (x - y).abs();
            // Negated form so a NaN on either side fails the gate.
            let within = diff <= RESIDUAL_REL_TOL * x.abs().max(1.0);
            if !within {
                return Err(fail(
                    "residual-divergence",
                    format!(
                        "{name} iteration {}: {label} residual {y} drifts from in-process {x}",
                        e.iteration
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn pseudo_random_state(inst: &UfcInstance, rng: &mut SplitMix64) -> AdmgState {
    let mut s = AdmgState::zeros(inst);
    for v in s
        .lambda
        .iter_mut()
        .chain(s.mu.iter_mut())
        .chain(s.nu.iter_mut())
        .chain(s.d.iter_mut())
        .chain(s.a.iter_mut())
        .chain(s.phi.iter_mut())
        .chain(s.varphi.iter_mut())
    {
        *v = rng.uniform(-1.0, 1.0);
    }
    s
}

/// Runs every engine and oracle on one case.
///
/// `worker` is the `ufc-node` binary for the socket engine; `None` skips
/// socket legs (they are also skipped unless [`FuzzCase::socket`]).
///
/// # Errors
///
/// Returns a [`CaseFailure`] describing the first cross-check that broke.
#[allow(clippy::too_many_lines)] // linear checklist: one oracle per block
pub fn check_case(case: &FuzzCase, worker: Option<&Path>) -> Result<CaseOutcome, CaseFailure> {
    // --- Construction must be deterministic, and match the expectation.
    let first = case.params.build();
    let second = case.params.build();
    match (&first, &second) {
        (Ok(a), Ok(b)) if a == b => {}
        (Err(a), Err(b)) if a.to_string() == b.to_string() => {}
        (a, b) => {
            return Err(fail(
                "nondeterministic-build",
                format!("two builds of the same parameters disagree: {a:?} vs {b:?}"),
            ));
        }
    }
    let inst = match first {
        Ok(inst) => {
            if case.expect_reject {
                return Err(fail(
                    "expectation",
                    "case expects a typed rejection but the instance built",
                ));
            }
            inst
        }
        Err(e) => {
            if case.expect_reject {
                return Ok(CaseOutcome::Rejected);
            }
            return Err(fail(
                "expectation",
                format!("case expects a solution but construction failed: {e}"),
            ));
        }
    };

    let main_settings = settings_for(case);
    // The bitwise knobs (threads, blocked) must not change a single bit;
    // the reference leg therefore shares the tolerance-class knobs
    // (cache, rank-1) and resets only the bitwise ones.
    let ref_settings = main_settings
        .with_threads(1)
        .with_blocked_factorizations(false);
    let mem = AdmgSolver::new(main_settings).solve(&inst, case.strategy);
    let reference = AdmgSolver::new(ref_settings).solve(&inst, case.strategy);

    let (mem, reference) = match (mem, reference) {
        (Ok(m), Ok(r)) => (m, r),
        (Err(a), Err(b)) => {
            if error_key(&a) != error_key(&b) {
                return Err(fail(
                    "error-divergence",
                    format!("knob sets reject differently: `{a}` vs `{b}`"),
                ));
            }
            // The distributed engines must reject with the same error.
            let dist = DistributedAdmg::new(main_settings);
            for (name, run) in [
                (
                    "lockstep",
                    dist.run(&inst, case.strategy, Runtime::Lockstep),
                ),
                (
                    "threaded",
                    dist.run(&inst, case.strategy, Runtime::Threaded),
                ),
            ] {
                match run {
                    Err(e) if error_key(&e) == error_key(&a) => {}
                    Err(e) => {
                        return Err(fail(
                            "error-divergence",
                            format!("{name} rejects with `{e}`, in-process with `{a}`"),
                        ));
                    }
                    Ok(_) => {
                        return Err(fail(
                            "error-divergence",
                            format!("{name} solves what the in-process engine rejects (`{a}`)"),
                        ));
                    }
                }
            }
            return Ok(CaseOutcome::Rejected);
        }
        (a, b) => {
            return Err(fail(
                "error-divergence",
                format!(
                    "knob sets disagree about solvability: main {:?} vs reference {:?}",
                    a.as_ref().map(|s| s.converged),
                    b.as_ref().map(|s| s.converged),
                ),
            ));
        }
    };

    // --- Knob contracts. Threads and blocked factorizations are bitwise
    // knobs: flipping them must not change a single bit.
    if mem.state != reference.state || mem.iterations != reference.iterations {
        return Err(fail(
            "knob-bitwise",
            format!(
                "threads={} blocked={} must be bit-identical to threads=1 blocked=false \
                 (iterations {} vs {})",
                case.threads, case.blocked, mem.iterations, reference.iterations
            ),
        ));
    }
    // Rank-1 KKT and cache=false are tolerance-equal to the default knobs
    // (both legitimately reorder/restart floating-point work).
    if case.rank1_kkt || !case.cache {
        match AdmgSolver::new(AdmgSettings::default()).solve(&inst, case.strategy) {
            Ok(default_run) => {
                let gap = rel_gap(mem.breakdown.ufc(), default_run.breakdown.ufc());
                if gap > TOLERANT_REL_TOL || mem.converged != default_run.converged {
                    return Err(fail(
                        "knob-tolerance",
                        format!(
                            "rank1={} cache={} drifts from defaults: UFC {} vs {} (rel \
                             {gap:e}), converged {} vs {}",
                            case.rank1_kkt,
                            case.cache,
                            mem.breakdown.ufc(),
                            default_run.breakdown.ufc(),
                            mem.converged,
                            default_run.converged
                        ),
                    ));
                }
            }
            Err(e) => {
                return Err(fail(
                    "knob-tolerance",
                    format!("default knobs reject (`{e}`) what rank1/cache knobs solve"),
                ));
            }
        }
    }

    // --- Engine bit-identity: lockstep and threaded runtimes, same knobs.
    // Each engine streams its per-iterate residuals through an observer,
    // so the whole KKT trajectory — not just the final point — is
    // cross-checked against the in-process history.
    let dist = DistributedAdmg::new(main_settings);
    for (name, runtime) in [
        ("lockstep", Runtime::Lockstep),
        ("threaded", Runtime::Threaded),
    ] {
        let mut recorder = HistoryRecorder::default();
        let rep = dist
            .run_observed(&inst, case.strategy, runtime, &mut recorder)
            .map_err(|e| {
                fail(
                    "engine-divergence",
                    format!("{name} fails (`{e}`) where the in-process engine solves"),
                )
            })?;
        if rep.iterations != mem.iterations
            || rep.point != mem.point
            || rep.converged != mem.converged
        {
            return Err(fail(
                "engine-divergence",
                format!(
                    "{name} disagrees with in-process: iterations {} vs {}, UFC {} vs {}",
                    rep.iterations,
                    mem.iterations,
                    rep.breakdown.ufc(),
                    mem.breakdown.ufc()
                ),
            ));
        }
        check_residual_trajectory(name, &mem.history, &recorder.into_history())?;
    }

    // --- Socket engine on the sampled subset.
    if case.socket {
        if let Some(worker) = worker {
            let rep = dist
                .run_sockets(&inst, case.strategy, &SocketOptions::new(worker))
                .map_err(|e| {
                    fail(
                        "engine-divergence",
                        format!("socket engine fails (`{e}`) where in-process solves"),
                    )
                })?;
            if rep.iterations != mem.iterations || rep.point != mem.point {
                return Err(fail(
                    "engine-divergence",
                    format!(
                        "socket engine disagrees with in-process: iterations {} vs {}, \
                         UFC {} vs {}",
                        rep.iterations,
                        mem.iterations,
                        rep.breakdown.ufc(),
                        mem.breakdown.ufc()
                    ),
                ));
            }
        }
    }

    // --- Crash/recovery leg: a deterministic recovering fault plan
    // derived from `fault_seed` crashes one node mid-run; the checkpoint
    // restart must land back on the clean operating point bit-for-bit on
    // both supervised runtimes. (A crash iteration past the run's length
    // simply never fires — the contract still holds trivially.)
    if let (Some(fseed), true) = (case.fault_seed, mem.converged) {
        let mut frng = SplitMix64::new(fseed);
        let node = if frng.chance(0.5) {
            NodeId::Frontend(frng.below(inst.arrivals.len()))
        } else {
            NodeId::Datacenter(frng.below(inst.capacities.len()))
        };
        let crash_at = 2 + frng.below(6);
        let plan = FaultPlan::new().crash_and_recover(node, crash_at, 1);
        for (name, runtime) in [
            ("lockstep", Runtime::Lockstep),
            ("threaded", Runtime::Threaded),
        ] {
            let rep = dist
                .run_faulty(&inst, case.strategy, runtime, plan.clone())
                .map_err(|e| {
                    fail(
                        "fault-recovery",
                        format!(
                            "{name} with {node:?} crashing at iteration {crash_at} fails \
                             (`{e}`) where the clean run solves"
                        ),
                    )
                })?;
            if rep.point != mem.point {
                return Err(fail(
                    "fault-recovery",
                    format!(
                        "{name} recovery from a {node:?} crash at iteration {crash_at} lands \
                         off the clean point: UFC {} vs {}",
                        rep.breakdown.ufc(),
                        mem.breakdown.ufc()
                    ),
                ));
            }
        }
    }

    // --- Corruption leg. Verified posture: every engine must repair the
    // seeded §12 poison, reproduce the clean point bit-for-bit, and
    // deliver nothing corrupt. Unverified posture: poison may reach the
    // iterate stream, so the only contract is outcome agreement between
    // the engines — the same clean point, or the same typed error from
    // the corruption/divergence classes. Never a panic, never a silently
    // different answer on one engine only.
    if let (Some(cseed), true) = (case.corrupt_seed, mem.converged) {
        let cfg = CorruptionConfig::new(1e-2, cseed);
        let verified = DistributedAdmg::new(main_settings.with_checksums(true));
        for (name, runtime) in [
            ("lockstep", Runtime::Lockstep),
            ("threaded", Runtime::Threaded),
        ] {
            let rep = verified
                .run_corrupt(&inst, case.strategy, runtime, cfg)
                .map_err(|e| {
                    fail(
                        "corrupt-verified",
                        format!("verified {name} fails (`{e}`) instead of repairing"),
                    )
                })?;
            if rep.point != mem.point {
                return Err(fail(
                    "corrupt-verified",
                    format!(
                        "verified {name} lands off the clean point: UFC {} vs {}",
                        rep.breakdown.ufc(),
                        mem.breakdown.ufc()
                    ),
                ));
            }
            let delivered = rep
                .integrity
                .map_or(0, |counters| counters.corruptions_delivered);
            if delivered != 0 {
                return Err(fail(
                    "corrupt-verified",
                    format!("verified {name} delivered {delivered} corrupt payloads"),
                ));
            }
        }
        if case.socket {
            if let Some(worker) = worker {
                let rep = verified
                    .run_sockets_corrupt(&inst, case.strategy, &SocketOptions::new(worker), cfg)
                    .map_err(|e| {
                        fail(
                            "corrupt-verified",
                            format!("verified socket engine fails (`{e}`) instead of repairing"),
                        )
                    })?;
                if rep.point != mem.point {
                    return Err(fail(
                        "corrupt-verified",
                        format!(
                            "verified socket engine lands off the clean point: UFC {} vs {}",
                            rep.breakdown.ufc(),
                            mem.breakdown.ufc()
                        ),
                    ));
                }
            }
        }
        let lock = dist.run_corrupt(&inst, case.strategy, Runtime::Lockstep, cfg);
        let thread = dist.run_corrupt(&inst, case.strategy, Runtime::Threaded, cfg);
        match (lock, thread) {
            (Ok(a), Ok(b)) => {
                if a.point != b.point {
                    return Err(fail(
                        "corrupt-unverified",
                        format!(
                            "unverified engines both converge but disagree: UFC {} vs {}",
                            a.breakdown.ufc(),
                            b.breakdown.ufc()
                        ),
                    ));
                }
            }
            (Err(a), Err(b)) => {
                if error_key(&a) != error_key(&b) {
                    return Err(fail(
                        "corrupt-unverified",
                        format!("unverified engines fail differently: `{a}` vs `{b}`"),
                    ));
                }
                // `Subproblem` joined the allowed classes when the fault
                // legs surfaced a real bug: NaN poison reaching a node's
                // λ-/a-QP used to panic inside the worker instead of
                // rejecting typed (`node.rs` now maps it to
                // `CoreError::Subproblem`).
                let typed = matches!(
                    a,
                    CoreError::Divergence { .. }
                        | CoreError::CorruptPayload { .. }
                        | CoreError::NotConverged { .. }
                        | CoreError::Subproblem { .. }
                );
                if !typed {
                    return Err(fail(
                        "corrupt-unverified",
                        format!("unverified poison surfaced an unexpected error class: `{a}`"),
                    ));
                }
            }
            (a, b) => {
                return Err(fail(
                    "corrupt-unverified",
                    format!(
                        "unverified engines disagree on solvability: lockstep {:?} vs \
                         threaded {:?}",
                        a.map(|r| r.converged),
                        b.map(|r| r.converged)
                    ),
                ));
            }
        }
    }

    // --- Feasibility of the polished point.
    let residual = mem.point.feasibility_residual(&inst);
    if residual.is_nan() || residual > FEASIBILITY_TOL {
        return Err(fail(
            "oracle-feasibility",
            format!("polished point violates constraints by {residual:e}"),
        ));
    }

    // --- Centralized QP oracle (skips its typed unsupported corners:
    // stepped tariffs; only meaningful against a converged ADM-G run).
    // Storage instances are out of the oracle's scope: the assembled QP
    // has no battery/ramp variables, so ADM-G's storage value legitimately
    // beats it and the recovered point can violate ramp limits.
    if mem.converged && inst.storage.is_none() {
        // The ADMM backend can itself fail to converge on deliberately
        // ill-conditioned instances; fall back to the exact dense
        // active-set backend (fuzz instances are tiny, right at its scale)
        // before declaring the oracle unavailable.
        let central =
            centralized::solve(&inst, case.strategy, centralized::Backend::Admm).or_else(|e| {
                if matches!(e, CoreError::Unsupported { .. }) {
                    Err(e)
                } else {
                    centralized::solve(&inst, case.strategy, centralized::Backend::ActiveSet)
                }
            });
        // An Err here is an unsupported corner or an oracle that cannot
        // answer (both backends failed): skip, the other oracles still
        // apply.
        if let Ok(cen) = central {
            let gap = rel_gap(mem.breakdown.ufc(), cen.breakdown.ufc());
            if gap > CENTRAL_REL_TOL {
                return Err(fail(
                    "oracle-central",
                    format!(
                        "UFC {} vs centralized {} (rel {gap:e})",
                        mem.breakdown.ufc(),
                        cen.breakdown.ufc()
                    ),
                ));
            }
        }
    }

    // --- Generic matrix-form correction oracle: one reference correction
    // step from a pseudo-random iterate must match the closed form. The
    // matrix-form reference models the 4-block core only, so storage
    // instances (whose closed form corrects the extra `d` row) are out of
    // its scope. An inactive block is pinned at zero in *both* iterates,
    // matching the strategy restriction the solvers enforce.
    if inst.storage.is_none() {
        if let Ok((active_mu, active_nu)) = case.strategy.block_activation(&inst) {
            let mut rng = SplitMix64::new(0x5EED ^ mem.iterations as u64);
            let mut state = pseudo_random_state(&inst, &mut rng);
            let mut tilde = pseudo_random_state(&inst, &mut rng);
            if !active_mu {
                state.mu.iter_mut().for_each(|v| *v = 0.0);
                tilde.mu.iter_mut().for_each(|v| *v = 0.0);
            }
            if !active_nu {
                state.nu.iter_mut().for_each(|v| *v = 0.0);
                tilde.nu.iter_mut().for_each(|v| *v = 0.0);
            }
            match generic::correction_reference(&inst, &state, &tilde, 0.9, active_mu, active_nu) {
                Ok(generic_state) => {
                    let mut closed = state.clone();
                    correction::gaussian_back_substitution(
                        &inst,
                        &mut closed,
                        &tilde,
                        0.9,
                        active_mu,
                        active_nu,
                    );
                    let pairs = generic_state
                        .mu
                        .iter()
                        .zip(&closed.mu)
                        .chain(generic_state.nu.iter().zip(&closed.nu))
                        .chain(generic_state.a.iter().zip(&closed.a))
                        .chain(generic_state.phi.iter().zip(&closed.phi))
                        .chain(generic_state.varphi.iter().zip(&closed.varphi));
                    for (k, (x, y)) in pairs.enumerate() {
                        let diff = (x - y).abs();
                        if diff.is_nan() || diff > GENERIC_TOL {
                            return Err(fail(
                                "oracle-generic",
                                format!(
                                    "matrix-form and closed-form corrections differ at \
                                 component {k}: {x} vs {y}"
                                ),
                            ));
                        }
                    }
                }
                // A typed numerical failure is a report, not an abort; the UFC
                // structure should never produce one (Theorem 1).
                Err(e) => {
                    return Err(fail(
                        "oracle-generic",
                        format!("matrix-form reference failed: {e}"),
                    ));
                }
            }
        }
    }

    Ok(CaseOutcome::Solved)
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

fn remove_frontend(p: &InstanceParams, i: usize) -> InstanceParams {
    let mut q = p.clone();
    q.arrivals.remove(i);
    q.latency_s.remove(i);
    q
}

fn remove_datacenter(p: &InstanceParams, j: usize) -> InstanceParams {
    let mut q = p.clone();
    q.capacities.remove(j);
    q.alpha.remove(j);
    q.beta.remove(j);
    q.mu_max.remove(j);
    q.grid_price.remove(j);
    q.carbon_t_per_mwh.remove(j);
    q.emission_cost.remove(j);
    for row in &mut q.latency_s {
        if j < row.len() {
            row.remove(j);
        }
    }
    if let Some(sp) = &mut q.storage {
        for v in [
            &mut sp.capacity_mwh,
            &mut sp.charge_mwh,
            &mut sp.charge_rate_mw,
            &mut sp.discharge_rate_mw,
            &mut sp.value_per_mwh,
            &mut sp.ramp_mw,
            &mut sp.mu_prev_mw,
        ] {
            if j < v.len() {
                v.remove(j);
            }
        }
    }
    q
}

fn shrink_candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let m = case.params.arrivals.len();
    let n = case.params.capacities.len();
    for i in 0..m {
        if m > 1 {
            let mut c = case.clone();
            c.params = remove_frontend(&case.params, i);
            out.push(c);
        }
    }
    for j in 0..n {
        if n > 1 {
            let mut c = case.clone();
            c.params = remove_datacenter(&case.params, j);
            out.push(c);
        }
    }
    if case.params.storage.is_some() {
        let mut c = case.clone();
        c.params.storage = None;
        out.push(c);
    }
    if case
        .params
        .emission_cost
        .iter()
        .any(|v| !matches!(v, EmissionCostFn::Linear { .. }))
    {
        let mut c = case.clone();
        for v in &mut c.params.emission_cost {
            *v = EmissionCostFn::Linear { rate: 25.0 };
        }
        out.push(c);
    }
    if case.params.slot_hours != 1.0 {
        let mut c = case.clone();
        c.params.slot_hours = 1.0;
        out.push(c);
    }
    // Knobs toward the defaults (kept only if the failure still fires).
    if case.threads != 1 || case.rank1_kkt || case.blocked || !case.cache {
        let mut c = case.clone();
        c.threads = 1;
        c.cache = true;
        c.rank1_kkt = false;
        c.blocked = false;
        out.push(c);
    }
    if case.socket {
        let mut c = case.clone();
        c.socket = false;
        out.push(c);
    }
    // Drop the fault/corruption legs: if the failure survives without
    // them, the reproducer should not pay for them on every replay.
    if case.fault_seed.is_some() {
        let mut c = case.clone();
        c.fault_seed = None;
        out.push(c);
    }
    if case.corrupt_seed.is_some() {
        let mut c = case.clone();
        c.corrupt_seed = None;
        out.push(c);
    }
    out
}

/// Greedily shrinks a failing case while the same failure *kind*
/// reproduces. Returns the minimal reproducer (possibly the input itself).
#[must_use]
pub fn shrink_case(case: &FuzzCase, failure: &CaseFailure, worker: Option<&Path>) -> FuzzCase {
    let mut best = case.clone();
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&best) {
            if let Err(f) = check_case(&cand, worker) {
                if f.kind == failure.kind {
                    best = cand;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

// ---------------------------------------------------------------------------
// Corpus codec — a line-oriented `key = value` text format. Floats are
// written with `{:?}`, which round-trips f64 exactly (including `inf`).
// ---------------------------------------------------------------------------

fn write_vec(out: &mut String, key: &str, v: &[f64]) {
    let joined = v
        .iter()
        .map(|x| format!("{x:?}"))
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(out, "{key} = {joined}");
}

fn emission_text(v: &EmissionCostFn) -> String {
    match v {
        EmissionCostFn::Linear { rate } => format!("linear {rate:?}"),
        EmissionCostFn::Quadratic { linear, quad } => format!("quadratic {linear:?} {quad:?}"),
        EmissionCostFn::Stepped { thresholds, rates } => {
            let t = thresholds
                .iter()
                .map(|x| format!("{x:?}"))
                .collect::<Vec<_>>()
                .join(",");
            let r = rates
                .iter()
                .map(|x| format!("{x:?}"))
                .collect::<Vec<_>>()
                .join(",");
            format!("stepped {t} {r}")
        }
    }
}

/// Serializes a case to the corpus text format. `note` becomes a leading
/// comment (what failed, which seed produced it).
#[must_use]
pub fn encode_case(case: &FuzzCase, note: &str) -> String {
    let mut out = String::new();
    for line in note.lines() {
        let _ = writeln!(out, "# {line}");
    }
    let _ = writeln!(out, "strategy = {:?}", case.strategy);
    let _ = writeln!(out, "threads = {}", case.threads);
    let _ = writeln!(out, "cache = {}", case.cache);
    let _ = writeln!(out, "rank1_kkt = {}", case.rank1_kkt);
    let _ = writeln!(out, "blocked = {}", case.blocked);
    let _ = writeln!(out, "socket = {}", case.socket);
    if let Some(fseed) = case.fault_seed {
        let _ = writeln!(out, "fault_seed = {fseed}");
    }
    if let Some(cseed) = case.corrupt_seed {
        let _ = writeln!(out, "corrupt_seed = {cseed}");
    }
    let _ = writeln!(
        out,
        "expect = {}",
        if case.expect_reject {
            "reject"
        } else {
            "solve"
        }
    );
    let p = &case.params;
    write_vec(&mut out, "arrivals", &p.arrivals);
    write_vec(&mut out, "capacities", &p.capacities);
    write_vec(&mut out, "alpha", &p.alpha);
    write_vec(&mut out, "beta", &p.beta);
    write_vec(&mut out, "mu_max", &p.mu_max);
    write_vec(&mut out, "grid_price", &p.grid_price);
    let _ = writeln!(out, "fuel_cell_price = {:?}", p.fuel_cell_price);
    write_vec(&mut out, "carbon", &p.carbon_t_per_mwh);
    for row in &p.latency_s {
        write_vec(&mut out, "latency_row", row);
    }
    let _ = writeln!(out, "weight_per_server = {:?}", p.weight_per_server);
    for v in &p.emission_cost {
        let _ = writeln!(out, "emission = {}", emission_text(v));
    }
    let _ = writeln!(out, "slot_hours = {:?}", p.slot_hours);
    if let Some(sp) = &p.storage {
        write_vec(&mut out, "storage_capacity_mwh", &sp.capacity_mwh);
        write_vec(&mut out, "storage_charge_mwh", &sp.charge_mwh);
        write_vec(&mut out, "storage_charge_rate_mw", &sp.charge_rate_mw);
        write_vec(&mut out, "storage_discharge_rate_mw", &sp.discharge_rate_mw);
        write_vec(&mut out, "storage_value_per_mwh", &sp.value_per_mwh);
        let _ = writeln!(out, "storage_degradation = {:?}", sp.degradation_per_mwh);
        write_vec(&mut out, "storage_ramp_mw", &sp.ramp_mw);
        write_vec(&mut out, "storage_mu_prev_mw", &sp.mu_prev_mw);
    }
    out
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse::<f64>()
        .map_err(|e| format!("bad float {s:?}: {e}"))
}

fn parse_vec(s: &str) -> Result<Vec<f64>, String> {
    s.split_whitespace().map(parse_f64).collect()
}

fn parse_emission(s: &str) -> Result<EmissionCostFn, String> {
    let mut parts = s.split_whitespace();
    match parts.next() {
        Some("linear") => Ok(EmissionCostFn::Linear {
            rate: parse_f64(parts.next().ok_or("linear tax needs a rate")?)?,
        }),
        Some("quadratic") => Ok(EmissionCostFn::Quadratic {
            linear: parse_f64(parts.next().ok_or("quadratic tax needs two coefficients")?)?,
            quad: parse_f64(parts.next().ok_or("quadratic tax needs two coefficients")?)?,
        }),
        Some("stepped") => {
            let t = parts
                .next()
                .ok_or("stepped tax needs thresholds and rates")?;
            let r = parts
                .next()
                .ok_or("stepped tax needs thresholds and rates")?;
            Ok(EmissionCostFn::Stepped {
                thresholds: t.split(',').map(parse_f64).collect::<Result<_, _>>()?,
                rates: r.split(',').map(parse_f64).collect::<Result<_, _>>()?,
            })
        }
        other => Err(format!("unknown emission shape {other:?}")),
    }
}

/// Parses a corpus text file back into a case.
///
/// # Errors
///
/// Returns a description of the first malformed line or missing field.
#[allow(clippy::too_many_lines)] // one match arm per corpus key
pub fn decode_case(text: &str) -> Result<FuzzCase, String> {
    let mut strategy = None;
    let mut threads = 1usize;
    let (mut cache, mut rank1_kkt, mut blocked, mut socket) = (true, false, false, false);
    let (mut fault_seed, mut corrupt_seed) = (None, None);
    let mut expect_reject = None;
    let mut fields: std::collections::HashMap<&str, Vec<f64>> = std::collections::HashMap::new();
    let mut latency_rows: Vec<Vec<f64>> = Vec::new();
    let mut emissions: Vec<EmissionCostFn> = Vec::new();
    let (mut fuel_cell_price, mut weight, mut slot_hours, mut degradation) =
        (None, None, None, None);

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line without `=`: {line:?}"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "strategy" => {
                strategy = Some(match value {
                    "Hybrid" => Strategy::Hybrid,
                    "GridOnly" => Strategy::GridOnly,
                    "FuelCellOnly" => Strategy::FuelCellOnly,
                    other => return Err(format!("unknown strategy {other:?}")),
                });
            }
            "threads" => threads = value.parse().map_err(|e| format!("threads: {e}"))?,
            "cache" => cache = value.parse().map_err(|e| format!("cache: {e}"))?,
            "rank1_kkt" => rank1_kkt = value.parse().map_err(|e| format!("rank1_kkt: {e}"))?,
            "blocked" => blocked = value.parse().map_err(|e| format!("blocked: {e}"))?,
            "socket" => socket = value.parse().map_err(|e| format!("socket: {e}"))?,
            "fault_seed" => {
                fault_seed = Some(value.parse().map_err(|e| format!("fault_seed: {e}"))?);
            }
            "corrupt_seed" => {
                corrupt_seed = Some(value.parse().map_err(|e| format!("corrupt_seed: {e}"))?);
            }
            "expect" => {
                expect_reject = Some(match value {
                    "reject" => true,
                    "solve" => false,
                    other => return Err(format!("expect must be solve|reject, got {other:?}")),
                });
            }
            "latency_row" => latency_rows.push(parse_vec(value)?),
            "emission" => emissions.push(parse_emission(value)?),
            "fuel_cell_price" => fuel_cell_price = Some(parse_f64(value)?),
            "weight_per_server" => weight = Some(parse_f64(value)?),
            "slot_hours" => slot_hours = Some(parse_f64(value)?),
            "storage_degradation" => degradation = Some(parse_f64(value)?),
            "arrivals"
            | "capacities"
            | "alpha"
            | "beta"
            | "mu_max"
            | "grid_price"
            | "carbon"
            | "storage_capacity_mwh"
            | "storage_charge_mwh"
            | "storage_charge_rate_mw"
            | "storage_discharge_rate_mw"
            | "storage_value_per_mwh"
            | "storage_ramp_mw"
            | "storage_mu_prev_mw" => {
                fields.insert(key, parse_vec(value)?);
            }
            other => return Err(format!("unknown corpus key {other:?}")),
        }
    }

    let has_storage = fields.contains_key("storage_capacity_mwh");
    let mut take =
        |k: &str| -> Result<Vec<f64>, String> { fields.remove(k).ok_or(format!("missing {k}")) };
    let params = InstanceParams {
        arrivals: take("arrivals")?,
        capacities: take("capacities")?,
        alpha: take("alpha")?,
        beta: take("beta")?,
        mu_max: take("mu_max")?,
        grid_price: take("grid_price")?,
        fuel_cell_price: fuel_cell_price.ok_or("missing fuel_cell_price")?,
        carbon_t_per_mwh: take("carbon")?,
        latency_s: latency_rows,
        weight_per_server: weight.ok_or("missing weight_per_server")?,
        emission_cost: emissions,
        slot_hours: slot_hours.ok_or("missing slot_hours")?,
        storage: if has_storage {
            Some(StorageParams {
                capacity_mwh: take("storage_capacity_mwh")?,
                charge_mwh: take("storage_charge_mwh")?,
                charge_rate_mw: take("storage_charge_rate_mw")?,
                discharge_rate_mw: take("storage_discharge_rate_mw")?,
                value_per_mwh: take("storage_value_per_mwh")?,
                degradation_per_mwh: degradation.ok_or("missing storage_degradation")?,
                ramp_mw: take("storage_ramp_mw")?,
                mu_prev_mw: take("storage_mu_prev_mw")?,
            })
        } else {
            None
        },
    };
    Ok(FuzzCase {
        params,
        strategy: strategy.ok_or("missing strategy")?,
        threads,
        cache,
        rank1_kkt,
        blocked,
        expect_reject: expect_reject.ok_or("missing expect")?,
        socket,
        fault_seed,
        corrupt_seed,
    })
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// One recorded failure of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Where the failing case came from (a seed, or a corpus file name).
    pub label: String,
    /// Stable failure class.
    pub kind: String,
    /// Full description.
    pub message: String,
    /// Shrunk reproducer persisted to the corpus, when one was written.
    pub reproducer: Option<PathBuf>,
}

/// Aggregate results of one fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Corpus files replayed (all must pass).
    pub corpus_replayed: usize,
    /// Freshly generated cases checked.
    pub generated: usize,
    /// Cases that solved on every engine.
    pub solved: usize,
    /// Cases rejected with an identical typed error everywhere.
    pub rejected: usize,
    /// Cases that exercised the multi-process socket engine.
    pub socket_runs: usize,
    /// Cases that exercised the crash/recovery leg.
    pub faulty_runs: usize,
    /// Cases that exercised the corruption leg.
    pub corrupt_runs: usize,
    /// Generated cases mutated from a corpus reproducer.
    pub mutated: usize,
    /// Cross-check failures (empty on a clean run).
    pub failures: Vec<FuzzFailure>,
}

/// Replays the corpus under `corpus_dir`, then generates and checks
/// `cases` fresh cases from `seed`. Failing generated cases are shrunk and
/// persisted to the corpus as `fuzz-<seed>.case` so they become permanent
/// regression tests.
///
/// `worker` enables the socket-engine legs when the `ufc-node` binary is
/// available.
///
/// # Errors
///
/// Propagates corpus-directory I/O failures. Cross-check failures are
/// *reported* in the returned [`FuzzReport`], not raised as errors.
pub fn run(
    seed: u64,
    cases: usize,
    corpus_dir: &Path,
    worker: Option<&Path>,
) -> std::io::Result<FuzzReport> {
    run_with(seed, cases, corpus_dir, worker, false, false)
}

/// Like [`run`], with the full knob set: `mutate_corpus` biases generation
/// toward committed counterexamples (each fresh case mutates a decoded
/// corpus reproducer instead of sampling blind — nearby inputs to a past
/// finding are far likelier to hit the same cliff), and `faults` forces
/// the crash/recovery and corruption legs onto every generated case.
///
/// # Errors
///
/// Propagates corpus-directory I/O failures, like [`run`].
pub fn run_with(
    seed: u64,
    cases: usize,
    corpus_dir: &Path,
    worker: Option<&Path>,
    mutate_corpus: bool,
    faults: bool,
) -> std::io::Result<FuzzReport> {
    let mut report = FuzzReport::default();

    // --- Corpus replay first: past findings must stay fixed.
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(corpus_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "case"))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    paths.sort();
    let mut bases: Vec<FuzzCase> = Vec::new();
    for path in paths {
        let label = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let text = std::fs::read_to_string(&path)?;
        report.corpus_replayed += 1;
        match decode_case(&text) {
            Ok(case) => {
                if let Err(f) = check_case(&case, worker) {
                    report.failures.push(FuzzFailure {
                        label,
                        kind: f.kind,
                        message: f.message,
                        reproducer: Some(path),
                    });
                } else {
                    bump(&mut report, &case);
                }
                bases.push(case);
            }
            Err(e) => report.failures.push(FuzzFailure {
                label,
                kind: "corpus-decode".to_owned(),
                message: e,
                reproducer: Some(path),
            }),
        }
    }

    // --- Fresh cases.
    let mut rng = SplitMix64::new(seed);
    for _ in 0..cases {
        let case_seed = rng.next_u64();
        let mut case = if mutate_corpus && !bases.is_empty() {
            report.mutated += 1;
            let base = &bases[rng.below(bases.len())];
            mutate_case(base, &mut SplitMix64::new(case_seed))
        } else {
            arbitrary_case(case_seed)
        };
        if faults && !case.expect_reject {
            case.fault_seed
                .get_or_insert(case_seed ^ 0xFA57_FA17_5EED_0001);
            case.corrupt_seed
                .get_or_insert(case_seed ^ 0xC022_4B17_5EED_0002);
        }
        report.generated += 1;
        match check_case(&case, worker) {
            Ok(_) => bump(&mut report, &case),
            Err(f) => {
                let shrunk = shrink_case(&case, &f, worker);
                let shrunk_failure = match check_case(&shrunk, worker) {
                    Err(sf) => sf,
                    Ok(_) => f.clone(), // shrinker raced a nondeterminism; keep the original
                };
                let note = format!(
                    "repro fuzz reproducer — seed {case_seed:#018x}\nkind: {}\n{}",
                    shrunk_failure.kind, shrunk_failure.message
                );
                let path = corpus_dir.join(format!("fuzz-{case_seed:016x}.case"));
                std::fs::create_dir_all(corpus_dir)?;
                std::fs::write(&path, encode_case(&shrunk, &note))?;
                report.failures.push(FuzzFailure {
                    label: format!("seed {case_seed:#018x}"),
                    kind: shrunk_failure.kind,
                    message: shrunk_failure.message,
                    reproducer: Some(path),
                });
            }
        }
    }
    Ok(report)
}

fn bump(report: &mut FuzzReport, case: &FuzzCase) {
    if case.expect_reject {
        report.rejected += 1;
    } else {
        report.solved += 1;
        if case.socket {
            report.socket_runs += 1;
        }
        if case.fault_seed.is_some() {
            report.faulty_runs += 1;
        }
        if case.corrupt_seed.is_some() {
            report.corrupt_runs += 1;
        }
    }
}

/// Deterministically perturbs a corpus reproducer into a fresh case:
/// one to three stacked tweaks of the inputs or knobs, with the rejection
/// expectation recomputed for the mutant. Socket legs are dropped —
/// mutation is about throughput around a known cliff, not engine
/// coverage — and the fault/corruption seeds are inherited unchanged.
#[must_use]
pub fn mutate_case(base: &FuzzCase, rng: &mut SplitMix64) -> FuzzCase {
    let mut case = base.clone();
    for _ in 0..1 + rng.below(3) {
        match rng.below(8) {
            0 => {
                let i = rng.below(case.params.arrivals.len().max(1));
                if let Some(v) = case.params.arrivals.get_mut(i) {
                    *v *= rng.uniform(0.0, 2.0);
                }
            }
            1 => {
                let j = rng.below(case.params.capacities.len().max(1));
                if let Some(v) = case.params.capacities.get_mut(j) {
                    *v *= rng.uniform(0.5, 2.0);
                }
            }
            2 => {
                let j = rng.below(case.params.grid_price.len().max(1));
                if let Some(v) = case.params.grid_price.get_mut(j) {
                    *v *= rng.uniform(0.25, 4.0);
                }
            }
            3 => {
                let j = rng.below(case.params.mu_max.len().max(1));
                let zero = rng.chance(0.3);
                let scale = rng.uniform(0.5, 1.5);
                if let Some(v) = case.params.mu_max.get_mut(j) {
                    *v = if zero { 0.0 } else { *v * scale };
                }
            }
            4 => {
                case.strategy = match rng.below(3) {
                    0 => Strategy::Hybrid,
                    1 => Strategy::GridOnly,
                    _ => Strategy::FuelCellOnly,
                };
            }
            5 => {
                case.threads = [1usize, 2, 4][rng.below(3)];
                case.cache = rng.chance(0.5);
                case.rank1_kkt = rng.chance(0.5);
                case.blocked = rng.chance(0.5);
            }
            6 => case.params.fuel_cell_price *= rng.uniform(0.25, 4.0),
            _ => case.params.slot_hours *= rng.uniform(0.5, 2.0),
        }
    }
    case.socket = false;
    case.expect_reject = case.params.build().is_err();
    case
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_generated_cases() {
        for seed in 0..60u64 {
            let case = arbitrary_case(seed);
            let text = encode_case(&case, "round-trip test");
            let back = decode_case(&text).unwrap();
            assert_eq!(case, back, "seed {seed} did not round-trip:\n{text}");
        }
    }

    #[test]
    fn codec_round_trips_fault_and_corrupt_seeds() {
        let mut case = arbitrary_case(0);
        case.fault_seed = Some(u64::MAX);
        case.corrupt_seed = Some(7);
        let back = decode_case(&encode_case(&case, "seed round-trip")).unwrap();
        assert_eq!(case, back);
    }

    #[test]
    fn fault_and_corrupt_legs_pass_on_a_known_good_seed() {
        let seed = (0..64u64)
            .find(|&s| {
                let c = arbitrary_case(s);
                !c.expect_reject && !c.socket
            })
            .expect("some seed must build");
        let mut case = arbitrary_case(seed);
        case.fault_seed = Some(7);
        case.corrupt_seed = Some(11);
        assert_eq!(check_case(&case, None).unwrap(), CaseOutcome::Solved);
    }

    #[test]
    fn residual_divergence_is_a_typed_failure() {
        let record = |link: f64| IterationRecord {
            iteration: 0,
            link_residual: link,
            balance_residual: 1.0,
            dual_residual: 1.0,
            objective: f64::NAN,
        };
        assert!(check_residual_trajectory("lockstep", &[record(1.0)], &[record(1.0)]).is_ok());
        let f = check_residual_trajectory("lockstep", &[record(1.0)], &[record(2.0)]).unwrap_err();
        assert_eq!(f.kind, "residual-divergence");
        let f =
            check_residual_trajectory("lockstep", &[record(1.0)], &[record(f64::NAN)]).unwrap_err();
        assert_eq!(f.kind, "residual-divergence");
        let f = check_residual_trajectory("lockstep", &[record(1.0)], &[]).unwrap_err();
        assert_eq!(f.kind, "residual-divergence");
    }

    #[test]
    fn mutate_case_is_deterministic_and_recomputes_expectation() {
        let seed = (0..64u64)
            .find(|&s| !arbitrary_case(s).expect_reject)
            .expect("some seed must build");
        let base = arbitrary_case(seed);
        let a = mutate_case(&base, &mut SplitMix64::new(42));
        let b = mutate_case(&base, &mut SplitMix64::new(42));
        assert_eq!(a, b, "mutation must be a pure function of (base, seed)");
        assert!(!a.socket, "mutants drop the socket leg");
        assert_eq!(a.expect_reject, a.params.build().is_err());
        // Different seeds must explore different mutants.
        let c = mutate_case(&base, &mut SplitMix64::new(43));
        let d = mutate_case(&base, &mut SplitMix64::new(44));
        assert!(a != c || a != d, "mutation must actually vary the case");
    }

    #[test]
    fn check_case_accepts_a_known_good_seed() {
        // Scan a few seeds for one that builds, then check it end to end
        // (sockets off — no worker binary in unit tests).
        let seed = (0..64u64)
            .find(|&s| {
                let c = arbitrary_case(s);
                !c.expect_reject && !c.socket
            })
            .expect("some seed must build");
        let case = arbitrary_case(seed);
        assert_eq!(check_case(&case, None).unwrap(), CaseOutcome::Solved);
    }

    #[test]
    fn rejection_cases_report_rejected() {
        let seed = (0..512u64)
            .find(|&s| arbitrary_case(s).expect_reject)
            .expect("some seed must be rejected");
        let case = arbitrary_case(seed);
        assert_eq!(check_case(&case, None).unwrap(), CaseOutcome::Rejected);
    }

    #[test]
    fn wrong_expectation_is_a_typed_failure() {
        let seed = (0..64u64)
            .find(|&s| !arbitrary_case(s).expect_reject)
            .unwrap();
        let mut case = arbitrary_case(seed);
        case.expect_reject = true;
        let f = check_case(&case, None).unwrap_err();
        assert_eq!(f.kind, "expectation");
    }

    #[test]
    fn shrinker_minimizes_an_expectation_failure() {
        // Force a failure whose kind survives any shrink that keeps the
        // instance buildable: claim a buildable case must be rejected.
        let seed = (0..256u64)
            .find(|&s| {
                let c = arbitrary_case(s);
                !c.expect_reject && c.params.arrivals.len() > 1 && c.params.capacities.len() > 1
            })
            .unwrap();
        let mut case = arbitrary_case(seed);
        case.expect_reject = true;
        let f = check_case(&case, None).unwrap_err();
        let shrunk = shrink_case(&case, &f, None);
        // Front-end removal never affects buildability, so it always
        // shrinks to a single front-end; datacenter removal can flip the
        // instance infeasible (which changes the failure kind), so the
        // shrinker keeps only the steps that stay buildable.
        assert_eq!(shrunk.params.arrivals.len(), 1);
        assert!(shrunk.params.capacities.len() <= case.params.capacities.len());
        assert!(shrunk.params.storage.is_none());
        // The shrunk case still fails the same way.
        assert_eq!(check_case(&shrunk, None).unwrap_err().kind, "expectation");
    }
}
