//! Fig. 11 — CDF of ADM-G iterations-to-convergence over the hourly runs.

use ufc_traces::csv::Csv;
use ufc_traces::series::empirical_cdf;

/// The Fig. 11 result: iteration counts and their empirical CDF.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceCdf {
    /// Raw iteration counts, one per hourly run.
    pub iterations: Vec<usize>,
    /// Sorted iteration values of the CDF.
    pub cdf_x: Vec<f64>,
    /// Cumulative fractions of the CDF.
    pub cdf_y: Vec<f64>,
}

/// Builds the CDF from per-hour iteration counts (as produced by
/// [`crate::weekly::WeeklyResults::iteration_counts`]).
///
/// # Panics
///
/// Panics if `iterations` is empty.
#[must_use]
pub fn from_counts(iterations: Vec<usize>) -> ConvergenceCdf {
    assert!(!iterations.is_empty(), "no runs to build a CDF from");
    let data: Vec<f64> = iterations.iter().map(|&i| i as f64).collect();
    let (cdf_x, cdf_y) = empirical_cdf(&data);
    ConvergenceCdf {
        iterations,
        cdf_x,
        cdf_y,
    }
}

impl ConvergenceCdf {
    /// Minimum iterations over all runs.
    #[must_use]
    pub fn min(&self) -> usize {
        *self
            .iterations
            .iter()
            .min()
            .expect("nonempty by construction")
    }

    /// Maximum iterations over all runs.
    #[must_use]
    pub fn max(&self) -> usize {
        *self
            .iterations
            .iter()
            .max()
            .expect("nonempty by construction")
    }

    /// Fraction of runs converging within `limit` iterations.
    #[must_use]
    pub fn fraction_within(&self, limit: usize) -> f64 {
        self.iterations.iter().filter(|&&i| i <= limit).count() as f64
            / self.iterations.len() as f64
    }

    /// CSV of the CDF points.
    #[must_use]
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new(&["iterations", "cdf"]);
        for (x, y) in self.cdf_x.iter().zip(&self.cdf_y) {
            csv.push_row(&[*x, *y]);
        }
        csv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_statistics() {
        let c = from_counts(vec![40, 80, 120, 60, 100]);
        assert_eq!(c.min(), 40);
        assert_eq!(c.max(), 120);
        assert!((c.fraction_within(100) - 0.8).abs() < 1e-12);
        assert_eq!(c.fraction_within(10), 0.0);
        assert_eq!(c.fraction_within(200), 1.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let c = from_counts(vec![5, 3, 9, 3]);
        assert!(c.cdf_y.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(c.cdf_y.last().copied(), Some(1.0));
        assert_eq!(c.csv().len(), 4);
    }

    #[test]
    #[should_panic(expected = "no runs")]
    fn rejects_empty() {
        let _ = from_counts(vec![]);
    }
}
