//! Experiment harness: one module per table/figure of the paper's
//! evaluation (§IV), plus shared reporting utilities.
//!
//! | paper artifact | module | `repro` subcommand |
//! |----------------|--------|--------------------|
//! | Table I / Fig. 1 | [`table1`] | `table1` |
//! | Fig. 3 (input traces) | [`fig3`] | `fig3` |
//! | Fig. 4 (UFC improvements) | [`weekly`] | `fig4` |
//! | Fig. 5 (propagation latency) | [`weekly`] | `fig5` |
//! | Fig. 6 (energy cost) | [`weekly`] | `fig6` |
//! | Fig. 7 (carbon cost) | [`weekly`] | `fig7` |
//! | Fig. 8 (fuel-cell utilization) | [`weekly`] | `fig8` |
//! | Fig. 9 (fuel-cell price sweep) | [`sweep`] | `fig9` |
//! | Fig. 10 (carbon-tax sweep) | [`sweep`] | `fig10` |
//! | Fig. 11 (convergence CDF) | [`convergence`] | `fig11` |
//! | Fig.-11 remark (gradient baselines) | [`baseline`] | `baseline` |
//! | §II-A predictability assumption | [`robustness`] | `forecast` |
//! | §III failure-free assumption | [`faults`] | `faults` |
//! | §III clean-channel assumption | [`chaos`] | `chaos` |
//! | §III single-failure-domain assumption | [`sockets`] | `sockets` |
//! | solver hot-path wall-clock | [`solver_bench`] | `bench` |
//! | run-telemetry JSONL trace | [`trace`] | `trace` |
//! | §II temporal-decoupling assumption | [`storage`] | `storage` |
//! | differential fuzzing (DESIGN.md §16) | [`fuzz`] | `fuzz` |
//!
//! Every experiment is a pure function returning a data struct; the `repro`
//! binary renders those as aligned text and optional CSV. Benches re-run
//! the same functions, so "the bench regenerates the figure" is literal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod chaos;
pub mod convergence;
pub mod faults;
pub mod fig3;
pub mod fuzz;
pub mod parallel;
pub mod report;
pub mod robustness;
pub mod sockets;
pub mod solver_bench;
pub mod storage;
pub mod sweep;
pub mod table1;
pub mod trace;
pub mod weekly;

/// Default RNG seed used by all experiments (fixed for reproducibility;
/// EXPERIMENTS.md numbers use this seed).
pub const DEFAULT_SEED: u64 = 2012;
