//! Chaos study: link-level payload corruption vs the protocol's defenses.
//!
//! Geo-distributed WAN links do not just drop packets — they occasionally
//! deliver *wrong bytes* (bit rot, faulty NICs, middlebox bugs). This
//! extension sweeps seeded corruption rates over both distributed engines
//! in two postures: **verified** (CRC32-framed payloads, corrupt copies
//! detected on receive and retransmitted — the run must reach the clean
//! operating point bit-for-bit) and **unverified** (poison is delivered
//! and the driver's divergence gate is the only line of defense — runs
//! end converged, typed-diverged, or typed-exhausted, never panicked and
//! never silently wrong without the integrity counters saying so).

use std::path::Path;

use ufc_core::{AdmgSettings, CoreError, Result, Strategy};
use ufc_distsim::{CorruptionConfig, CorruptionKind, DistributedAdmg, Runtime, SocketOptions};
use ufc_model::scenario::ScenarioBuilder;
use ufc_traces::csv::Csv;

use crate::parallel::{default_threads, par_map};

/// Per-payload corruption probabilities swept by the study.
pub const CORRUPTION_RATES: [f64; 4] = [0.0, 1e-4, 1e-3, 1e-2];

/// Aggregate over all hours for one (rate, engine, posture) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPoint {
    /// Per-payload corruption probability.
    pub rate: f64,
    /// Execution engine the cell ran on.
    pub runtime: Runtime,
    /// Whether receivers verified CRC32 checksums.
    pub verified: bool,
    /// Hours attempted.
    pub hours_attempted: usize,
    /// Hours that converged.
    pub hours_converged: usize,
    /// Hours ended by the divergence gate (typed `Divergence`).
    pub hours_diverged: usize,
    /// Hours ended by retransmit-budget exhaustion (typed
    /// `CorruptPayload`).
    pub hours_exhausted: usize,
    /// Payloads corrupted on the wire.
    pub corruptions_injected: u64,
    /// Corruptions caught by verify-on-receive.
    pub corruptions_detected: u64,
    /// Corruptions delivered into the iterate stream (unverified only).
    pub corruptions_delivered: u64,
    /// Checksum-triggered retransmissions.
    pub retransmissions: u64,
    /// Mean wire-byte overhead vs the clean run, over converged hours
    /// (fraction; the checksum trailer plus resent frames).
    pub mean_extra_bytes: f64,
    /// Worst relative |UFC delta| vs the clean run over converged hours —
    /// must be 0 when `verified`.
    pub max_abs_ufc_delta: f64,
}

/// The full study result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosStudy {
    /// One aggregate per (rate, engine, posture) cell.
    pub points: Vec<ChaosPoint>,
}

/// One hour's outcome (internal).
enum HourOutcome {
    Converged {
        integrity: ufc_core::telemetry::IntegrityCounters,
        extra_bytes: f64,
        rel_delta: f64,
    },
    Diverged,
    Exhausted,
}

/// Runs the sweep over `hours` hourly instances for every
/// [`CORRUPTION_RATES`] entry × engine × checksum posture. Typed
/// corruption/divergence failures end only their own hour and are
/// tallied; anything else propagates.
///
/// # Errors
///
/// Scenario construction or clean-run solver failures.
pub fn run(seed: u64, hours: usize, settings: AdmgSettings) -> Result<ChaosStudy> {
    run_rates(seed, hours, settings, &CORRUPTION_RATES)
}

/// [`run`] with a caller-chosen rate list (the `--quick` CI smoke uses a
/// shorter one).
///
/// # Errors
///
/// As for [`run`].
pub fn run_rates(
    seed: u64,
    hours: usize,
    settings: AdmgSettings,
    rates: &[f64],
) -> Result<ChaosStudy> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()
        .map_err(CoreError::Model)?;
    let hour_ids: Vec<usize> = (0..scenario.instances.len()).collect();

    // Clean per-hour baselines: the operating point every verified run
    // must reproduce and the byte count the overhead is measured against.
    let clean_runner = DistributedAdmg::try_new(settings)?;
    let baselines = par_map(&hour_ids, default_threads(), |_, &t| {
        clean_runner
            .run(&scenario.instances[t], Strategy::Hybrid, Runtime::Lockstep)
            .map(|r| (r.breakdown.ufc(), r.stats.total_bytes))
    });
    let baselines: Vec<(f64, usize)> = baselines.into_iter().collect::<Result<_>>()?;

    let mut points = Vec::new();
    for (r, &rate) in rates.iter().enumerate() {
        for runtime in [Runtime::Lockstep, Runtime::Threaded] {
            for verified in [true, false] {
                let runner = DistributedAdmg::try_new(settings.with_checksums(verified))?;
                let outcomes = par_map(&hour_ids, default_threads(), |_, &t| {
                    let inst = &scenario.instances[t];
                    // One independent, reproducible stream per (rate, hour).
                    let cfg_seed = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add((r * hours + t) as u64);
                    let cfg = CorruptionConfig::try_new(rate, cfg_seed)?;
                    match runner.run_corrupt(inst, Strategy::Hybrid, runtime, cfg) {
                        Ok(report) => {
                            let (clean_ufc, clean_bytes) = baselines[t];
                            let delta = report.breakdown.ufc() - clean_ufc;
                            Ok(HourOutcome::Converged {
                                integrity: report.integrity.unwrap_or_default(),
                                extra_bytes: (report.stats.total_bytes as f64 - clean_bytes as f64)
                                    / clean_bytes as f64,
                                rel_delta: delta.abs() / clean_ufc.abs().max(1.0),
                            })
                        }
                        Err(CoreError::Divergence { .. }) => Ok(HourOutcome::Diverged),
                        Err(CoreError::CorruptPayload { .. }) => Ok(HourOutcome::Exhausted),
                        Err(e) => Err(e),
                    }
                });

                let mut point = ChaosPoint {
                    rate,
                    runtime,
                    verified,
                    hours_attempted: hour_ids.len(),
                    hours_converged: 0,
                    hours_diverged: 0,
                    hours_exhausted: 0,
                    corruptions_injected: 0,
                    corruptions_detected: 0,
                    corruptions_delivered: 0,
                    retransmissions: 0,
                    mean_extra_bytes: 0.0,
                    max_abs_ufc_delta: 0.0,
                };
                let mut extra_sum = 0.0;
                for outcome in outcomes {
                    match outcome? {
                        HourOutcome::Converged {
                            integrity,
                            extra_bytes,
                            rel_delta,
                        } => {
                            point.hours_converged += 1;
                            point.corruptions_injected += integrity.corruptions_injected;
                            point.corruptions_detected += integrity.corruptions_detected;
                            point.corruptions_delivered += integrity.corruptions_delivered;
                            point.retransmissions += integrity.checksum_retransmissions;
                            extra_sum += extra_bytes;
                            point.max_abs_ufc_delta = point.max_abs_ufc_delta.max(rel_delta);
                        }
                        HourOutcome::Diverged => point.hours_diverged += 1,
                        HourOutcome::Exhausted => point.hours_exhausted += 1,
                    }
                }
                point.mean_extra_bytes = extra_sum / point.hours_converged.max(1) as f64;
                points.push(point);
            }
        }
    }
    Ok(ChaosStudy { points })
}

impl ChaosStudy {
    /// `true` when every verified cell converged every hour onto the
    /// clean operating point — the codec's headline guarantee.
    #[must_use]
    pub fn verified_cells_clean(&self) -> bool {
        self.points
            .iter()
            .filter(|p| p.verified)
            .all(|p| p.hours_converged == p.hours_attempted && p.max_abs_ufc_delta == 0.0)
    }

    /// CSV with one row per (rate, engine, posture) cell; the engine
    /// column is 0 for lockstep, 1 for threaded.
    #[must_use]
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new(&[
            "corruption_rate",
            "engine",
            "verified",
            "hours_converged",
            "hours_diverged",
            "hours_exhausted",
            "corruptions_injected",
            "corruptions_detected",
            "corruptions_delivered",
            "retransmissions",
            "mean_extra_bytes_pct",
            "max_abs_ufc_delta_pct",
        ]);
        for p in &self.points {
            csv.push_row(&[
                p.rate,
                f64::from(u8::from(p.runtime == Runtime::Threaded)),
                f64::from(u8::from(p.verified)),
                p.hours_converged as f64,
                p.hours_diverged as f64,
                p.hours_exhausted as f64,
                p.corruptions_injected as f64,
                p.corruptions_detected as f64,
                p.corruptions_delivered as f64,
                p.retransmissions as f64,
                100.0 * p.mean_extra_bytes,
                100.0 * p.max_abs_ufc_delta,
            ]);
        }
        csv
    }
}

/// One cell of the socket sweep: a corruption posture applied to the
/// engine's real TCP traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocketChaosPoint {
    /// Per-attempt corruption probability.
    pub rate: f64,
    /// `None` for §12 value-level corruption (random kind per event,
    /// verified checksums); a wire-level kind for whole-frame chaos.
    pub kind: Option<CorruptionKind>,
    /// Hours attempted.
    pub hours_attempted: usize,
    /// Hours that converged.
    pub hours_converged: usize,
    /// Hours ended by retransmit-budget exhaustion (typed
    /// `CorruptPayload`).
    pub hours_exhausted: usize,
    /// Hours whose UFC matched the clean lockstep run bit-for-bit.
    pub hours_bitwise_clean: usize,
    /// Corruption attempts injected into the live byte stream.
    pub corruptions_injected: u64,
    /// Injections caught by the CRC ladder or absorbed structurally.
    pub corruptions_detected: u64,
    /// Corruptions delivered into the iterate stream — must stay 0.
    pub corruptions_delivered: u64,
    /// Repair retransmissions over the wire.
    pub retransmissions: u64,
}

/// Result of the socket-engine chaos sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SocketChaosStudy {
    /// One aggregate per (rate, posture) cell.
    pub points: Vec<SocketChaosPoint>,
}

/// Sweeps seeded corruption over the multi-process socket engine's real
/// TCP traffic: for every positive rate, one verified value-level cell
/// (identical draw order to the in-process engines) and one cell per
/// wire-level kind — frame truncation, duplication, reordering — applied
/// to live frame bytes in both directions. Typed budget-exhaustion
/// failures end only their own hour; anything else propagates.
///
/// # Errors
///
/// Scenario construction, clean-run solver failures, or a socket run
/// ending in anything other than convergence or a typed
/// `CorruptPayload`.
pub fn run_sockets_chaos(
    seed: u64,
    hours: usize,
    settings: AdmgSettings,
    rates: &[f64],
    worker: &Path,
) -> Result<SocketChaosStudy> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()
        .map_err(CoreError::Model)?;
    let hour_ids: Vec<usize> = (0..scenario.instances.len()).collect();

    // Clean lockstep baselines: the socket engine is bit-identical to
    // lockstep, so these are the bits every repaired hour must reproduce.
    let clean_runner = DistributedAdmg::try_new(settings)?;
    let baselines = par_map(&hour_ids, default_threads(), |_, &t| {
        clean_runner
            .run(&scenario.instances[t], Strategy::Hybrid, Runtime::Lockstep)
            .map(|r| r.breakdown.ufc().to_bits())
    });
    let baselines: Vec<u64> = baselines.into_iter().collect::<Result<_>>()?;

    let mut cells: Vec<(f64, Option<CorruptionKind>)> = Vec::new();
    for &rate in rates {
        cells.push((rate, None));
        if rate > 0.0 {
            for kind in [
                CorruptionKind::FrameTruncate,
                CorruptionKind::FrameDuplicate,
                CorruptionKind::FrameReorder,
            ] {
                cells.push((rate, Some(kind)));
            }
        }
    }

    let options = SocketOptions::new(worker);
    let mut points = Vec::new();
    for (c, &(rate, kind)) in cells.iter().enumerate() {
        // Value-level cells verify checksums so every strike is repaired;
        // wire-level cells rely on the always-on framing CRC.
        let runner = DistributedAdmg::try_new(settings.with_checksums(kind.is_none()))?;
        let mut point = SocketChaosPoint {
            rate,
            kind,
            hours_attempted: hour_ids.len(),
            hours_converged: 0,
            hours_exhausted: 0,
            hours_bitwise_clean: 0,
            corruptions_injected: 0,
            corruptions_detected: 0,
            corruptions_delivered: 0,
            retransmissions: 0,
        };
        // Socket runs already fan out one OS process per node; run the
        // hours serially instead of stacking process fleets.
        for &t in &hour_ids {
            let cfg_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((c * hours + t) as u64);
            let mut cfg = CorruptionConfig::try_new(rate, cfg_seed)?;
            cfg.kind = kind;
            match runner.run_sockets_corrupt(
                &scenario.instances[t],
                Strategy::Hybrid,
                &options,
                cfg,
            ) {
                Ok(report) => {
                    point.hours_converged += usize::from(report.converged);
                    point.hours_bitwise_clean +=
                        usize::from(report.breakdown.ufc().to_bits() == baselines[t]);
                    let integrity = report.integrity.unwrap_or_default();
                    point.corruptions_injected += integrity.corruptions_injected;
                    point.corruptions_detected += integrity.corruptions_detected;
                    point.corruptions_delivered += integrity.corruptions_delivered;
                    point.retransmissions += integrity.checksum_retransmissions;
                }
                Err(CoreError::CorruptPayload { .. }) => point.hours_exhausted += 1,
                Err(e) => return Err(e),
            }
        }
        points.push(point);
    }
    Ok(SocketChaosStudy { points })
}

impl SocketChaosStudy {
    /// `true` when every hour of every cell converged onto the clean UFC
    /// bit-for-bit with nothing corrupt delivered — the sweep's headline
    /// guarantee.
    #[must_use]
    pub fn all_hours_bitwise_clean(&self) -> bool {
        self.points.iter().all(|p| {
            p.hours_converged == p.hours_attempted
                && p.hours_bitwise_clean == p.hours_attempted
                && p.corruptions_delivered == 0
        })
    }

    /// `true` when every wire-level cell detected (or structurally
    /// absorbed) exactly as many faults as it injected.
    #[must_use]
    pub fn wire_faults_all_caught(&self) -> bool {
        self.points
            .iter()
            .filter(|p| p.kind.is_some())
            .all(|p| p.corruptions_detected == p.corruptions_injected)
    }

    /// CSV with one row per cell; the kind column is 0 for value-level
    /// corruption, 1/2/3 for frame truncate/duplicate/reorder.
    #[must_use]
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new(&[
            "corruption_rate",
            "kind",
            "hours_converged",
            "hours_exhausted",
            "hours_bitwise_clean",
            "corruptions_injected",
            "corruptions_detected",
            "corruptions_delivered",
            "retransmissions",
        ]);
        for p in &self.points {
            let kind = match p.kind {
                None => 0.0,
                Some(CorruptionKind::FrameTruncate) => 1.0,
                Some(CorruptionKind::FrameDuplicate) => 2.0,
                Some(CorruptionKind::FrameReorder) => 3.0,
                Some(_) => -1.0,
            };
            csv.push_row(&[
                p.rate,
                kind,
                p.hours_converged as f64,
                p.hours_exhausted as f64,
                p.hours_bitwise_clean as f64,
                p.corruptions_injected as f64,
                p.corruptions_detected as f64,
                p.corruptions_delivered as f64,
                p.retransmissions as f64,
            ]);
        }
        csv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verified_runs_reach_the_clean_point_and_unverified_poison_is_typed() {
        let study = run_rates(
            crate::DEFAULT_SEED,
            2,
            AdmgSettings::default(),
            &[0.0, 1e-3],
        )
        .unwrap();
        // 2 rates × 2 engines × 2 postures.
        assert_eq!(study.points.len(), 8);
        assert!(study.verified_cells_clean());

        for p in &study.points {
            assert_eq!(
                p.hours_converged + p.hours_diverged + p.hours_exhausted,
                p.hours_attempted,
                "every hour ends in exactly one tallied state"
            );
            if p.rate == 0.0 {
                assert_eq!(p.hours_converged, p.hours_attempted);
                assert_eq!(p.corruptions_injected, 0);
                assert_eq!(p.max_abs_ufc_delta, 0.0);
            }
            if p.verified {
                assert_eq!(p.corruptions_delivered, 0);
                if p.rate > 0.0 {
                    assert!(p.corruptions_injected > 0, "rate 1e-3 must strike");
                    assert!(p.mean_extra_bytes > 0.0, "checksums cost bytes");
                }
            } else if p.rate > 0.0 {
                // Unverified poison was delivered or ended the hour with a
                // typed error; either way it is visible, never silent.
                assert!(
                    p.corruptions_delivered > 0 || p.hours_diverged + p.hours_exhausted > 0,
                    "delivered poison must be accounted"
                );
            }
        }

        // Both engines agree cell for cell.
        for pair in study.points.chunks(4) {
            let (lock_v, lock_u, thr_v, thr_u) = (pair[0], pair[1], pair[2], pair[3]);
            assert_eq!(lock_v.hours_converged, thr_v.hours_converged);
            assert_eq!(lock_v.corruptions_injected, thr_v.corruptions_injected);
            assert_eq!(lock_u.hours_diverged, thr_u.hours_diverged);
            assert_eq!(lock_u.corruptions_delivered, thr_u.corruptions_delivered);
        }
    }
}
