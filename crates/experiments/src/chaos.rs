//! Chaos study: link-level payload corruption vs the protocol's defenses.
//!
//! Geo-distributed WAN links do not just drop packets — they occasionally
//! deliver *wrong bytes* (bit rot, faulty NICs, middlebox bugs). This
//! extension sweeps seeded corruption rates over both distributed engines
//! in two postures: **verified** (CRC32-framed payloads, corrupt copies
//! detected on receive and retransmitted — the run must reach the clean
//! operating point bit-for-bit) and **unverified** (poison is delivered
//! and the driver's divergence gate is the only line of defense — runs
//! end converged, typed-diverged, or typed-exhausted, never panicked and
//! never silently wrong without the integrity counters saying so).

use ufc_core::{AdmgSettings, CoreError, Result, Strategy};
use ufc_distsim::{CorruptionConfig, DistributedAdmg, Runtime};
use ufc_model::scenario::ScenarioBuilder;
use ufc_traces::csv::Csv;

use crate::parallel::{default_threads, par_map};

/// Per-payload corruption probabilities swept by the study.
pub const CORRUPTION_RATES: [f64; 4] = [0.0, 1e-4, 1e-3, 1e-2];

/// Aggregate over all hours for one (rate, engine, posture) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPoint {
    /// Per-payload corruption probability.
    pub rate: f64,
    /// Execution engine the cell ran on.
    pub runtime: Runtime,
    /// Whether receivers verified CRC32 checksums.
    pub verified: bool,
    /// Hours attempted.
    pub hours_attempted: usize,
    /// Hours that converged.
    pub hours_converged: usize,
    /// Hours ended by the divergence gate (typed `Divergence`).
    pub hours_diverged: usize,
    /// Hours ended by retransmit-budget exhaustion (typed
    /// `CorruptPayload`).
    pub hours_exhausted: usize,
    /// Payloads corrupted on the wire.
    pub corruptions_injected: u64,
    /// Corruptions caught by verify-on-receive.
    pub corruptions_detected: u64,
    /// Corruptions delivered into the iterate stream (unverified only).
    pub corruptions_delivered: u64,
    /// Checksum-triggered retransmissions.
    pub retransmissions: u64,
    /// Mean wire-byte overhead vs the clean run, over converged hours
    /// (fraction; the checksum trailer plus resent frames).
    pub mean_extra_bytes: f64,
    /// Worst relative |UFC delta| vs the clean run over converged hours —
    /// must be 0 when `verified`.
    pub max_abs_ufc_delta: f64,
}

/// The full study result.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosStudy {
    /// One aggregate per (rate, engine, posture) cell.
    pub points: Vec<ChaosPoint>,
}

/// One hour's outcome (internal).
enum HourOutcome {
    Converged {
        integrity: ufc_core::telemetry::IntegrityCounters,
        extra_bytes: f64,
        rel_delta: f64,
    },
    Diverged,
    Exhausted,
}

/// Runs the sweep over `hours` hourly instances for every
/// [`CORRUPTION_RATES`] entry × engine × checksum posture. Typed
/// corruption/divergence failures end only their own hour and are
/// tallied; anything else propagates.
///
/// # Errors
///
/// Scenario construction or clean-run solver failures.
pub fn run(seed: u64, hours: usize, settings: AdmgSettings) -> Result<ChaosStudy> {
    run_rates(seed, hours, settings, &CORRUPTION_RATES)
}

/// [`run`] with a caller-chosen rate list (the `--quick` CI smoke uses a
/// shorter one).
///
/// # Errors
///
/// As for [`run`].
pub fn run_rates(
    seed: u64,
    hours: usize,
    settings: AdmgSettings,
    rates: &[f64],
) -> Result<ChaosStudy> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()
        .map_err(CoreError::Model)?;
    let hour_ids: Vec<usize> = (0..scenario.instances.len()).collect();

    // Clean per-hour baselines: the operating point every verified run
    // must reproduce and the byte count the overhead is measured against.
    let clean_runner = DistributedAdmg::try_new(settings)?;
    let baselines = par_map(&hour_ids, default_threads(), |_, &t| {
        clean_runner
            .run(&scenario.instances[t], Strategy::Hybrid, Runtime::Lockstep)
            .map(|r| (r.breakdown.ufc(), r.stats.total_bytes))
    });
    let baselines: Vec<(f64, usize)> = baselines.into_iter().collect::<Result<_>>()?;

    let mut points = Vec::new();
    for (r, &rate) in rates.iter().enumerate() {
        for runtime in [Runtime::Lockstep, Runtime::Threaded] {
            for verified in [true, false] {
                let runner = DistributedAdmg::try_new(settings.with_checksums(verified))?;
                let outcomes = par_map(&hour_ids, default_threads(), |_, &t| {
                    let inst = &scenario.instances[t];
                    // One independent, reproducible stream per (rate, hour).
                    let cfg_seed = seed
                        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        .wrapping_add((r * hours + t) as u64);
                    let cfg = CorruptionConfig::try_new(rate, cfg_seed)?;
                    match runner.run_corrupt(inst, Strategy::Hybrid, runtime, cfg) {
                        Ok(report) => {
                            let (clean_ufc, clean_bytes) = baselines[t];
                            let delta = report.breakdown.ufc() - clean_ufc;
                            Ok(HourOutcome::Converged {
                                integrity: report.integrity.unwrap_or_default(),
                                extra_bytes: (report.stats.total_bytes as f64 - clean_bytes as f64)
                                    / clean_bytes as f64,
                                rel_delta: delta.abs() / clean_ufc.abs().max(1.0),
                            })
                        }
                        Err(CoreError::Divergence { .. }) => Ok(HourOutcome::Diverged),
                        Err(CoreError::CorruptPayload { .. }) => Ok(HourOutcome::Exhausted),
                        Err(e) => Err(e),
                    }
                });

                let mut point = ChaosPoint {
                    rate,
                    runtime,
                    verified,
                    hours_attempted: hour_ids.len(),
                    hours_converged: 0,
                    hours_diverged: 0,
                    hours_exhausted: 0,
                    corruptions_injected: 0,
                    corruptions_detected: 0,
                    corruptions_delivered: 0,
                    retransmissions: 0,
                    mean_extra_bytes: 0.0,
                    max_abs_ufc_delta: 0.0,
                };
                let mut extra_sum = 0.0;
                for outcome in outcomes {
                    match outcome? {
                        HourOutcome::Converged {
                            integrity,
                            extra_bytes,
                            rel_delta,
                        } => {
                            point.hours_converged += 1;
                            point.corruptions_injected += integrity.corruptions_injected;
                            point.corruptions_detected += integrity.corruptions_detected;
                            point.corruptions_delivered += integrity.corruptions_delivered;
                            point.retransmissions += integrity.checksum_retransmissions;
                            extra_sum += extra_bytes;
                            point.max_abs_ufc_delta = point.max_abs_ufc_delta.max(rel_delta);
                        }
                        HourOutcome::Diverged => point.hours_diverged += 1,
                        HourOutcome::Exhausted => point.hours_exhausted += 1,
                    }
                }
                point.mean_extra_bytes = extra_sum / point.hours_converged.max(1) as f64;
                points.push(point);
            }
        }
    }
    Ok(ChaosStudy { points })
}

impl ChaosStudy {
    /// `true` when every verified cell converged every hour onto the
    /// clean operating point — the codec's headline guarantee.
    #[must_use]
    pub fn verified_cells_clean(&self) -> bool {
        self.points
            .iter()
            .filter(|p| p.verified)
            .all(|p| p.hours_converged == p.hours_attempted && p.max_abs_ufc_delta == 0.0)
    }

    /// CSV with one row per (rate, engine, posture) cell; the engine
    /// column is 0 for lockstep, 1 for threaded.
    #[must_use]
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new(&[
            "corruption_rate",
            "engine",
            "verified",
            "hours_converged",
            "hours_diverged",
            "hours_exhausted",
            "corruptions_injected",
            "corruptions_detected",
            "corruptions_delivered",
            "retransmissions",
            "mean_extra_bytes_pct",
            "max_abs_ufc_delta_pct",
        ]);
        for p in &self.points {
            csv.push_row(&[
                p.rate,
                f64::from(u8::from(p.runtime == Runtime::Threaded)),
                f64::from(u8::from(p.verified)),
                p.hours_converged as f64,
                p.hours_diverged as f64,
                p.hours_exhausted as f64,
                p.corruptions_injected as f64,
                p.corruptions_detected as f64,
                p.corruptions_delivered as f64,
                p.retransmissions as f64,
                100.0 * p.mean_extra_bytes,
                100.0 * p.max_abs_ufc_delta,
            ]);
        }
        csv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verified_runs_reach_the_clean_point_and_unverified_poison_is_typed() {
        let study = run_rates(
            crate::DEFAULT_SEED,
            2,
            AdmgSettings::default(),
            &[0.0, 1e-3],
        )
        .unwrap();
        // 2 rates × 2 engines × 2 postures.
        assert_eq!(study.points.len(), 8);
        assert!(study.verified_cells_clean());

        for p in &study.points {
            assert_eq!(
                p.hours_converged + p.hours_diverged + p.hours_exhausted,
                p.hours_attempted,
                "every hour ends in exactly one tallied state"
            );
            if p.rate == 0.0 {
                assert_eq!(p.hours_converged, p.hours_attempted);
                assert_eq!(p.corruptions_injected, 0);
                assert_eq!(p.max_abs_ufc_delta, 0.0);
            }
            if p.verified {
                assert_eq!(p.corruptions_delivered, 0);
                if p.rate > 0.0 {
                    assert!(p.corruptions_injected > 0, "rate 1e-3 must strike");
                    assert!(p.mean_extra_bytes > 0.0, "checksums cost bytes");
                }
            } else if p.rate > 0.0 {
                // Unverified poison was delivered or ended the hour with a
                // typed error; either way it is visible, never silent.
                assert!(
                    p.corruptions_delivered > 0 || p.hours_diverged + p.hours_exhausted > 0,
                    "delivered poison must be accounted"
                );
            }
        }

        // Both engines agree cell for cell.
        for pair in study.points.chunks(4) {
            let (lock_v, lock_u, thr_v, thr_u) = (pair[0], pair[1], pair[2], pair[3]);
            assert_eq!(lock_v.hours_converged, thr_v.hours_converged);
            assert_eq!(lock_v.corruptions_injected, thr_v.corruptions_injected);
            assert_eq!(lock_u.hours_diverged, thr_u.hours_diverged);
            assert_eq!(lock_u.corruptions_delivered, thr_u.corruptions_delivered);
        }
    }
}
