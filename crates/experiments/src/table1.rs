//! Table I / Fig. 1 — the paper's motivating single-datacenter study.
//!
//! A Facebook-like power-demand profile is priced over one week under three
//! procurement strategies at two sites:
//!
//! * **Grid** — every MWh at the local real-time price,
//! * **Fuel cell** — every MWh at the fixed `p₀ = 80 $/MWh`,
//! * **Hybrid** — hour by hour, whichever of the two is cheaper (this is
//!   the optimal single-DC policy because demand is inelastic here).
//!
//! Paper values: Dallas 9 644 / 27 957 / 9 387 $; San Jose
//! 28 470 / 27 957 / 18 250 $. The shape claims to reproduce: Fuel cell
//! identical across sites, Hybrid ≤ min(Grid, Fuel cell), grid cheap in
//! Dallas and expensive in San Jose.

use ufc_traces::csv::Csv;
use ufc_traces::facebook::FacebookProfile;
use ufc_traces::price::LmpModel;
use ufc_traces::{TraceRng, HOURS_PER_WEEK};

/// One site's weekly costs under the three strategies ($).
#[derive(Debug, Clone, PartialEq)]
pub struct SiteCosts {
    /// Site name.
    pub site: String,
    /// Grid-only cost.
    pub grid: f64,
    /// Fuel-cell-only cost.
    pub fuel_cell: f64,
    /// Hourly-arbitrage (hybrid) cost.
    pub hybrid: f64,
}

/// The full Table I result plus the Fig. 1 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Costs per site (Dallas, San Jose).
    pub sites: Vec<SiteCosts>,
    /// Hourly demand profile (MW) — Fig. 1 top.
    pub demand_mw: Vec<f64>,
    /// Hourly prices per site ($/MWh) — Fig. 1 bottom.
    pub prices: Vec<(String, Vec<f64>)>,
    /// Fuel-cell price used ($/MWh).
    pub fuel_cell_price: f64,
}

/// Runs the Table I experiment.
///
/// # Panics
///
/// Panics only on internal generator misconfiguration (the defaults are
/// valid).
#[must_use]
pub fn run(seed: u64) -> Table1 {
    let root = TraceRng::new(seed);
    let demand = FacebookProfile::default().generate(HOURS_PER_WEEK, &mut root.substream("fb"));
    let p0 = 80.0;
    let mut sites = Vec::new();
    let mut prices = Vec::new();
    for model in [LmpModel::dallas(), LmpModel::san_jose()] {
        let price = model.generate(
            HOURS_PER_WEEK,
            &mut root.substream(&format!("t1-{}", model.name)),
        );
        let grid: f64 = demand.iter().zip(&price).map(|(d, p)| d * p).sum();
        let fuel_cell: f64 = demand.iter().map(|d| d * p0).sum();
        let hybrid: f64 = demand.iter().zip(&price).map(|(d, p)| d * p.min(p0)).sum();
        sites.push(SiteCosts {
            site: model.name.clone(),
            grid,
            fuel_cell,
            hybrid,
        });
        prices.push((model.name.clone(), price));
    }
    Table1 {
        sites,
        demand_mw: demand,
        prices,
        fuel_cell_price: p0,
    }
}

impl Table1 {
    /// CSV of the cost table.
    #[must_use]
    pub fn costs_csv(&self) -> Csv {
        let mut csv = Csv::new(&["site_index", "grid", "fuel_cell", "hybrid"]);
        for (k, s) in self.sites.iter().enumerate() {
            csv.push_row(&[k as f64, s.grid, s.fuel_cell, s.hybrid]);
        }
        csv
    }

    /// CSV of the Fig. 1 series (demand + both price series).
    #[must_use]
    pub fn series_csv(&self) -> Csv {
        let mut csv = Csv::new(&["hour", "demand_mw", "price_dallas", "price_san_jose"]);
        for t in 0..self.demand_mw.len() {
            csv.push_row(&[
                t as f64,
                self.demand_mw[t],
                self.prices[0].1[t],
                self.prices[1].1[t],
            ]);
        }
        csv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_claims_hold() {
        let t = run(crate::DEFAULT_SEED);
        let dallas = &t.sites[0];
        let sj = &t.sites[1];
        assert_eq!(dallas.site, "Dallas");
        assert_eq!(sj.site, "San Jose");
        // Fuel-cell cost identical across sites (same demand, fixed price).
        assert!((dallas.fuel_cell - sj.fuel_cell).abs() < 1e-9);
        // Hybrid never exceeds either pure strategy.
        for s in &t.sites {
            assert!(s.hybrid <= s.grid + 1e-9);
            assert!(s.hybrid <= s.fuel_cell + 1e-9);
        }
        // Dallas grid is cheap (fuel cells barely help); San Jose grid is
        // expensive (hybrid saves a lot).
        assert!(
            dallas.grid < 0.6 * dallas.fuel_cell,
            "Dallas grid {}",
            dallas.grid
        );
        assert!(sj.grid > 0.85 * sj.fuel_cell, "San Jose grid {}", sj.grid);
        assert!(sj.hybrid < 0.8 * sj.grid, "San Jose hybrid {}", sj.hybrid);
    }

    #[test]
    fn magnitudes_near_paper() {
        // Not exact (synthetic traces), but the right order: Dallas grid
        // ≈ $9.6k, fuel cell ≈ $27.9k, San Jose grid ≈ $28.5k.
        let t = run(crate::DEFAULT_SEED);
        let dallas = &t.sites[0];
        let sj = &t.sites[1];
        assert!(
            (5_000.0..16_000.0).contains(&dallas.grid),
            "{}",
            dallas.grid
        );
        assert!(
            (26_000.0..30_000.0).contains(&dallas.fuel_cell),
            "{}",
            dallas.fuel_cell
        );
        assert!((20_000.0..40_000.0).contains(&sj.grid), "{}", sj.grid);
    }

    #[test]
    fn csvs_have_expected_shapes() {
        let t = run(1);
        assert_eq!(t.costs_csv().len(), 2);
        assert_eq!(t.series_csv().len(), 168);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
