//! Aligned-text tables and CSV file output for the experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use ufc_traces::csv::Csv;

/// Renders a text table with right-aligned numeric columns.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
#[must_use]
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (k, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if k > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:>w$}", w = *w);
        }
        out.push('\n');
    };
    write_row(
        &mut out,
        &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Formats a float with the given number of decimals.
#[must_use]
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Writes a CSV document into `dir/name.csv`, creating `dir` if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(dir: &Path, name: &str, csv: &Csv) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{name}.csv")), csv.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = text_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["long-name".into(), "22.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have equal width.
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("22.5"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.423), "42.3%");
        assert_eq!(pct(-1.5), "-150.0%");
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("ufc-report-test");
        let mut csv = Csv::new(&["x"]);
        csv.push_row(&[1.0]);
        write_csv(&dir, "t", &csv).unwrap();
        let s = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(s, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let _ = text_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
