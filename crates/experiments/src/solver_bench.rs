//! Wall-clock benchmark of the ADM-G hot path (`repro bench`).
//!
//! The `admg_scaling` workload solves a run of consecutive paper-default
//! hourly instances three ways:
//!
//! 1. **baseline** — 1 thread, factorization caching off: the pre-caching
//!    solver (every QP re-assembles and re-factors its KKT system, every
//!    block cold-starts).
//! 2. **sequential** — 1 thread, caching + warm starts on. Isolates the
//!    algorithmic win; the acceptance bar is *no regression* here.
//! 3. **parallel** — `threads` workers, caching + warm starts on. The
//!    headline configuration written to `BENCH_solver.json`.
//!
//! Results go through [`BenchReport::to_json`] — a hand-rolled writer, so
//! the harness stays dependency-free.

use std::time::Instant;

use ufc_core::{AdmgSettings, AdmgSolver, Strategy};
use ufc_model::scenario::ScenarioBuilder;
use ufc_model::UfcInstance;

/// One timed configuration of the solver.
#[derive(Debug, Clone, Copy)]
pub struct BenchLeg {
    /// Worker threads used.
    pub threads: usize,
    /// Whether factorization caching / warm starts were enabled.
    pub cached: bool,
    /// Total wall-clock across the workload (milliseconds).
    pub wall_ms: f64,
    /// Total ADM-G iterations across the workload.
    pub iters: usize,
}

/// The full three-leg comparison.
#[derive(Debug, Clone, Copy)]
pub struct BenchReport {
    /// Hours (instances) in the workload.
    pub hours: usize,
    /// Pre-caching sequential solver.
    pub baseline: BenchLeg,
    /// Cached solver at 1 thread.
    pub sequential: BenchLeg,
    /// Cached solver at the requested thread count.
    pub parallel: BenchLeg,
}

impl BenchReport {
    /// Headline speedup: baseline wall-clock over parallel wall-clock.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline.wall_ms / self.parallel.wall_ms
    }

    /// Single-thread speedup: baseline over cached-sequential (must be
    /// ≥ 1 — caching is not allowed to cost anything at 1 thread).
    #[must_use]
    pub fn sequential_speedup(&self) -> f64 {
        self.baseline.wall_ms / self.sequential.wall_ms
    }

    /// Renders the report as a small JSON object (`BENCH_solver.json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"workload\": \"admg_scaling\",\n  \"hours\": {},\n  \"threads\": {},\n  \"wall_ms\": {:.3},\n  \"iters\": {},\n  \"speedup\": {:.3},\n  \"baseline_wall_ms\": {:.3},\n  \"sequential_wall_ms\": {:.3},\n  \"sequential_speedup\": {:.3}\n}}\n",
            self.hours,
            self.parallel.threads,
            self.parallel.wall_ms,
            self.parallel.iters,
            self.speedup(),
            self.baseline.wall_ms,
            self.sequential.wall_ms,
            self.sequential_speedup(),
        )
    }
}

/// Front-ends in the `admg_scaling` workload. The paper's evaluation uses
/// 10; the bench tiles the routing dimension up so the per-datacenter
/// a-QP (one variable per front-end) dominates each iteration the way it
/// would in a large deployment.
pub const SCALING_FRONTENDS: usize = 32;

/// Widens an hourly instance to `m_wide` front-ends by tiling the
/// paper-default front-end set: arrivals are rescaled so the total
/// workload is unchanged, and each replica's latency row is deterministically
/// perturbed so no two front-ends are numerically identical.
fn widen(inst: &UfcInstance, m_wide: usize) -> Result<UfcInstance, ufc_model::ModelError> {
    let m = inst.arrivals.len();
    let scale = m as f64 / m_wide as f64;
    let arrivals: Vec<f64> = (0..m_wide).map(|i| inst.arrivals[i % m] * scale).collect();
    let latency_s: Vec<Vec<f64>> = (0..m_wide)
        .map(|i| {
            let jitter = 1.0 + 1e-3 * (i / m) as f64;
            inst.latency_s[i % m].iter().map(|&l| l * jitter).collect()
        })
        .collect();
    UfcInstance::new(
        arrivals,
        inst.capacities.clone(),
        inst.alpha.clone(),
        inst.beta.clone(),
        inst.mu_max.clone(),
        inst.grid_price.clone(),
        inst.fuel_cell_price,
        inst.carbon_t_per_mwh.clone(),
        latency_s,
        inst.weight_per_server,
        inst.emission_cost.clone(),
        inst.slot_hours,
    )
}

/// Builds the `admg_scaling` workload: `hours` consecutive paper-style
/// hourly instances widened to [`SCALING_FRONTENDS`] front-ends
/// (× 4 datacenters).
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn admg_scaling(seed: u64, hours: usize) -> Result<Vec<UfcInstance>, ufc_model::ModelError> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()?;
    scenario
        .instances
        .iter()
        .map(|inst| widen(inst, SCALING_FRONTENDS))
        .collect()
}

/// Timed repetitions per leg; the fastest repetition is reported, which
/// filters out scheduler and frequency-scaling noise.
const REPS: usize = 3;

/// Solves every instance with the given settings and returns the timed leg.
fn time_leg(instances: &[UfcInstance], settings: AdmgSettings, cached: bool) -> BenchLeg {
    let solver = AdmgSolver::new(settings);
    let mut best_ms = f64::INFINITY;
    let mut iters = 0usize;
    for _ in 0..REPS {
        let start = Instant::now();
        iters = 0;
        for inst in instances {
            let sol = solver
                .solve(inst, Strategy::Hybrid)
                .expect("bench solve failed");
            iters += sol.iterations;
        }
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    BenchLeg {
        threads: settings.num_threads.max(1),
        cached,
        wall_ms: best_ms,
        iters,
    }
}

/// Runs the three-leg benchmark on the `admg_scaling` workload.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(seed: u64, hours: usize, threads: usize) -> Result<BenchReport, ufc_model::ModelError> {
    let instances = admg_scaling(seed, hours)?;
    let base = AdmgSettings::default()
        .with_threads(1)
        .with_factorization_caching(false);
    let seq = AdmgSettings::default()
        .with_threads(1)
        .with_factorization_caching(true);
    let par = AdmgSettings::default()
        .with_threads(threads)
        .with_factorization_caching(true);
    // Warm-up pass so first-touch effects (page faults, lazy init) land
    // outside every timed leg equally.
    let _ = time_leg(&instances[..1.min(instances.len())], seq, true);
    Ok(BenchReport {
        hours: instances.len(),
        baseline: time_leg(&instances, base, false),
        sequential: time_leg(&instances, seq, true),
        parallel: time_leg(&instances, par, true),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_consistent_report() {
        let report = run(2012, 1, 2).unwrap();
        assert_eq!(report.hours, 1);
        assert!(report.baseline.wall_ms > 0.0);
        assert!(report.parallel.wall_ms > 0.0);
        // Caching is bit-transparent per solve, so all legs agree on the
        // iterate path only up to warm-start effects; iteration counts must
        // still be positive and the cached legs identical to each other.
        assert_eq!(report.sequential.iters, report.parallel.iters);
        let json = report.to_json();
        assert!(json.contains("\"wall_ms\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"threads\": 2"));
    }
}
