//! Wall-clock benchmark of the ADM-G hot path (`repro bench`).
//!
//! The `admg_scaling` workload solves a run of consecutive paper-default
//! hourly instances three ways:
//!
//! 1. **baseline** — 1 thread, factorization caching off: the pre-caching
//!    solver (every QP re-assembles and re-factors its KKT system, every
//!    block cold-starts).
//! 2. **sequential** — 1 thread, caching + warm starts on. Isolates the
//!    algorithmic win; the acceptance bar is *no regression* here.
//! 3. **parallel** — `threads` workers, caching + warm starts on. The
//!    headline configuration written to `BENCH_solver.json`.
//!
//! On top of the three-leg seed-size comparison, the bench walks a
//! **size trajectory** (front-ends × datacenters, up to 1024 × 32, one
//! hour per size, single repetition): each size is timed with every fast
//! path engaged (caching + warm starts + rank-1 KKT + blocked
//! factorizations), and sizes up to [`DENSE_CEILING`] front-ends are also
//! timed with the rank-1 path off, yielding a measured dense-vs-rank-1
//! speedup. Beyond the ceiling the dense reference is intractable by
//! construction (`O(n³)` per working-set change) — those entries report
//! the fast-path wall-clock only and the JSON says so explicitly with a
//! `null` instead of a silently extrapolated number.
//!
//! Results go through [`BenchReport::to_json`] — a hand-rolled writer, so
//! the harness stays dependency-free.

use std::time::Instant;

use ufc_core::{AdmgSettings, AdmgSolver, Strategy};
use ufc_model::scenario::ScenarioBuilder;
use ufc_model::UfcInstance;

/// One timed configuration of the solver.
#[derive(Debug, Clone, Copy)]
pub struct BenchLeg {
    /// Worker threads used.
    pub threads: usize,
    /// Whether factorization caching / warm starts were enabled.
    pub cached: bool,
    /// Total wall-clock across the workload (milliseconds).
    pub wall_ms: f64,
    /// Total ADM-G iterations across the workload.
    pub iters: usize,
}

/// One instance size of the scaling trajectory, timed with every fast path
/// engaged (and, where tractable, with the dense reference KKT path).
#[derive(Debug, Clone, Copy)]
pub struct SizeLeg {
    /// Front-ends (`m`).
    pub frontends: usize,
    /// Datacenters (`n`).
    pub datacenters: usize,
    /// Wall-clock of the fast configuration (milliseconds, one hour,
    /// single repetition).
    pub wall_ms: f64,
    /// ADM-G iterations of the fast configuration.
    pub iters: usize,
    /// Wall-clock with the rank-1 fast path off (dense cached KKT solves);
    /// `None` above [`DENSE_CEILING`] front-ends, where the dense path is
    /// intractable.
    pub dense_wall_ms: Option<f64>,
    /// Iterations of the dense leg, when it ran.
    pub dense_iters: Option<usize>,
}

impl SizeLeg {
    /// Fast-path wall-clock per ADM-G iteration (milliseconds).
    #[must_use]
    pub fn per_iter_ms(&self) -> f64 {
        self.wall_ms / self.iters.max(1) as f64
    }

    /// Measured dense-over-fast speedup, when the dense leg ran.
    #[must_use]
    pub fn dense_speedup(&self) -> Option<f64> {
        self.dense_wall_ms.map(|d| d / self.wall_ms)
    }
}

/// Per-iteration latency of the multi-process socket engine next to the
/// in-memory threaded engine, measured on one paper-default hour.
#[derive(Debug, Clone, Copy)]
pub struct SocketLatency {
    /// Threaded-engine wall-clock (milliseconds).
    pub threaded_wall_ms: f64,
    /// Socket-engine wall-clock (milliseconds), including process spawn.
    pub socket_wall_ms: f64,
    /// Iterations of the socket run (bit-identical engines, so the
    /// threaded run performs the same count).
    pub iterations: usize,
}

impl SocketLatency {
    /// Threaded-engine milliseconds per ADM-G iteration.
    #[must_use]
    pub fn threaded_per_iter_ms(&self) -> f64 {
        self.threaded_wall_ms / self.iterations.max(1) as f64
    }

    /// Socket-engine milliseconds per ADM-G iteration.
    #[must_use]
    pub fn socket_per_iter_ms(&self) -> f64 {
        self.socket_wall_ms / self.iterations.max(1) as f64
    }

    /// Socket-over-threaded per-iteration overhead factor.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        self.socket_per_iter_ms() / self.threaded_per_iter_ms()
    }
}

/// The full comparison: the three seed-size legs, the size trajectory, and
/// (when the `ufc-node` worker binary is available) the socket-engine
/// per-iteration latency.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Hours (instances) in the workload.
    pub hours: usize,
    /// Pre-caching sequential solver.
    pub baseline: BenchLeg,
    /// Cached solver at 1 thread.
    pub sequential: BenchLeg,
    /// Cached solver at the requested thread count.
    pub parallel: BenchLeg,
    /// The size trajectory (empty when not requested).
    pub sizes: Vec<SizeLeg>,
    /// Socket-vs-threaded per-iteration latency; `None` when the worker
    /// binary is unavailable (the bench then skips the measurement rather
    /// than failing).
    pub socket: Option<SocketLatency>,
}

impl BenchReport {
    /// Headline speedup: baseline wall-clock over parallel wall-clock.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline.wall_ms / self.parallel.wall_ms
    }

    /// Single-thread speedup: baseline over cached-sequential (must be
    /// ≥ 1 — caching is not allowed to cost anything at 1 thread).
    #[must_use]
    pub fn sequential_speedup(&self) -> f64 {
        self.baseline.wall_ms / self.sequential.wall_ms
    }

    /// Renders the report as a small JSON object (`BENCH_solver.json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"workload\": \"admg_scaling\",\n  \"hours\": {},\n  \"threads\": {},\n  \"wall_ms\": {:.3},\n  \"iters\": {},\n  \"speedup\": {:.3},\n  \"baseline_wall_ms\": {:.3},\n  \"sequential_wall_ms\": {:.3},\n  \"sequential_speedup\": {:.3},\n",
            self.hours,
            self.parallel.threads,
            self.parallel.wall_ms,
            self.parallel.iters,
            self.speedup(),
            self.baseline.wall_ms,
            self.sequential.wall_ms,
            self.sequential_speedup(),
        );
        out.push_str("  \"sizes\": [");
        for (k, leg) in self.sizes.iter().enumerate() {
            let dense = match leg.dense_wall_ms {
                Some(d) => format!("{d:.3}"),
                None => "null".to_owned(),
            };
            let speedup = match leg.dense_speedup() {
                Some(s) => format!("{s:.3}"),
                None => "null".to_owned(),
            };
            out.push_str(&format!(
                "{}\n    {{\"frontends\": {}, \"datacenters\": {}, \"wall_ms\": {:.3}, \"iters\": {}, \"per_iter_ms\": {:.4}, \"dense_wall_ms\": {}, \"dense_speedup\": {}}}",
                if k == 0 { "" } else { "," },
                leg.frontends,
                leg.datacenters,
                leg.wall_ms,
                leg.iters,
                leg.per_iter_ms(),
                dense,
                speedup,
            ));
        }
        if self.sizes.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        match &self.socket {
            Some(s) => out.push_str(&format!(
                "  \"socket_engine\": {{\"iterations\": {}, \"threaded_per_iter_ms\": {:.4}, \"socket_per_iter_ms\": {:.4}, \"overhead\": {:.3}}}\n",
                s.iterations,
                s.threaded_per_iter_ms(),
                s.socket_per_iter_ms(),
                s.overhead(),
            )),
            None => out.push_str("  \"socket_engine\": null\n"),
        }
        out.push_str("}\n");
        out
    }
}

/// Front-ends in the `admg_scaling` workload. The paper's evaluation uses
/// 10; the bench tiles the routing dimension up so the per-datacenter
/// a-QP (one variable per front-end) dominates each iteration the way it
/// would in a large deployment.
pub const SCALING_FRONTENDS: usize = 32;

/// Widens an hourly instance to `m_wide` front-ends by tiling the
/// paper-default front-end set: arrivals are rescaled so the total
/// workload is unchanged, and each replica's latency row is deterministically
/// perturbed so no two front-ends are numerically identical.
fn widen(inst: &UfcInstance, m_wide: usize) -> Result<UfcInstance, ufc_model::ModelError> {
    let m = inst.arrivals.len();
    let scale = m as f64 / m_wide as f64;
    let arrivals: Vec<f64> = (0..m_wide).map(|i| inst.arrivals[i % m] * scale).collect();
    let latency_s: Vec<Vec<f64>> = (0..m_wide)
        .map(|i| {
            let jitter = 1.0 + 1e-3 * (i / m) as f64;
            inst.latency_s[i % m].iter().map(|&l| l * jitter).collect()
        })
        .collect();
    UfcInstance::new(
        arrivals,
        inst.capacities.clone(),
        inst.alpha.clone(),
        inst.beta.clone(),
        inst.mu_max.clone(),
        inst.grid_price.clone(),
        inst.fuel_cell_price,
        inst.carbon_t_per_mwh.clone(),
        latency_s,
        inst.weight_per_server,
        inst.emission_cost.clone(),
        inst.slot_hours,
    )
}

/// Widens an hourly instance to `n_wide` datacenters by tiling the
/// paper-default datacenter set. Per-site quantities that represent real
/// capacity (capacities, idle power α, fuel-cell cap μ_max) are rescaled by
/// `n/n_wide` so the fleet total is unchanged; per-unit quantities (β,
/// prices, carbon rates, latencies) are tiled, with prices and latencies
/// deterministically perturbed so no two datacenters are numerically
/// identical.
fn widen_datacenters(
    inst: &UfcInstance,
    n_wide: usize,
) -> Result<UfcInstance, ufc_model::ModelError> {
    let n = inst.capacities.len();
    let scale = n as f64 / n_wide as f64;
    let jitter = |j: usize| 1.0 + 1e-3 * (j / n) as f64;
    let tile_scaled =
        |src: &[f64]| -> Vec<f64> { (0..n_wide).map(|j| src[j % n] * scale).collect() };
    let tile_jittered =
        |src: &[f64]| -> Vec<f64> { (0..n_wide).map(|j| src[j % n] * jitter(j)).collect() };
    let latency_s: Vec<Vec<f64>> = inst
        .latency_s
        .iter()
        .map(|row| (0..n_wide).map(|j| row[j % n] * jitter(j)).collect())
        .collect();
    UfcInstance::new(
        inst.arrivals.clone(),
        tile_scaled(&inst.capacities),
        tile_scaled(&inst.alpha),
        (0..n_wide).map(|j| inst.beta[j % n]).collect(),
        tile_scaled(&inst.mu_max),
        tile_jittered(&inst.grid_price),
        inst.fuel_cell_price,
        (0..n_wide).map(|j| inst.carbon_t_per_mwh[j % n]).collect(),
        latency_s,
        inst.weight_per_server,
        (0..n_wide)
            .map(|j| inst.emission_cost[j % n].clone())
            .collect(),
        inst.slot_hours,
    )
}

/// Builds the `admg_scaling` workload: `hours` consecutive paper-style
/// hourly instances widened to [`SCALING_FRONTENDS`] front-ends
/// (× 4 datacenters).
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn admg_scaling(seed: u64, hours: usize) -> Result<Vec<UfcInstance>, ufc_model::ModelError> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()?;
    scenario
        .instances
        .iter()
        .map(|inst| widen(inst, SCALING_FRONTENDS))
        .collect()
}

/// Builds the scaling workload at an arbitrary `m_wide × n_wide` size by
/// widening both axes of the paper-default hourly instances.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn admg_scaling_sized(
    seed: u64,
    hours: usize,
    m_wide: usize,
    n_wide: usize,
) -> Result<Vec<UfcInstance>, ufc_model::ModelError> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()?;
    scenario
        .instances
        .iter()
        .map(|inst| widen(&widen_datacenters(inst, n_wide)?, m_wide))
        .collect()
}

/// The scaling trajectory: (front-ends, datacenters) per size, from the
/// seed-bench size up to the ~100×-scaled 1024 × 32 instance.
pub const TRAJECTORY: &[(usize, usize)] = &[(32, 4), (128, 8), (512, 16), (1024, 32)];

/// The CI smoke trajectory: one genuinely scaled size, chosen *above*
/// [`DENSE_CEILING`] so the smoke times only the fast path — the dense
/// reference leg at 128 front-ends alone takes ~9 minutes and belongs in
/// the full trajectory, not an interactive `repro bench --quick`.
pub const QUICK_TRAJECTORY: &[(usize, usize)] = &[(256, 8)];

/// Largest front-end count at which the dense reference leg (rank-1 fast
/// path off) is still timed. Beyond this the dense path's `O(n³)`-per-
/// working-set-change cost makes the leg intractable — the trajectory
/// reports `null` for it rather than an extrapolated guess.
pub const DENSE_CEILING: usize = 128;

/// Timed repetitions per leg; the fastest repetition is reported, which
/// filters out scheduler and frequency-scaling noise.
const REPS: usize = 3;

/// Solves every instance with the given settings and returns the timed leg.
fn time_leg(instances: &[UfcInstance], settings: AdmgSettings, cached: bool) -> BenchLeg {
    let solver = AdmgSolver::new(settings);
    let mut best_ms = f64::INFINITY;
    let mut iters = 0usize;
    for _ in 0..REPS {
        let start = Instant::now();
        iters = 0;
        for inst in instances {
            let sol = solver
                .solve(inst, Strategy::Hybrid)
                .expect("bench solve failed");
            iters += sol.iterations;
        }
        best_ms = best_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    BenchLeg {
        threads: settings.num_threads.max(1),
        cached,
        wall_ms: best_ms,
        iters,
    }
}

/// Times one pass over the instances (no repetition — the trajectory's
/// larger sizes are too slow to triplicate and their runtimes are long
/// enough to swamp scheduler noise anyway).
fn time_once(instances: &[UfcInstance], settings: AdmgSettings) -> (f64, usize) {
    let solver = AdmgSolver::new(settings);
    let start = Instant::now();
    let mut iters = 0usize;
    for inst in instances {
        let sol = solver
            .solve(inst, Strategy::Hybrid)
            .expect("bench solve failed");
        iters += sol.iterations;
    }
    (start.elapsed().as_secs_f64() * 1e3, iters)
}

/// Walks the size trajectory: one hour per size, fast configuration
/// (caching + rank-1 + blocked) at `threads` workers, plus the dense
/// reference leg up to [`DENSE_CEILING`] front-ends.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn size_trajectory(
    seed: u64,
    threads: usize,
    sizes: &[(usize, usize)],
) -> Result<Vec<SizeLeg>, ufc_model::ModelError> {
    let fast = AdmgSettings::default()
        .with_threads(threads)
        .with_factorization_caching(true)
        .with_rank1_kkt(true)
        .with_blocked_factorizations(true);
    let dense = AdmgSettings::default()
        .with_threads(threads)
        .with_factorization_caching(true);
    let mut legs = Vec::with_capacity(sizes.len());
    for &(m, n) in sizes {
        let instances = admg_scaling_sized(seed, 1, m, n)?;
        let (wall_ms, iters) = time_once(&instances, fast);
        let (dense_wall_ms, dense_iters) = if m <= DENSE_CEILING {
            let (w, i) = time_once(&instances, dense);
            (Some(w), Some(i))
        } else {
            (None, None)
        };
        legs.push(SizeLeg {
            frontends: m,
            datacenters: n,
            wall_ms,
            iters,
            dense_wall_ms,
            dense_iters,
        });
    }
    Ok(legs)
}

/// Measures the socket engine's per-iteration latency against the threaded
/// engine on one paper-default hour. Returns `Ok(None)` when the
/// `ufc-node` worker binary is not present next to the running executable
/// (the bench degrades gracefully instead of failing).
///
/// # Errors
///
/// Scenario-construction or engine failures (a missing worker binary is
/// *not* an error).
pub fn socket_latency(seed: u64) -> ufc_core::Result<Option<SocketLatency>> {
    use ufc_distsim::{DistributedAdmg, Runtime, SocketOptions};

    let Ok(worker) = crate::sockets::locate_worker() else {
        return Ok(None);
    };
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(1)
        .build()
        .map_err(ufc_core::CoreError::Model)?;
    let instance = &scenario.instances[0];
    let runner = DistributedAdmg::try_new(AdmgSettings::default())?;
    let start = Instant::now();
    let threaded = runner.run(instance, Strategy::Hybrid, Runtime::Threaded)?;
    let threaded_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let socket = runner.run_sockets(instance, Strategy::Hybrid, &SocketOptions::new(&worker))?;
    let socket_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    debug_assert_eq!(threaded.iterations, socket.iterations);
    Ok(Some(SocketLatency {
        threaded_wall_ms,
        socket_wall_ms,
        iterations: socket.iterations.max(threaded.iterations),
    }))
}

/// Runs the three-leg benchmark on the `admg_scaling` workload, then walks
/// the requested size trajectory (pass `&[]` to skip it). The socket
/// latency section is left `None`; callers with a worker binary stitch it
/// in via [`socket_latency`].
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(
    seed: u64,
    hours: usize,
    threads: usize,
    sizes: &[(usize, usize)],
) -> Result<BenchReport, ufc_model::ModelError> {
    let instances = admg_scaling(seed, hours)?;
    let base = AdmgSettings::default()
        .with_threads(1)
        .with_factorization_caching(false);
    let seq = AdmgSettings::default()
        .with_threads(1)
        .with_factorization_caching(true);
    let par = AdmgSettings::default()
        .with_threads(threads)
        .with_factorization_caching(true);
    // Warm-up pass so first-touch effects (page faults, lazy init) land
    // outside every timed leg equally.
    let _ = time_leg(&instances[..1.min(instances.len())], seq, true);
    Ok(BenchReport {
        hours: instances.len(),
        baseline: time_leg(&instances, base, false),
        sequential: time_leg(&instances, seq, true),
        parallel: time_leg(&instances, par, true),
        sizes: size_trajectory(seed, threads, sizes)?,
        socket: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_consistent_report() {
        let report = run(2012, 1, 2, &[]).unwrap();
        assert_eq!(report.hours, 1);
        assert!(report.baseline.wall_ms > 0.0);
        assert!(report.parallel.wall_ms > 0.0);
        // Caching is bit-transparent per solve, so all legs agree on the
        // iterate path only up to warm-start effects; iteration counts must
        // still be positive and the cached legs identical to each other.
        assert_eq!(report.sequential.iters, report.parallel.iters);
        let json = report.to_json();
        assert!(json.contains("\"wall_ms\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"sizes\": []"));
        assert!(json.contains("\"socket_engine\": null"));
    }

    #[test]
    fn sized_workload_scales_both_axes() {
        let instances = admg_scaling_sized(2012, 1, 64, 8).unwrap();
        assert_eq!(instances.len(), 1);
        let inst = &instances[0];
        assert_eq!(inst.m_frontends(), 64);
        assert_eq!(inst.n_datacenters(), 8);
        // Widening the datacenter axis preserves the fleet totals of the
        // capacity-like quantities (capacities, fuel-cell caps).
        let seed = ScenarioBuilder::paper_default()
            .seed(2012)
            .hours(1)
            .build()
            .unwrap();
        let base = &seed.instances[0];
        let total = |v: &[f64]| -> f64 { v.iter().sum() };
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + b.abs());
        assert!(close(total(&inst.capacities), total(&base.capacities)));
        assert!(close(total(&inst.mu_max), total(&base.mu_max)));
        // No two datacenters are numerically identical.
        for j in 4..8 {
            assert!(inst.grid_price[j] != inst.grid_price[j - 4]);
        }
    }

    #[test]
    fn size_trajectory_reports_dense_leg_only_below_ceiling() {
        let legs = size_trajectory(2012, 1, &[(32, 4), (256, 8)]).unwrap();
        assert_eq!(legs.len(), 2);
        assert!(legs[0].dense_wall_ms.is_some(), "32 ≤ ceiling: dense timed");
        assert!(legs[1].dense_wall_ms.is_none(), "256 > ceiling: dense null");
        assert!(legs.iter().all(|l| l.wall_ms > 0.0 && l.iters > 0));
        let report = BenchReport {
            hours: 1,
            baseline: BenchLeg {
                threads: 1,
                cached: false,
                wall_ms: 2.0,
                iters: 1,
            },
            sequential: BenchLeg {
                threads: 1,
                cached: true,
                wall_ms: 1.0,
                iters: 1,
            },
            parallel: BenchLeg {
                threads: 1,
                cached: true,
                wall_ms: 1.0,
                iters: 1,
            },
            sizes: legs,
            socket: None,
        };
        let json = report.to_json();
        assert!(json.contains("\"frontends\": 256"));
        assert!(json.contains("\"dense_wall_ms\": null"));
        assert!(json.contains("\"dense_speedup\": null"));
    }
}
