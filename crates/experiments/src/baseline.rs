//! Baseline comparison — the quantitative version of the paper's Fig.-11
//! remark that ADM-G "remarkably outperforms some gradient or projection
//! based methods that are reported to take hundreds of iterations".
//!
//! Runs distributed ADM-G and the dual-subgradient baseline
//! (`ufc_core::baseline`) on the same hourly instances at the same
//! scale-relative residual tolerances and reports iterations and the final
//! UFC of each.

use ufc_core::baseline::{self, SubgradientSettings};
use ufc_core::{AdmgSettings, AdmgSolver, CoreError, Result, Strategy};
use ufc_model::scenario::ScenarioBuilder;
use ufc_traces::csv::Csv;

use crate::parallel::{default_threads, par_map};

/// One hour's head-to-head result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourComparison {
    /// Hour index.
    pub hour: usize,
    /// ADM-G iterations to convergence.
    pub admg_iterations: usize,
    /// Dual-subgradient iterations to convergence (or the cap).
    pub subgradient_iterations: usize,
    /// ADM-G final UFC ($).
    pub admg_ufc: f64,
    /// Subgradient final UFC ($).
    pub subgradient_ufc: f64,
    /// Whether the subgradient run converged before its cap.
    pub subgradient_converged: bool,
}

/// The full comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineComparison {
    /// Per-hour results.
    pub hours: Vec<HourComparison>,
}

/// Runs both methods over `hours` hours of the default scenario.
///
/// # Errors
///
/// Propagates scenario or solver failures.
pub fn run(seed: u64, hours: usize, settings: AdmgSettings) -> Result<BaselineComparison> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()
        .map_err(CoreError::Model)?;
    let solver = AdmgSolver::new(settings);
    let sub_settings = SubgradientSettings {
        tolerances: settings,
        ..SubgradientSettings::default()
    };
    let rows = par_map(&scenario.instances, default_threads(), |t, inst| {
        let admg = solver.solve(inst, Strategy::Hybrid)?;
        let sub = baseline::solve(inst, Strategy::Hybrid, &sub_settings)?;
        Ok::<HourComparison, CoreError>(HourComparison {
            hour: t,
            admg_iterations: admg.iterations,
            subgradient_iterations: sub.iterations,
            admg_ufc: admg.breakdown.ufc(),
            subgradient_ufc: sub.breakdown.ufc(),
            subgradient_converged: sub.converged,
        })
    });
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(r?);
    }
    Ok(BaselineComparison { hours: out })
}

impl BaselineComparison {
    /// Mean iteration counts `(admg, subgradient)`.
    #[must_use]
    pub fn mean_iterations(&self) -> (f64, f64) {
        let n = self.hours.len().max(1) as f64;
        (
            self.hours
                .iter()
                .map(|h| h.admg_iterations as f64)
                .sum::<f64>()
                / n,
            self.hours
                .iter()
                .map(|h| h.subgradient_iterations as f64)
                .sum::<f64>()
                / n,
        )
    }

    /// Mean relative UFC gap of the baseline below the ADM-G solution.
    #[must_use]
    pub fn mean_ufc_gap(&self) -> f64 {
        let n = self.hours.len().max(1) as f64;
        self.hours
            .iter()
            .map(|h| (h.admg_ufc - h.subgradient_ufc).abs() / h.admg_ufc.abs().max(1.0))
            .sum::<f64>()
            / n
    }

    /// CSV with one row per hour.
    #[must_use]
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new(&[
            "hour",
            "admg_iterations",
            "subgradient_iterations",
            "admg_ufc",
            "subgradient_ufc",
        ]);
        for h in &self.hours {
            csv.push_row(&[
                h.hour as f64,
                h.admg_iterations as f64,
                h.subgradient_iterations as f64,
                h.admg_ufc,
                h.subgradient_ufc,
            ]);
        }
        csv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admg_beats_subgradient_by_a_wide_margin() {
        let cmp = run(crate::DEFAULT_SEED, 4, AdmgSettings::default()).unwrap();
        let (admg, sub) = cmp.mean_iterations();
        assert!(
            sub > 4.0 * admg,
            "expected a wide margin: ADM-G {admg:.0} vs subgradient {sub:.0}"
        );
        // The baseline still lands near the optimum.
        assert!(cmp.mean_ufc_gap() < 0.08, "UFC gap {}", cmp.mean_ufc_gap());
        assert_eq!(cmp.csv().len(), 4);
    }
}
