//! Figs. 9 and 10 — parameter sweeps over the fuel-cell price `p₀` and the
//! carbon-tax rate `r`.
//!
//! For each parameter value the weekly scenario is re-built (traces are
//! identical; only the swept parameter changes) and solved hourly under
//! *Hybrid* and *Grid*; the figure reports the week-average UFC improvement
//! `I_hg` and the week-average hybrid fuel-cell utilization.

use ufc_core::{AdmgSettings, AdmgSolver, CoreError, Result, Strategy};
use ufc_model::scenario::ScenarioBuilder;
use ufc_model::{ufc_improvement, EmissionCostFn};
use ufc_traces::csv::Csv;

use crate::parallel::{default_threads, par_map};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value (`p₀` in $/MWh or `r` in $/ton).
    pub value: f64,
    /// Week-average UFC improvement of Hybrid over Grid (fraction).
    pub avg_improvement: f64,
    /// Week-average hybrid fuel-cell utilization (fraction).
    pub avg_utilization: f64,
}

/// A complete sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Name of the swept parameter (for reports).
    pub parameter: &'static str,
    /// The sweep points, in ascending parameter order.
    pub points: Vec<SweepPoint>,
}

/// The paper's Fig. 9 grid of fuel-cell prices ($/MWh).
#[must_use]
pub fn fig9_prices() -> Vec<f64> {
    vec![
        20.0, 27.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0, 110.0, 120.0,
    ]
}

/// The paper's Fig. 10 grid of carbon-tax rates ($/ton).
#[must_use]
pub fn fig10_taxes() -> Vec<f64> {
    vec![
        0.0, 10.0, 25.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0, 170.0, 200.0,
    ]
}

/// Runs the Fig. 9 sweep (`p₀` varies, tax fixed at \$25/ton).
///
/// # Errors
///
/// Propagates scenario or solver failures.
pub fn sweep_fuel_cell_price(
    seed: u64,
    hours: usize,
    settings: AdmgSettings,
    prices: &[f64],
) -> Result<Sweep> {
    let points = prices
        .iter()
        .map(|&p0| {
            let scenario = ScenarioBuilder::paper_default()
                .seed(seed)
                .hours(hours)
                .fuel_cell_price(p0)
                .build()
                .map_err(CoreError::Model)?;
            average_over_week(&scenario.instances, settings, p0)
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Sweep {
        parameter: "fuel_cell_price",
        points,
    })
}

/// Runs the Fig. 10 sweep (tax varies, `p₀` fixed at 80 $/MWh).
///
/// # Errors
///
/// Propagates scenario or solver failures.
pub fn sweep_carbon_tax(
    seed: u64,
    hours: usize,
    settings: AdmgSettings,
    taxes: &[f64],
) -> Result<Sweep> {
    let points = taxes
        .iter()
        .map(|&r| {
            let scenario = ScenarioBuilder::paper_default()
                .seed(seed)
                .hours(hours)
                .emission_cost(EmissionCostFn::Linear { rate: r })
                .build()
                .map_err(CoreError::Model)?;
            average_over_week(&scenario.instances, settings, r)
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Sweep {
        parameter: "carbon_tax",
        points,
    })
}

fn average_over_week(
    instances: &[ufc_model::UfcInstance],
    settings: AdmgSettings,
    value: f64,
) -> Result<SweepPoint> {
    let solver = AdmgSolver::new(settings);
    let per_hour = par_map(instances, default_threads(), |_, inst| {
        let hybrid = solver.solve(inst, Strategy::Hybrid)?;
        let grid = solver.solve(inst, Strategy::GridOnly)?;
        Ok::<(f64, f64), CoreError>((
            ufc_improvement(hybrid.breakdown.ufc(), grid.breakdown.ufc()),
            hybrid.breakdown.fuel_cell_utilization,
        ))
    });
    let mut imp = 0.0;
    let mut util = 0.0;
    let n = per_hour.len() as f64;
    for r in per_hour {
        let (i, u) = r?;
        imp += i;
        util += u;
    }
    Ok(SweepPoint {
        value,
        avg_improvement: imp / n,
        avg_utilization: util / n,
    })
}

/// One point of the latency-weight sweep: the cost/latency Pareto trade.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightPoint {
    /// Latency weight `w` ($/s² per server).
    pub weight: f64,
    /// Week-average propagation latency of the Hybrid strategy (seconds).
    pub avg_latency_s: f64,
    /// Week-average hourly energy + carbon cost of Hybrid ($).
    pub avg_cost: f64,
}

/// Sweeps the latency weight `w` — which the paper fixes at 10 $/s² "to
/// make the user utility close to the electricity cost" — and traces the
/// latency/cost Pareto front that choice sits on.
///
/// # Errors
///
/// Propagates scenario or solver failures.
pub fn sweep_latency_weight(
    seed: u64,
    hours: usize,
    settings: AdmgSettings,
    weights: &[f64],
) -> Result<Vec<WeightPoint>> {
    weights
        .iter()
        .map(|&w| {
            let scenario = ScenarioBuilder::paper_default()
                .seed(seed)
                .hours(hours)
                .weight_per_server(w)
                .build()
                .map_err(CoreError::Model)?;
            let solver = AdmgSolver::new(settings);
            let per_hour = par_map(&scenario.instances, default_threads(), |_, inst| {
                let sol = solver.solve(inst, Strategy::Hybrid)?;
                Ok::<(f64, f64), CoreError>((
                    sol.breakdown.average_latency_s,
                    sol.breakdown.energy_cost_dollars + sol.breakdown.carbon_cost_dollars,
                ))
            });
            let mut lat = 0.0;
            let mut cost = 0.0;
            let n = per_hour.len() as f64;
            for r in per_hour {
                let (l, c) = r?;
                lat += l;
                cost += c;
            }
            Ok(WeightPoint {
                weight: w,
                avg_latency_s: lat / n,
                avg_cost: cost / n,
            })
        })
        .collect()
}

impl Sweep {
    /// CSV with one row per sweep point (percent units).
    #[must_use]
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new(&[self.parameter, "avg_improvement_pct", "avg_utilization_pct"]);
        for p in &self.points {
            csv.push_row(&[
                p.value,
                100.0 * p.avg_improvement,
                100.0 * p.avg_utilization,
            ]);
        }
        csv
    }

    /// The smallest parameter value at which utilization reaches `level`
    /// when scanning in the sweep's "greener" direction (descending for the
    /// price sweep, ascending for the tax sweep).
    #[must_use]
    pub fn crossover(&self, level: f64, ascending: bool) -> Option<f64> {
        let iter: Box<dyn Iterator<Item = &SweepPoint>> = if ascending {
            Box::new(self.points.iter())
        } else {
            Box::new(self.points.iter().rev())
        };
        for p in iter {
            if p.avg_utilization >= level {
                return Some(p.value);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared short sweeps: 24 hours, 4 points — enough to test shape.
    fn short_price_sweep() -> &'static Sweep {
        use std::sync::OnceLock;
        static CELL: OnceLock<Sweep> = OnceLock::new();
        CELL.get_or_init(|| {
            sweep_fuel_cell_price(
                crate::DEFAULT_SEED,
                24,
                AdmgSettings::default(),
                &[20.0, 50.0, 80.0, 120.0],
            )
            .unwrap()
        })
    }

    fn short_tax_sweep() -> &'static Sweep {
        use std::sync::OnceLock;
        static CELL: OnceLock<Sweep> = OnceLock::new();
        CELL.get_or_init(|| {
            sweep_carbon_tax(
                crate::DEFAULT_SEED,
                24,
                AdmgSettings::default(),
                &[0.0, 25.0, 80.0, 200.0],
            )
            .unwrap()
        })
    }

    #[test]
    fn fig9_shape_cheaper_fuel_cells_help_more() {
        let s = short_price_sweep();
        // Utilization decreases monotonically in p0.
        for w in s.points.windows(2) {
            assert!(
                w[0].avg_utilization >= w[1].avg_utilization - 1e-6,
                "utilization not decreasing: {:?}",
                s.points
            );
        }
        // Improvement also decreases in p0.
        assert!(s.points[0].avg_improvement > s.points[3].avg_improvement);
        // At p0 = 20 $/MWh (below every grid price) utilization ≈ 100%.
        assert!(s.points[0].avg_utilization > 0.95, "{:?}", s.points[0]);
        // At p0 = 120 $/MWh fuel cells are essentially idle.
        assert!(s.points[3].avg_utilization < 0.15, "{:?}", s.points[3]);
        // Improvement is never negative (hybrid dominates grid).
        assert!(s.points.iter().all(|p| p.avg_improvement >= -1e-3));
    }

    #[test]
    fn fig10_shape_tax_promotes_fuel_cells() {
        let s = short_tax_sweep();
        for w in s.points.windows(2) {
            assert!(
                w[1].avg_utilization >= w[0].avg_utilization - 1e-6,
                "utilization not increasing: {:?}",
                s.points
            );
        }
        // $200/ton pushes utilization near 100%.
        assert!(s.points[3].avg_utilization > 0.9, "{:?}", s.points[3]);
        // The paper's current-range taxes (≤ $39/ton) fail to promote.
        assert!(s.points[1].avg_utilization < 0.35, "{:?}", s.points[1]);
    }

    #[test]
    fn crossover_helpers() {
        let s = short_price_sweep();
        let x = s.crossover(0.95, false).expect("some point reaches 95%");
        assert!(x <= 50.0, "crossover {x}");
        let t = short_tax_sweep();
        let y = t.crossover(0.9, true).expect("some tax reaches 90%");
        assert!(y >= 80.0, "crossover {y}");
    }

    #[test]
    fn latency_weight_traces_a_pareto_front() {
        let pts = sweep_latency_weight(
            crate::DEFAULT_SEED,
            12,
            AdmgSettings::default(),
            &[0.5, 10.0, 200.0],
        )
        .unwrap();
        // Heavier latency weight ⇒ lower latency, higher (or equal) cost.
        assert!(
            pts[2].avg_latency_s <= pts[0].avg_latency_s + 1e-9,
            "latency not improving: {pts:?}"
        );
        assert!(
            pts[2].avg_cost >= pts[0].avg_cost - 1e-6,
            "cost not monotone: {pts:?}"
        );
        // The paper's w = 10 sits strictly between the extremes.
        assert!(pts[1].avg_latency_s <= pts[0].avg_latency_s + 1e-9);
        assert!(pts[1].avg_cost <= pts[2].avg_cost + 1e-6);
    }

    #[test]
    fn csv_shape() {
        let s = short_price_sweep();
        let csv = s.csv();
        assert_eq!(csv.len(), 4);
        assert!(csv.to_string().starts_with("fuel_cell_price,"));
    }
}
