//! Forecast-robustness study.
//!
//! The paper's control loop optimizes each slot against *predicted*
//! arrivals (§II-A assumes near-term prediction is accurate). This
//! experiment quantifies what that assumption is worth: every hour after a
//! two-day warm-up, per-front-end arrivals are forecast with Holt–Winters,
//! the UFC problem is solved against the forecast, the resulting decisions
//! (routing *fractions* and fuel-cell setpoints) are applied to the actual
//! arrivals, and the achieved UFC is compared with the clairvoyant
//! optimum. Small forecast MAPE should translate into small UFC regret —
//! which is exactly what the measurement shows.

use ufc_core::{AdmgSettings, AdmgSolver, CoreError, Result, Strategy};
use ufc_model::scenario::{ScenarioBuilder, WeeklyScenario};
use ufc_model::{evaluate, OperatingPoint};
use ufc_traces::csv::Csv;
use ufc_traces::forecast::HoltWinters;

use crate::parallel::{default_threads, par_map};

/// Hours of history required before the first forecast (two full seasons).
pub const WARMUP_HOURS: usize = 48;

/// One evaluated hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourRobustness {
    /// Hour index (≥ [`WARMUP_HOURS`]).
    pub hour: usize,
    /// Mean absolute percentage error of the arrival forecast (fraction).
    pub arrival_mape: f64,
    /// UFC achieved by acting on the forecast ($).
    pub forecast_ufc: f64,
    /// Clairvoyant UFC ($).
    pub oracle_ufc: f64,
}

impl HourRobustness {
    /// Relative UFC regret of forecasting vs clairvoyance (fraction ≥ ~0).
    #[must_use]
    pub fn regret(&self) -> f64 {
        (self.oracle_ufc - self.forecast_ufc) / self.oracle_ufc.abs().max(1.0)
    }
}

/// The full study result.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessStudy {
    /// Per-hour results.
    pub hours: Vec<HourRobustness>,
}

/// Runs the study on `hours` total hours (the first [`WARMUP_HOURS`] only
/// feed the forecaster).
///
/// # Errors
///
/// * [`CoreError::Model`] if `hours ≤ WARMUP_HOURS` or scenario
///   construction fails.
/// * Solver failures.
pub fn run(seed: u64, hours: usize, settings: AdmgSettings) -> Result<RobustnessStudy> {
    if hours <= WARMUP_HOURS {
        return Err(CoreError::Model(ufc_model::ModelError::param(format!(
            "need more than {WARMUP_HOURS} hours, got {hours}"
        ))));
    }
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()
        .map_err(CoreError::Model)?;

    let eval_hours: Vec<usize> = (WARMUP_HOURS..hours).collect();
    let rows = par_map(&eval_hours, default_threads(), |_, &t| {
        evaluate_hour(&scenario, t, settings)
    });
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(r?);
    }
    Ok(RobustnessStudy { hours: out })
}

fn evaluate_hour(
    scenario: &WeeklyScenario,
    t: usize,
    settings: AdmgSettings,
) -> Result<HourRobustness> {
    let actual = &scenario.instances[t];
    let m = actual.m_frontends();
    let hw = HoltWinters::hourly_diurnal();

    // Forecast each front-end's arrival from its own history.
    let mut forecast_arrivals = Vec::with_capacity(m);
    let mut mape_sum = 0.0;
    for i in 0..m {
        let history: Vec<f64> = (0..t).map(|s| scenario.instances[s].arrivals[i]).collect();
        let f = hw.forecast_next(&history).max(0.01);
        mape_sum += ((f - actual.arrivals[i]) / actual.arrivals[i]).abs();
        forecast_arrivals.push(f);
    }
    let arrival_mape = mape_sum / m as f64;

    // Keep the forecast instance feasible: scale down if it would exceed
    // the fleet (rare, bursty hours).
    let total_cap = actual.total_capacity();
    let total_fc: f64 = forecast_arrivals.iter().sum();
    if total_fc > 0.98 * total_cap {
        let scale = 0.98 * total_cap / total_fc;
        for v in &mut forecast_arrivals {
            *v *= scale;
        }
    }
    let mut forecast_instance = actual.clone();
    forecast_instance.arrivals = forecast_arrivals;

    let solver = AdmgSolver::new(settings);
    let planned = solver.solve(&forecast_instance, Strategy::Hybrid)?;
    let oracle = solver.solve(actual, Strategy::Hybrid)?;

    // Apply the planned routing *fractions* to the actual arrivals; clamp
    // the planned fuel-cell setpoints to the realized demand.
    let mut lambda = Vec::with_capacity(m);
    for i in 0..m {
        let row = &planned.point.lambda[i];
        let row_sum: f64 = row.iter().sum();
        let rescale = actual.arrivals[i] / row_sum;
        lambda.push(row.iter().map(|v| v * rescale).collect::<Vec<f64>>());
    }
    // Capacity can be violated after rescaling; reuse the solver's polish
    // by going through a state-like shim.
    let mut state = ufc_core::AdmgState::zeros(actual);
    for (i, row) in lambda.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            let k = state.idx(i, j);
            state.lambda[k] = v;
        }
    }
    state.mu.copy_from_slice(&planned.point.mu);
    let point: OperatingPoint = ufc_core::repair::assemble_point(actual, &state, false)?;
    let achieved = evaluate(actual, &point).map_err(CoreError::Model)?;

    Ok(HourRobustness {
        hour: t,
        arrival_mape,
        forecast_ufc: achieved.ufc(),
        oracle_ufc: oracle.breakdown.ufc(),
    })
}

impl RobustnessStudy {
    /// Mean arrival MAPE across evaluated hours (fraction).
    #[must_use]
    pub fn mean_mape(&self) -> f64 {
        let n = self.hours.len().max(1) as f64;
        self.hours.iter().map(|h| h.arrival_mape).sum::<f64>() / n
    }

    /// Mean UFC regret (fraction).
    #[must_use]
    pub fn mean_regret(&self) -> f64 {
        let n = self.hours.len().max(1) as f64;
        self.hours.iter().map(HourRobustness::regret).sum::<f64>() / n
    }

    /// Worst-hour UFC regret (fraction).
    #[must_use]
    pub fn max_regret(&self) -> f64 {
        self.hours
            .iter()
            .map(HourRobustness::regret)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// CSV with one row per evaluated hour.
    #[must_use]
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new(&[
            "hour",
            "arrival_mape_pct",
            "forecast_ufc",
            "oracle_ufc",
            "regret_pct",
        ]);
        for h in &self.hours {
            csv.push_row(&[
                h.hour as f64,
                100.0 * h.arrival_mape,
                h.forecast_ufc,
                h.oracle_ufc,
                100.0 * h.regret(),
            ]);
        }
        csv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecast_regret_is_small() {
        // 60 hours: 48 warm-up + 12 evaluated.
        let study = run(crate::DEFAULT_SEED, 60, AdmgSettings::default()).unwrap();
        assert_eq!(study.hours.len(), 12);
        // The paper's predictability assumption: single-digit MAPE…
        assert!(study.mean_mape() < 0.15, "MAPE {}", study.mean_mape());
        // …and acting on forecasts costs only a sliver of UFC.
        assert!(
            study.mean_regret() < 0.05,
            "mean regret {}",
            study.mean_regret()
        );
        assert!(
            study.max_regret() < 0.25,
            "max regret {}",
            study.max_regret()
        );
        // Regret can be slightly negative (polish noise) but not materially.
        for h in &study.hours {
            assert!(h.regret() > -0.02, "hour {} regret {}", h.hour, h.regret());
        }
    }

    #[test]
    fn rejects_short_horizon() {
        assert!(run(1, WARMUP_HOURS, AdmgSettings::default()).is_err());
    }
}
