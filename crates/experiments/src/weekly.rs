//! The main weekly simulation behind Figs. 4–8 and 11: every hour of the
//! trace-driven scenario is solved under all three strategies with the
//! distributed ADM-G algorithm.

use ufc_core::{solve_all_strategies, AdmgSettings, Result, StrategyComparison};
use ufc_model::scenario::{ScenarioBuilder, WeeklyScenario};
use ufc_traces::csv::Csv;

use crate::parallel::{default_threads, par_map};

/// One hour's outcome across the three strategies.
#[derive(Debug, Clone)]
pub struct HourOutcome {
    /// Hour index.
    pub hour: usize,
    /// UFC improvement Hybrid-over-Grid (fraction).
    pub i_hg: f64,
    /// UFC improvement Hybrid-over-FuelCell (fraction).
    pub i_hf: f64,
    /// UFC improvement FuelCell-over-Grid (fraction).
    pub i_fg: f64,
    /// Average propagation latency (s) per strategy `[hybrid, grid, fuel]`.
    pub latency_s: [f64; 3],
    /// Energy cost ($) per strategy `[hybrid, grid, fuel]`.
    pub energy_cost: [f64; 3],
    /// Carbon cost ($) per strategy `[hybrid, grid, fuel]`.
    pub carbon_cost: [f64; 3],
    /// Hybrid fuel-cell utilization (fraction of demand).
    pub utilization: f64,
    /// Hybrid ADM-G iterations to convergence.
    pub iterations: usize,
    /// Whether all three solves converged.
    pub converged: bool,
}

impl HourOutcome {
    fn from_comparison(hour: usize, cmp: &StrategyComparison) -> Self {
        let h = &cmp.hybrid.breakdown;
        let g = &cmp.grid.breakdown;
        let f = &cmp.fuel_cell.breakdown;
        HourOutcome {
            hour,
            i_hg: cmp.i_hg(),
            i_hf: cmp.i_hf(),
            i_fg: cmp.i_fg(),
            latency_s: [
                h.average_latency_s,
                g.average_latency_s,
                f.average_latency_s,
            ],
            energy_cost: [
                h.energy_cost_dollars,
                g.energy_cost_dollars,
                f.energy_cost_dollars,
            ],
            carbon_cost: [
                h.carbon_cost_dollars,
                g.carbon_cost_dollars,
                f.carbon_cost_dollars,
            ],
            utilization: h.fuel_cell_utilization,
            iterations: cmp.hybrid.iterations,
            converged: cmp.hybrid.converged && cmp.grid.converged && cmp.fuel_cell.converged,
        }
    }
}

/// The full weekly simulation result.
#[derive(Debug, Clone)]
pub struct WeeklyResults {
    /// One outcome per hour.
    pub hours: Vec<HourOutcome>,
}

/// Runs the weekly simulation on an already built scenario.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn run_on(scenario: &WeeklyScenario, settings: AdmgSettings) -> Result<WeeklyResults> {
    let outcomes = par_map(&scenario.instances, default_threads(), |t, inst| {
        solve_all_strategies(inst, settings).map(|cmp| HourOutcome::from_comparison(t, &cmp))
    });
    let mut hours = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        hours.push(o?);
    }
    Ok(WeeklyResults { hours })
}

/// Receding-horizon variant: hours are solved sequentially and each
/// strategy's ADM-G run warm-starts from its previous hour's final iterate.
/// Consecutive hours differ only by trace deltas, so this typically cuts
/// the iteration counts substantially (an extension beyond the paper,
/// enabled by its own slot-decoupling argument; compared against the cold
/// path in the `ablations` bench).
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn run_receding(scenario: &WeeklyScenario, settings: AdmgSettings) -> Result<WeeklyResults> {
    use ufc_core::{AdmgSolver, Strategy, StrategyComparison};
    let solver = AdmgSolver::new(settings);
    let mut hours = Vec::with_capacity(scenario.instances.len());
    let mut warm: Option<StrategyComparison> = None;
    for (t, inst) in scenario.instances.iter().enumerate() {
        let cmp = match warm {
            None => ufc_core::solve_all_strategies(inst, settings)?,
            Some(prev) => StrategyComparison {
                hybrid: solver.solve_warm(inst, Strategy::Hybrid, prev.hybrid.state)?,
                grid: solver.solve_warm(inst, Strategy::GridOnly, prev.grid.state)?,
                fuel_cell: solver.solve_warm(inst, Strategy::FuelCellOnly, prev.fuel_cell.state)?,
            },
        };
        hours.push(HourOutcome::from_comparison(t, &cmp));
        warm = Some(cmp);
    }
    Ok(WeeklyResults { hours })
}

/// Builds the paper-default scenario and runs the weekly simulation.
///
/// # Errors
///
/// Propagates scenario or solver failures.
pub fn run(seed: u64, hours: usize, settings: AdmgSettings) -> Result<WeeklyResults> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()
        .map_err(ufc_core::CoreError::Model)?;
    run_on(&scenario, settings)
}

impl WeeklyResults {
    /// Mean of a per-hour metric.
    #[must_use]
    pub fn mean_of(&self, f: impl Fn(&HourOutcome) -> f64) -> f64 {
        if self.hours.is_empty() {
            return 0.0;
        }
        self.hours.iter().map(f).sum::<f64>() / self.hours.len() as f64
    }

    /// Fig. 4 CSV: hourly UFC improvements (percent).
    #[must_use]
    pub fn improvements_csv(&self) -> Csv {
        let mut csv = Csv::new(&["hour", "i_hg_pct", "i_hf_pct", "i_fg_pct"]);
        for h in &self.hours {
            csv.push_row(&[
                h.hour as f64,
                100.0 * h.i_hg,
                100.0 * h.i_hf,
                100.0 * h.i_fg,
            ]);
        }
        csv
    }

    /// Fig. 5 CSV: hourly average propagation latency (ms) per strategy.
    #[must_use]
    pub fn latency_csv(&self) -> Csv {
        let mut csv = Csv::new(&["hour", "hybrid_ms", "grid_ms", "fuel_cell_ms"]);
        for h in &self.hours {
            csv.push_row(&[
                h.hour as f64,
                1e3 * h.latency_s[0],
                1e3 * h.latency_s[1],
                1e3 * h.latency_s[2],
            ]);
        }
        csv
    }

    /// Fig. 6 CSV: hourly energy cost ($) per strategy.
    #[must_use]
    pub fn energy_csv(&self) -> Csv {
        let mut csv = Csv::new(&["hour", "hybrid", "grid", "fuel_cell"]);
        for h in &self.hours {
            csv.push_row(&[
                h.hour as f64,
                h.energy_cost[0],
                h.energy_cost[1],
                h.energy_cost[2],
            ]);
        }
        csv
    }

    /// Fig. 7 CSV: hourly carbon cost ($) per strategy.
    #[must_use]
    pub fn carbon_csv(&self) -> Csv {
        let mut csv = Csv::new(&["hour", "hybrid", "grid", "fuel_cell"]);
        for h in &self.hours {
            csv.push_row(&[
                h.hour as f64,
                h.carbon_cost[0],
                h.carbon_cost[1],
                h.carbon_cost[2],
            ]);
        }
        csv
    }

    /// Fig. 8 CSV: hourly hybrid fuel-cell utilization (percent).
    #[must_use]
    pub fn utilization_csv(&self) -> Csv {
        let mut csv = Csv::new(&["hour", "utilization_pct"]);
        for h in &self.hours {
            csv.push_row(&[h.hour as f64, 100.0 * h.utilization]);
        }
        csv
    }

    /// The hybrid iteration counts (Fig. 11's raw data).
    #[must_use]
    pub fn iteration_counts(&self) -> Vec<usize> {
        self.hours.iter().map(|h| h.iterations).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared 36-hour run keeps the test suite fast while covering a
    /// day-and-a-half of peaks and troughs.
    fn results() -> &'static WeeklyResults {
        use std::sync::OnceLock;
        static CELL: OnceLock<WeeklyResults> = OnceLock::new();
        CELL.get_or_init(|| run(crate::DEFAULT_SEED, 36, AdmgSettings::default()).unwrap())
    }

    #[test]
    fn all_hours_converge() {
        assert!(results().hours.iter().all(|h| h.converged));
    }

    #[test]
    fn fig4_shape_hybrid_dominates() {
        for h in &results().hours {
            assert!(h.i_hg >= -1e-3, "hour {}: i_hg {}", h.hour, h.i_hg);
            assert!(h.i_hf >= -1e-3, "hour {}: i_hf {}", h.hour, h.i_hf);
        }
        // Fuel-cell-only hurts during off-peak hours (some negative i_fg).
        assert!(
            results().hours.iter().any(|h| h.i_fg < 0.0),
            "fuel-cell-only never loses: suspicious"
        );
    }

    #[test]
    fn fig5_shape_latency_ordering() {
        let r = results();
        let hybrid = r.mean_of(|h| h.latency_s[0]);
        let grid = r.mean_of(|h| h.latency_s[1]);
        let fuel = r.mean_of(|h| h.latency_s[2]);
        // Fuel cell ≤ hybrid < grid (load following shrinks latency).
        assert!(fuel <= hybrid + 1e-4, "fuel {fuel} vs hybrid {hybrid}");
        assert!(hybrid < grid, "hybrid {hybrid} vs grid {grid}");
        // Plausible magnitudes: 5–30 ms.
        for v in [hybrid, grid, fuel] {
            assert!((0.005..0.030).contains(&v), "latency {v}s out of range");
        }
    }

    #[test]
    fn fig6_shape_energy_cost_ordering() {
        let r = results();
        let hybrid = r.mean_of(|h| h.energy_cost[0]);
        let grid = r.mean_of(|h| h.energy_cost[1]);
        let fuel = r.mean_of(|h| h.energy_cost[2]);
        assert!(fuel > grid, "fuel-cell-only should be the most expensive");
        assert!(hybrid <= grid * 1.001, "hybrid {hybrid} vs grid {grid}");
        assert!(hybrid < 0.7 * fuel, "hybrid {hybrid} vs fuel {fuel}");
    }

    #[test]
    fn fig7_shape_carbon_cost() {
        let r = results();
        let fuel = r.mean_of(|h| h.carbon_cost[2]);
        assert!(fuel.abs() < 1e-9, "fuel-cell-only must be carbon-free");
        let hybrid = r.mean_of(|h| h.carbon_cost[0]);
        let grid = r.mean_of(|h| h.carbon_cost[1]);
        // Hybrid stays close to grid at the paper's low $25/ton tax.
        assert!(hybrid > 0.5 * grid, "hybrid {hybrid} vs grid {grid}");
        assert!(hybrid <= grid * 1.001);
    }

    #[test]
    fn fig8_shape_low_utilization() {
        let r = results();
        let avg = r.mean_of(|h| h.utilization);
        // Paper: ≈ 16% average, never ≥ 70%.
        assert!((0.02..0.45).contains(&avg), "avg utilization {avg}");
        assert!(r.hours.iter().all(|h| h.utilization < 0.75));
    }

    #[test]
    fn fig11_shape_iteration_range() {
        let iters = results().iteration_counts();
        let min = *iters.iter().min().unwrap();
        let max = *iters.iter().max().unwrap();
        assert!(min >= 10, "suspiciously fast: {min}");
        assert!(max <= 600, "suspiciously slow: {max}");
    }

    #[test]
    fn receding_horizon_matches_cold_and_is_cheaper() {
        let scenario = ScenarioBuilder::paper_default()
            .seed(crate::DEFAULT_SEED)
            .hours(12)
            .build()
            .unwrap();
        let cold = run_on(&scenario, AdmgSettings::default()).unwrap();
        let warm = run_receding(&scenario, AdmgSettings::default()).unwrap();
        // Same answers...
        for (a, b) in cold.hours.iter().zip(&warm.hours) {
            assert!(
                (a.i_hg - b.i_hg).abs() < 5e-3,
                "hour {}: cold {} vs warm {}",
                a.hour,
                a.i_hg,
                b.i_hg
            );
        }
        // ...for far fewer iterations after the first hour.
        let cold_iters: usize = cold.hours[1..].iter().map(|h| h.iterations).sum();
        let warm_iters: usize = warm.hours[1..].iter().map(|h| h.iterations).sum();
        assert!(
            (warm_iters as f64) < 0.85 * cold_iters as f64,
            "warm {warm_iters} vs cold {cold_iters} iterations"
        );
    }

    #[test]
    fn csv_shapes() {
        let r = results();
        assert_eq!(r.improvements_csv().len(), r.hours.len());
        assert_eq!(r.latency_csv().len(), r.hours.len());
        assert_eq!(r.energy_csv().len(), r.hours.len());
        assert_eq!(r.carbon_csv().len(), r.hours.len());
        assert_eq!(r.utilization_csv().len(), r.hours.len());
    }
}
