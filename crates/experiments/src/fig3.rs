//! Fig. 3 — the simulation inputs: scaled workload trace, per-site hourly
//! electricity prices, and per-site hourly carbon emission rates.

use ufc_model::scenario::{ScenarioBuilder, WeeklyScenario};
use ufc_model::Result;
use ufc_traces::csv::Csv;
use ufc_traces::series;

/// Summary statistics of the Fig. 3 traces.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// The underlying scenario (kept for the CSV dump).
    pub scenario: WeeklyScenario,
}

/// Builds the default scenario and wraps its traces.
///
/// # Errors
///
/// Propagates scenario-construction failures.
pub fn run(seed: u64, hours: usize) -> Result<Fig3> {
    Ok(Fig3 {
        scenario: ScenarioBuilder::paper_default()
            .seed(seed)
            .hours(hours)
            .build()?,
    })
}

impl Fig3 {
    /// CSV with one row per hour: total workload, then price and carbon
    /// rate per datacenter.
    #[must_use]
    pub fn csv(&self) -> Csv {
        let names = &self.scenario.dc_names;
        let mut headers: Vec<String> = vec!["hour".into(), "workload_kservers".into()];
        for n in names {
            headers.push(format!("price_{}", n.to_lowercase().replace(' ', "_")));
        }
        for n in names {
            headers.push(format!("carbon_{}", n.to_lowercase().replace(' ', "_")));
        }
        let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut csv = Csv::new(&hdr_refs);
        for t in 0..self.scenario.hours() {
            let mut row = vec![t as f64, self.scenario.workload_total[t]];
            for j in 0..names.len() {
                row.push(self.scenario.prices[j][t]);
            }
            for j in 0..names.len() {
                row.push(self.scenario.carbon_g_per_kwh[j][t]);
            }
            csv.push_row(&row);
        }
        csv
    }

    /// Per-site mean price ($/MWh), in datacenter order.
    #[must_use]
    pub fn mean_prices(&self) -> Vec<f64> {
        self.scenario
            .prices
            .iter()
            .map(|p| series::mean(p))
            .collect()
    }

    /// Per-site mean carbon rate (g/kWh), in datacenter order.
    #[must_use]
    pub fn mean_carbon(&self) -> Vec<f64> {
        self.scenario
            .carbon_g_per_kwh
            .iter()
            .map(|c| series::mean(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_have_documented_signatures() {
        let f = run(crate::DEFAULT_SEED, 168).unwrap();
        // Workload is diurnal: peak/trough ratio well above 1.
        let ratio = series::peak_to_trough(&f.scenario.workload_total);
        assert!(ratio > 1.8, "workload too flat: {ratio}");
        // Price ordering: San Jose (idx 1) most expensive, Dallas (2) cheapest.
        let p = f.mean_prices();
        assert!(p[1] > p[0] && p[1] > p[3], "prices {p:?}");
        assert!(p[2] < p[0] && p[2] < p[3], "prices {p:?}");
        // Carbon ordering: Calgary (0) dirtiest, San Jose (1) cleanest.
        let c = f.mean_carbon();
        assert!(c[0] > c[2] && c[0] > c[3], "carbon {c:?}");
        assert!(c[1] < c[2] && c[1] < c[3], "carbon {c:?}");
    }

    #[test]
    fn csv_shape() {
        let f = run(1, 24).unwrap();
        let csv = f.csv();
        assert_eq!(csv.len(), 24);
        let text = csv.to_string();
        assert!(text.starts_with("hour,workload_kservers,price_calgary"));
    }
}
