//! Socket-engine study: the multi-process transport vs the in-memory
//! lockstep engine, clean and under real `SIGKILL` recovery.
//!
//! The paper's protocol claims are simulator-agnostic, so this extension
//! checks them against the operating system instead of the in-process
//! fault model: every node runs as its own `ufc-node` OS process speaking
//! the checksummed wire framing over loopback TCP. The clean sweep
//! asserts the headline invariant — every hour's operating point is
//! bit-identical to the lockstep engine — and the recovery scenario kills
//! live worker processes with `SIGKILL` mid-iteration, drops connections
//! for a partition window, and asserts the checkpoint-restarted run still
//! lands on the clean UFC exactly.

use std::path::{Path, PathBuf};
use std::time::Duration;

use ufc_core::{AdmgSettings, CoreError, Result, Strategy};
use ufc_distsim::{
    DistRunReport, DistributedAdmg, FaultPlan, NodeId, PartitionWindow, Runtime, SocketOptions,
};
use ufc_model::scenario::ScenarioBuilder;
use ufc_traces::csv::Csv;

/// One clean hour: the socket engine's run next to the lockstep baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocketHour {
    /// Hour index within the scenario.
    pub hour: usize,
    /// Iterations the socket run performed.
    pub iterations: usize,
    /// Whether the socket run converged.
    pub converged: bool,
    /// Whether operating point, UFC breakdown, and iteration count match
    /// the lockstep engine bit-for-bit.
    pub bitwise_match: bool,
    /// Estimated WAN wall-clock of the socket run (seconds).
    pub wan_seconds: f64,
}

/// The `SIGKILL`-and-restart scenario's accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryOutcome {
    /// Iterations the recovered run performed.
    pub iterations: usize,
    /// Scripted crashes that were delivered as real `SIGKILL`s and
    /// resolved by checkpoint-restart.
    pub crashes_resolved: usize,
    /// Checkpoints taken (periodic + forced after membership changes).
    pub checkpoints_taken: usize,
    /// Iterations recomputed during restart replays.
    pub recomputed_iterations: usize,
    /// Nodes the supervision deadline ladder declared dead.
    pub dead_node_declarations: u64,
    /// TCP connections re-established after a drop (partition heals and
    /// respawn handshakes).
    pub reconnects: u64,
    /// Final UFC minus the clean lockstep UFC, in dollars.
    pub ufc_delta_vs_clean: f64,
    /// Whether the recovered run reproduced the clean operating point
    /// bit-for-bit.
    pub bitwise_match: bool,
}

/// The full study result.
#[derive(Debug, Clone, PartialEq)]
pub struct SocketStudy {
    /// Worker processes per clean run (`M + N`).
    pub processes: usize,
    /// One row per clean hour.
    pub hours: Vec<SocketHour>,
    /// The kill-and-restart scenario.
    pub recovery: RecoveryOutcome,
}

impl SocketStudy {
    /// `true` when every clean hour and the recovered run reproduced the
    /// lockstep operating point bit-for-bit — the engine's headline
    /// guarantee.
    #[must_use]
    pub fn all_bitwise(&self) -> bool {
        self.hours.iter().all(|h| h.bitwise_match) && self.recovery.bitwise_match
    }

    /// CSV with one row per clean hour.
    #[must_use]
    pub fn csv(&self) -> Csv {
        let mut csv = Csv::new(&[
            "hour",
            "iterations",
            "converged",
            "bitwise_match",
            "wan_seconds",
        ]);
        for h in &self.hours {
            csv.push_row(&[
                h.hour as f64,
                h.iterations as f64,
                f64::from(u8::from(h.converged)),
                f64::from(u8::from(h.bitwise_match)),
                h.wan_seconds,
            ]);
        }
        csv
    }
}

/// Finds the `ufc-node` worker binary next to the running executable
/// (same directory, or its parent when the executable sits in a cargo
/// `deps/` directory, as test binaries do).
///
/// # Errors
///
/// [`CoreError::InvalidConfig`] when no candidate exists — build it with
/// `cargo build -p ufc-experiments --bin ufc-node` first.
pub fn locate_worker() -> Result<PathBuf> {
    let exe = std::env::current_exe()
        .map_err(|e| CoreError::invalid_config(format!("cannot locate current executable: {e}")))?;
    let mut dirs: Vec<PathBuf> = Vec::new();
    if let Some(dir) = exe.parent() {
        dirs.push(dir.to_path_buf());
        if dir.file_name().is_some_and(|name| name == "deps") {
            if let Some(parent) = dir.parent() {
                dirs.push(parent.to_path_buf());
            }
        }
    }
    let name = format!("ufc-node{}", std::env::consts::EXE_SUFFIX);
    for dir in &dirs {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(CoreError::invalid_config(format!(
        "worker binary {name:?} not found next to {} — build it with \
         `cargo build -p ufc-experiments --bin ufc-node`",
        exe.display()
    )))
}

/// The deterministic fault script of the recovery scenario: two real
/// `SIGKILL`s (one front-end, one datacenter, both mid-run with recovery
/// budget), plus a two-iteration partition window that tears the severed
/// side's TCP connections down for real. Kept in one place so the `repro`
/// sweep, the integration tests, and CI all exercise the same script.
#[must_use]
pub fn recovery_fault_plan() -> FaultPlan {
    FaultPlan::new()
        .with_phase_timeout(Duration::from_millis(25))
        .crash_and_recover(NodeId::Datacenter(0), 6, 1)
        .crash_and_recover(NodeId::Frontend(1), 10, 1)
        .partition(PartitionWindow {
            from_iteration: 14,
            to_iteration: 16,
            frontends: vec![0],
            datacenters: vec![1],
        })
}

/// Bit-pattern equality of two runs: iteration count, every operating
/// point coordinate, and the UFC, compared as exact bit patterns.
fn reports_bitwise_equal(a: &DistRunReport, b: &DistRunReport) -> bool {
    let coords = |r: &DistRunReport| -> Vec<u64> {
        r.point
            .lambda
            .iter()
            .flatten()
            .chain(r.point.mu.iter())
            .chain(r.point.nu.iter())
            .map(|v| v.to_bits())
            .collect()
    };
    a.iterations == b.iterations
        && a.converged == b.converged
        && coords(a) == coords(b)
        && a.breakdown.ufc().to_bits() == b.breakdown.ufc().to_bits()
}

/// Runs the study: a clean per-hour socket-vs-lockstep comparison over
/// `hours` hourly instances, then the [`recovery_fault_plan`] scenario on
/// the first hour. `worker` is the `ufc-node` binary (see
/// [`locate_worker`]).
///
/// # Errors
///
/// Scenario construction, solver, or worker-process failures.
pub fn run(seed: u64, hours: usize, settings: AdmgSettings, worker: &Path) -> Result<SocketStudy> {
    let scenario = ScenarioBuilder::paper_default()
        .seed(seed)
        .hours(hours)
        .build()
        .map_err(CoreError::Model)?;
    let runner = DistributedAdmg::try_new(settings)?;
    let options = SocketOptions::new(worker);
    let processes = scenario.instances[0].m_frontends() + scenario.instances[0].n_datacenters();

    let mut rows = Vec::with_capacity(scenario.instances.len());
    for (hour, instance) in scenario.instances.iter().enumerate() {
        let lockstep = runner.run(instance, Strategy::Hybrid, Runtime::Lockstep)?;
        let socket = runner.run_sockets(instance, Strategy::Hybrid, &options)?;
        rows.push(SocketHour {
            hour,
            iterations: socket.iterations,
            converged: socket.converged,
            bitwise_match: reports_bitwise_equal(&lockstep, &socket),
            wan_seconds: socket.estimated_wan_seconds,
        });
    }

    let instance = &scenario.instances[0];
    let clean = runner.run(instance, Strategy::Hybrid, Runtime::Lockstep)?;
    let recovered =
        runner.run_sockets_faulty(instance, Strategy::Hybrid, &options, recovery_fault_plan())?;
    let fault = recovered
        .fault
        .clone()
        .ok_or_else(|| CoreError::invalid_config("faulty socket run lost its fault report"))?;
    let integrity = recovered.integrity.ok_or_else(|| {
        CoreError::invalid_config("faulty socket run lost its integrity counters")
    })?;
    let recovery = RecoveryOutcome {
        iterations: recovered.iterations,
        crashes_resolved: fault.crashes_observed,
        checkpoints_taken: fault.checkpoints_taken,
        recomputed_iterations: fault.recomputed_iterations,
        dead_node_declarations: integrity.dead_node_declarations,
        reconnects: integrity.reconnects,
        ufc_delta_vs_clean: fault.ufc_delta_vs_clean,
        bitwise_match: reports_bitwise_equal(&clean, &recovered),
    };

    Ok(SocketStudy {
        processes,
        hours: rows,
        recovery,
    })
}
