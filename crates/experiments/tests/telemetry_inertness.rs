//! The telemetry layer's inertness contract (DESIGN.md §11): collecting
//! telemetry — or chaining any extra observer onto a run — must not
//! change a single bit of the iterate stream. Asserted here by running
//! every engine with telemetry off, on, and chained with extra observers,
//! at 1 and 4 worker threads, and comparing histories, points, and UFC
//! breakdowns bitwise.

use ufc_core::{
    AdmgSettings, AdmgSolution, AdmgSolver, HistoryRecorder, JsonlSink, Strategy,
    TelemetryCollector,
};
use ufc_distsim::{DistRunReport, DistributedAdmg, Runtime};
use ufc_experiments::solver_bench::admg_scaling;
use ufc_experiments::DEFAULT_SEED;
use ufc_model::{UfcBreakdown, UfcInstance};

fn breakdown_bits(b: &UfcBreakdown) -> Vec<u64> {
    vec![
        b.utility_dollars.to_bits(),
        b.energy_cost_dollars.to_bits(),
        b.carbon_cost_dollars.to_bits(),
        b.carbon_tons.to_bits(),
        b.average_latency_s.to_bits(),
        b.fuel_cell_mwh.to_bits(),
        b.grid_mwh.to_bits(),
        b.fuel_cell_utilization.to_bits(),
        b.queueing_cost_dollars.to_bits(),
        b.ufc().to_bits(),
    ]
}

fn point_bits(lambda: &[Vec<f64>], mu: &[f64], nu: &[f64]) -> Vec<u64> {
    lambda
        .iter()
        .flatten()
        .chain(mu.iter())
        .chain(nu.iter())
        .map(|v| v.to_bits())
        .collect()
}

/// The full bit fingerprint of a solver run: iteration count, every
/// history record, the final iterate, point, and breakdown.
fn solution_bits(sol: &AdmgSolution) -> Vec<u64> {
    let mut bits = vec![sol.iterations as u64, u64::from(sol.converged)];
    for rec in &sol.history {
        bits.push(rec.iteration as u64);
        bits.push(rec.link_residual.to_bits());
        bits.push(rec.balance_residual.to_bits());
        bits.push(rec.dual_residual.to_bits());
    }
    bits.extend(sol.state.lambda.iter().map(|v| v.to_bits()));
    bits.extend(sol.state.mu.iter().map(|v| v.to_bits()));
    bits.extend(sol.state.nu.iter().map(|v| v.to_bits()));
    bits.extend(sol.state.a.iter().map(|v| v.to_bits()));
    bits.extend(point_bits(&sol.point.lambda, &sol.point.mu, &sol.point.nu));
    bits.extend(breakdown_bits(&sol.breakdown));
    bits
}

fn report_bits(report: &DistRunReport) -> Vec<u64> {
    let mut bits = vec![
        report.iterations as u64,
        u64::from(report.converged),
        report.stats.data_messages as u64,
        report.stats.control_messages as u64,
        report.stats.total_bytes as u64,
    ];
    bits.extend(point_bits(
        &report.point.lambda,
        &report.point.mu,
        &report.point.nu,
    ));
    bits.extend(breakdown_bits(&report.breakdown));
    bits
}

fn workload(num_threads: usize) -> (UfcInstance, AdmgSettings) {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    let instance = instances
        .into_iter()
        .next()
        .expect("scaling workload yields at least one instance");
    let settings = AdmgSettings {
        num_threads,
        ..AdmgSettings::default()
    };
    (instance, settings)
}

/// In-process solver: telemetry off vs on vs on-with-chained-observers.
fn sweep_solver(num_threads: usize) {
    let (instance, settings) = workload(num_threads);

    let off = AdmgSolver::new(settings)
        .solve(&instance, Strategy::Hybrid)
        .expect("baseline solve");
    assert!(off.converged);
    assert!(off.telemetry.is_none(), "telemetry off must attach nothing");
    let reference = solution_bits(&off);

    let on = AdmgSolver::new(settings.with_telemetry(true))
        .solve(&instance, Strategy::Hybrid)
        .expect("telemetry solve");
    assert_eq!(
        reference,
        solution_bits(&on),
        "{num_threads} threads: enabling telemetry changed the run"
    );
    let telemetry = on.telemetry.expect("telemetry on must attach a snapshot");
    assert_eq!(telemetry.iterations as usize, on.iterations);
    assert!(telemetry.total_ns() > 0, "phase timings must be collected");
    assert!(
        telemetry.solver.kkt_cache_hits + telemetry.solver.kkt_cache_misses > 0,
        "solver counters must be folded in"
    );
    assert!(telemetry.traffic.is_none() && telemetry.fault.is_none());

    // Chain a history recorder, a second collector, and a JSONL sink on
    // top of the enabled run: still bit-identical.
    let mut extra = HistoryRecorder::default();
    let chained = AdmgSolver::new(settings.with_telemetry(true))
        .solve_observed(&instance, Strategy::Hybrid, &mut extra)
        .expect("chained solve");
    assert_eq!(
        reference,
        solution_bits(&chained),
        "{num_threads} threads: chained observers changed the run"
    );
    let extra_history = extra.into_history();
    assert_eq!(chained.history.len(), extra_history.len());
    for (a, b) in chained.history.iter().zip(&extra_history) {
        assert_eq!(a.link_residual.to_bits(), b.link_residual.to_bits());
        assert_eq!(a.dual_residual.to_bits(), b.dual_residual.to_bits());
    }

    let mut sink = JsonlSink::new(Vec::new());
    let sunk = AdmgSolver::new(settings)
        .solve_observed(&instance, Strategy::Hybrid, &mut sink)
        .expect("sink solve");
    assert_eq!(
        reference,
        solution_bits(&sunk),
        "{num_threads} threads: a JSONL sink changed the run"
    );
    assert!(
        sunk.telemetry.is_none(),
        "an external sink must not flip the settings gate"
    );
    let bytes = sink.finish().expect("vec writes cannot fail");
    assert_eq!(
        String::from_utf8(bytes)
            .expect("json is utf8")
            .lines()
            .count(),
        sunk.iterations,
        "the sink must emit one line per iteration"
    );
}

/// Distributed engines: telemetry off vs on vs chained, both runtimes.
fn sweep_distributed(num_threads: usize) {
    let (instance, settings) = workload(num_threads);

    for runtime in [Runtime::Lockstep, Runtime::Threaded] {
        let off = DistributedAdmg::new(settings)
            .run(&instance, Strategy::Hybrid, runtime)
            .expect("baseline run");
        assert!(off.converged);
        assert!(off.telemetry.is_none());
        let reference = report_bits(&off);

        let on = DistributedAdmg::new(settings.with_telemetry(true))
            .run(&instance, Strategy::Hybrid, runtime)
            .expect("telemetry run");
        assert_eq!(
            reference,
            report_bits(&on),
            "{runtime:?}/{num_threads} threads: enabling telemetry changed the run"
        );
        let telemetry = on.telemetry.expect("telemetry on must attach a snapshot");
        assert_eq!(telemetry.iterations as usize, on.iterations);
        assert!(telemetry.total_ns() > 0);
        let traffic = telemetry.traffic.expect("distributed runs count traffic");
        assert_eq!(traffic.data_messages as usize, on.stats.data_messages);
        assert_eq!(traffic.total_bytes as usize, on.stats.total_bytes);
        assert!(
            telemetry.fault.is_none(),
            "clean run must not report faults"
        );
        if runtime == Runtime::Lockstep {
            assert!(
                telemetry.solver.kkt_cache_hits + telemetry.solver.kkt_cache_misses > 0,
                "lockstep keeps the node kernels observable"
            );
        }

        let mut collector = TelemetryCollector::default();
        let chained = DistributedAdmg::new(settings.with_telemetry(true))
            .run_observed(&instance, Strategy::Hybrid, runtime, &mut collector)
            .expect("chained run");
        assert_eq!(
            reference,
            report_bits(&chained),
            "{runtime:?}/{num_threads} threads: chained observers changed the run"
        );
        let external = collector.into_telemetry();
        assert_eq!(external.iterations as usize, chained.iterations);
        assert!(external.total_ns() > 0);
    }
}

#[test]
fn solver_telemetry_is_inert_single_threaded() {
    sweep_solver(1);
}

#[test]
fn solver_telemetry_is_inert_multi_threaded() {
    sweep_solver(4);
}

#[test]
fn distributed_telemetry_is_inert_single_threaded() {
    sweep_distributed(1);
}

#[test]
fn distributed_telemetry_is_inert_multi_threaded() {
    sweep_distributed(4);
}
