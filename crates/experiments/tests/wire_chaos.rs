//! Chaos over the real wire: seeded corruption applied to the socket
//! engine's actual TCP traffic. Value-level corruption must reproduce the
//! in-process corrupt engines bit-for-bit (identical draw order), and the
//! wire-level kinds — frame truncation, duplication, reordering — must all
//! be caught by the framing CRC + `Nak`/resend ladder or absorbed by the
//! duplicate/order guards, with the run still landing on the clean
//! operating point bitwise.

use ufc_core::{AdmgSettings, CoreError, Strategy};
use ufc_distsim::{CorruptionConfig, CorruptionKind, DistributedAdmg, Runtime, SocketOptions};
use ufc_experiments::solver_bench::admg_scaling;
use ufc_experiments::DEFAULT_SEED;
use ufc_model::UfcInstance;

fn worker_options() -> SocketOptions {
    SocketOptions::new(env!("CARGO_BIN_EXE_ufc-node"))
}

fn workload() -> UfcInstance {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    instances
        .into_iter()
        .next()
        .expect("scaling workload yields at least one instance")
}

fn point_bits(report: &ufc_distsim::DistRunReport) -> Vec<u64> {
    report
        .point
        .lambda
        .iter()
        .flatten()
        .chain(report.point.mu.iter())
        .chain(report.point.nu.iter())
        .map(|v| v.to_bits())
        .collect()
}

/// Value-level corruption (§12 kinds, random per event) drawn over the
/// socket engine's real traffic strikes in the exact order of the
/// in-process engines, so the verified run, its solution, and its
/// integrity counters all reproduce the lockstep corrupt run bit-for-bit.
#[test]
fn value_corruption_over_sockets_matches_lockstep_corrupt_run() {
    let instance = workload();
    let settings = AdmgSettings::default().with_checksums(true);
    let runner = DistributedAdmg::new(settings);
    let cfg = CorruptionConfig::new(1e-2, DEFAULT_SEED);

    let lockstep = runner
        .run_corrupt(&instance, Strategy::Hybrid, Runtime::Lockstep, cfg)
        .expect("verified lockstep corrupt run must converge");
    let sockets = runner
        .run_sockets_corrupt(&instance, Strategy::Hybrid, &worker_options(), cfg)
        .expect("verified socket corrupt run must converge");

    assert!(sockets.converged);
    assert_eq!(lockstep.iterations, sockets.iterations);
    assert_eq!(point_bits(&lockstep), point_bits(&sockets));
    assert_eq!(
        lockstep.breakdown.ufc().to_bits(),
        sockets.breakdown.ufc().to_bits(),
        "verified socket corruption must reproduce the lockstep UFC bitwise"
    );

    let li = lockstep.integrity.expect("lockstep integrity counters");
    let si = sockets.integrity.expect("socket integrity counters");
    assert!(si.corruptions_injected > 0, "rate 1e-2 must strike");
    assert_eq!(
        (
            li.corruptions_injected,
            li.corruptions_detected,
            li.checksum_retransmissions
        ),
        (
            si.corruptions_injected,
            si.corruptions_detected,
            si.checksum_retransmissions
        ),
        "identical draw order must give identical counters"
    );
    // Strikes whose mangle is a bitwise no-op (e.g. scaling a zero) decode
    // cleanly and are never "detected" — but nothing corrupt is delivered.
    assert!(si.corruptions_detected <= si.corruptions_injected);
    assert_eq!(si.corruptions_delivered, 0);
}

/// Every wire-level kind at rate 1e-2 over real TCP: each injection is
/// detected (CRC + `Nak`/clean-resend) or structurally absorbed
/// (duplicate drop, order-insensitive gather), none is silently
/// delivered, and the run reproduces the clean socket run bit-for-bit.
#[test]
fn wire_chaos_is_fully_detected_and_bit_identical() {
    let instance = workload();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let clean = runner
        .run(&instance, Strategy::Hybrid, Runtime::Lockstep)
        .expect("clean lockstep run must converge");

    for kind in [
        CorruptionKind::FrameTruncate,
        CorruptionKind::FrameDuplicate,
        CorruptionKind::FrameReorder,
    ] {
        let cfg = CorruptionConfig::new(1e-2, DEFAULT_SEED).with_kind(kind);
        let report = runner
            .run_sockets_corrupt(&instance, Strategy::Hybrid, &worker_options(), cfg)
            .unwrap_or_else(|e| panic!("wire chaos {kind:?} must be repaired, got {e}"));
        assert!(report.converged, "{kind:?}: run must converge");
        assert_eq!(
            point_bits(&clean),
            point_bits(&report),
            "{kind:?}: operating point must match the clean run bitwise"
        );
        assert_eq!(
            clean.breakdown.ufc().to_bits(),
            report.breakdown.ufc().to_bits(),
            "{kind:?}: UFC must match the clean run bitwise"
        );
        let integrity = report.integrity.expect("wire chaos reports counters");
        assert!(
            integrity.corruptions_injected > 0,
            "{kind:?}: rate 1e-2 must strike at least once"
        );
        assert_eq!(
            integrity.corruptions_detected, integrity.corruptions_injected,
            "{kind:?}: every injected frame fault must be caught or absorbed"
        );
        assert_eq!(
            integrity.corruptions_delivered, 0,
            "{kind:?}: no frame fault may reach the iterate stream"
        );
        if kind == CorruptionKind::FrameTruncate {
            assert!(
                integrity.checksum_retransmissions > 0,
                "truncations must be repaired by retransmission"
            );
        }
    }
}

/// A truncation storm past the retransmit budget fails with a typed
/// `CorruptPayload` — never a hang or a panic.
#[test]
fn wire_chaos_budget_exhaustion_fails_typed() {
    let instance = workload();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let cfg = CorruptionConfig::new(0.999, DEFAULT_SEED)
        .with_kind(CorruptionKind::FrameTruncate)
        .with_max_retransmits(2);
    let err = runner
        .run_sockets_corrupt(&instance, Strategy::Hybrid, &worker_options(), cfg)
        .expect_err("a near-certain truncation storm must exhaust the budget");
    assert!(
        matches!(err, CoreError::CorruptPayload { .. }),
        "expected a typed CorruptPayload, got {err:?}"
    );
}

/// The socket chaos sweep (the engine behind `repro chaos --engine
/// sockets`) aggregates the same guarantees: every hour of every cell —
/// value-level and all three wire-level kinds — lands on the clean UFC
/// bit-for-bit, and wire cells catch exactly what they inject.
#[test]
fn socket_chaos_study_is_bitwise_clean_and_catches_everything() {
    let study = ufc_experiments::chaos::run_sockets_chaos(
        DEFAULT_SEED,
        1,
        AdmgSettings::default(),
        &[1e-2],
        std::path::Path::new(env!("CARGO_BIN_EXE_ufc-node")),
    )
    .expect("socket chaos sweep must complete");
    // 1 value cell + 3 wire cells.
    assert_eq!(study.points.len(), 4);
    assert!(study.all_hours_bitwise_clean());
    assert!(study.wire_faults_all_caught());
    assert!(
        study.points.iter().all(|p| p.corruptions_injected > 0),
        "rate 1e-2 must strike in every cell"
    );
    assert_eq!(study.csv().len(), 4);
}

/// Wire-level kinds need real frames and the one-process-per-node split:
/// co-hosted workers and the in-process engines both reject them with a
/// typed configuration error.
#[test]
fn wire_kinds_are_gated_to_one_process_per_node_sockets() {
    let instance = workload();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let cfg = CorruptionConfig::new(1e-2, DEFAULT_SEED).with_kind(CorruptionKind::FrameReorder);

    let err = runner
        .run_sockets_corrupt(
            &instance,
            Strategy::Hybrid,
            &worker_options().with_processes(2),
            cfg,
        )
        .expect_err("co-hosted wire chaos must be rejected");
    assert!(
        matches!(err, CoreError::InvalidConfig { .. }),
        "got {err:?}"
    );

    let err = runner
        .run_corrupt(&instance, Strategy::Hybrid, Runtime::Lockstep, cfg)
        .expect_err("in-process engines have no wire frames to mangle");
    assert!(
        matches!(err, CoreError::InvalidConfig { .. }),
        "got {err:?}"
    );
}
