//! Cross-engine invariant of the unified iteration driver: the in-process
//! solver, the lockstep engine, the supervised threaded engine, and both
//! engines under a trivial fault plan ([`FaultPlan::none`]) all run the
//! SAME iterates — bitwise, at any thread count — because every one of
//! them is a `Transport` sequenced by `ufc_core::engine::drive` over the
//! same block kernels.

use ufc_core::{AdmgSettings, AdmgSolver, BlockSchedule, Phase, Strategy};
use ufc_distsim::{
    CorruptionConfig, DistRunReport, DistributedAdmg, FaultPlan, Runtime, SocketOptions,
};
use ufc_experiments::solver_bench::admg_scaling;
use ufc_experiments::DEFAULT_SEED;
use ufc_model::{StorageFleet, UfcBreakdown, UfcInstance};

/// Bit-pattern view of every breakdown field, so equality failures are
/// exact (no tolerance hides a divergent engine).
fn breakdown_bits(b: &UfcBreakdown) -> Vec<u64> {
    vec![
        b.utility_dollars.to_bits(),
        b.energy_cost_dollars.to_bits(),
        b.carbon_cost_dollars.to_bits(),
        b.carbon_tons.to_bits(),
        b.average_latency_s.to_bits(),
        b.fuel_cell_mwh.to_bits(),
        b.grid_mwh.to_bits(),
        b.fuel_cell_utilization.to_bits(),
        b.queueing_cost_dollars.to_bits(),
        b.storage_mwh.to_bits(),
        b.storage_cost_dollars.to_bits(),
        b.ufc().to_bits(),
    ]
}

fn point_bits(lambda: &[Vec<f64>], mu: &[f64], nu: &[f64], d: &[f64]) -> Vec<u64> {
    lambda
        .iter()
        .flatten()
        .chain(mu.iter())
        .chain(nu.iter())
        .chain(d.iter())
        .map(|v| v.to_bits())
        .collect()
}

fn assert_report_matches(reference: &ReferenceRun, report: &DistRunReport, label: &str) {
    assert_eq!(
        reference.iterations, report.iterations,
        "{label}: iteration count diverged from the in-process solver"
    );
    assert!(
        report.converged,
        "{label}: engine failed to converge where the in-process solver did"
    );
    assert_eq!(
        reference.point,
        point_bits(
            &report.point.lambda,
            &report.point.mu,
            &report.point.nu,
            &report.point.d
        ),
        "{label}: operating point diverged bitwise"
    );
    assert_eq!(
        reference.breakdown,
        breakdown_bits(&report.breakdown),
        "{label}: UFC breakdown diverged bitwise"
    );
}

struct ReferenceRun {
    iterations: usize,
    point: Vec<u64>,
    breakdown: Vec<u64>,
}

fn reference_run(instance: &UfcInstance, settings: AdmgSettings) -> ReferenceRun {
    let solution = AdmgSolver::new(settings)
        .solve(instance, Strategy::Hybrid)
        .expect("in-process reference solve must succeed");
    assert!(
        solution.converged,
        "reference solve must converge within the iteration cap"
    );
    ReferenceRun {
        iterations: solution.iterations,
        point: point_bits(
            &solution.point.lambda,
            &solution.point.mu,
            &solution.point.nu,
            &solution.point.d,
        ),
        breakdown: breakdown_bits(&solution.breakdown),
    }
}

/// One engine sweep at a fixed thread count: in-process vs lockstep vs
/// threaded vs both fault-aware paths under `FaultPlan::none()`.
fn sweep_engines(num_threads: usize) {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    let instance = instances
        .first()
        .expect("scaling workload yields at least one instance");
    let settings = AdmgSettings {
        num_threads,
        ..AdmgSettings::default()
    };
    let reference = reference_run(instance, settings);
    let runner = DistributedAdmg::new(settings);

    let lockstep = runner
        .run(instance, Strategy::Hybrid, Runtime::Lockstep)
        .expect("lockstep run must succeed");
    assert_report_matches(&reference, &lockstep, "lockstep");
    assert!(
        lockstep.fault.is_none(),
        "clean lockstep run must not carry a fault report"
    );

    let threaded = runner
        .run(instance, Strategy::Hybrid, Runtime::Threaded)
        .expect("threaded run must succeed");
    assert_report_matches(&reference, &threaded, "threaded");
    assert_eq!(
        lockstep.stats, threaded.stats,
        "lockstep and threaded runs must exchange identical traffic"
    );

    for runtime in [Runtime::Lockstep, Runtime::Threaded] {
        let faulty = runner
            .run_faulty(instance, Strategy::Hybrid, runtime, FaultPlan::none())
            .expect("trivial-plan run must succeed");
        assert_report_matches(&reference, &faulty, "trivial fault plan");
        assert_eq!(
            lockstep.stats, faulty.stats,
            "a trivial fault plan must add no traffic ({runtime:?})"
        );
    }

    // Rate-0 corruption with checksums off must be indistinguishable from
    // a plain run: same iterates, same traffic, same wall-clock estimate.
    // This pins the "off by default costs nothing" contract of the codec.
    for runtime in [Runtime::Lockstep, Runtime::Threaded] {
        let corrupt = runner
            .run_corrupt(
                instance,
                Strategy::Hybrid,
                runtime,
                CorruptionConfig::new(0.0, DEFAULT_SEED),
            )
            .expect("rate-0 corrupt run must succeed");
        assert_report_matches(&reference, &corrupt, "rate-0 corruption");
        assert_eq!(
            lockstep.stats, corrupt.stats,
            "rate-0 corruption without checksums must add no traffic ({runtime:?})"
        );
        assert_eq!(
            lockstep.estimated_wan_seconds.to_bits(),
            corrupt.estimated_wan_seconds.to_bits(),
            "rate-0 corruption must not perturb the WAN-time estimate ({runtime:?})"
        );
        let integrity = corrupt
            .integrity
            .expect("an armed corruption channel reports integrity counters");
        assert!(
            integrity.is_zero(),
            "a rate-0 channel must count nothing ({runtime:?}): {integrity:?}"
        );
    }
}

/// The multi-process socket engine joins the agreement: real `ufc-node`
/// OS processes over loopback TCP, at both extremes of the co-hosting
/// spectrum (everything in one worker process, and nodes spread over
/// four), reproduce the in-process iterates bitwise with exactly the
/// lockstep engine's traffic.
#[test]
fn socket_engine_agrees_bitwise_across_process_counts() {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    let instance = instances
        .first()
        .expect("scaling workload yields at least one instance");
    let settings = AdmgSettings::default();
    let reference = reference_run(instance, settings);
    let runner = DistributedAdmg::new(settings);
    let lockstep = runner
        .run(instance, Strategy::Hybrid, Runtime::Lockstep)
        .expect("lockstep run must succeed");

    for processes in [1usize, 4] {
        let options = SocketOptions::new(env!("CARGO_BIN_EXE_ufc-node")).with_processes(processes);
        let socket = runner
            .run_sockets(instance, Strategy::Hybrid, &options)
            .expect("socket run must succeed");
        let label = format!("sockets x{processes}");
        assert_report_matches(&reference, &socket, &label);
        assert_eq!(
            lockstep.stats, socket.stats,
            "{label}: socket and lockstep runs must exchange identical traffic"
        );
        assert!(
            socket.fault.is_none(),
            "{label}: clean socket run must not carry a fault report"
        );
        assert!(
            socket.integrity.is_none(),
            "{label}: clean socket run must not carry integrity counters"
        );
    }
}

#[test]
fn engines_agree_bitwise_single_threaded() {
    sweep_engines(1);
}

#[test]
fn engines_agree_bitwise_multi_threaded() {
    sweep_engines(4);
}

/// A storage-free instance runs under exactly the explicit classic
/// schedule — the pre-refactor 4-block pipeline is the degenerate case of
/// the schedule-driven driver, not a separate code path.
#[test]
fn storage_free_instances_run_the_explicit_classic_schedule() {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    let instance = instances.first().expect("at least one instance");
    let bound = BlockSchedule::for_instance(instance);
    let classic = BlockSchedule::classic();
    assert_eq!(
        bound.blocks().iter().map(|b| b.kind).collect::<Vec<_>>(),
        classic.blocks().iter().map(|b| b.kind).collect::<Vec<_>>(),
        "a storage-free instance must bind the classic 4-block schedule"
    );
    assert!(!bound.has_storage());
    assert_eq!(
        classic.phases(),
        Phase::ALL.to_vec(),
        "the classic schedule's derived phases are the legacy phase list"
    );
}

/// The storage instance the cross-engine tests share: the scaling
/// workload's hour with a non-trivial battery on every datacenter, a
/// binding fuel-cell ramp, and a nonzero opportunity value.
fn storage_instance() -> UfcInstance {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    let instance = instances.first().expect("at least one instance").clone();
    let n = instance.n_datacenters();
    let params = StorageFleet::new(4.0, 2.0)
        .initial_charge_frac(0.5)
        .value_per_mwh(60.0)
        .degradation(0.5)
        .ramp_mw(2.5)
        .initial_params(n);
    instance
        .with_storage(params)
        .expect("storage parameters must validate")
}

/// The 5-block storage schedule agrees bitwise across the in-process
/// solver and both in-thread distributed engines, at 1 and 4 worker
/// threads, with identical traffic (including the new per-datacenter
/// `BlockReport` control messages).
#[test]
fn storage_schedule_agrees_bitwise_across_threaded_engines() {
    let instance = storage_instance();
    assert!(BlockSchedule::for_instance(&instance).has_storage());
    for num_threads in [1usize, 4] {
        let settings = AdmgSettings {
            num_threads,
            ..AdmgSettings::default()
        };
        let reference = reference_run(&instance, settings);
        let runner = DistributedAdmg::new(settings);
        let lockstep = runner
            .run(&instance, Strategy::Hybrid, Runtime::Lockstep)
            .expect("lockstep storage run must succeed");
        assert_report_matches(
            &reference,
            &lockstep,
            &format!("storage lockstep x{num_threads}"),
        );
        let threaded = runner
            .run(&instance, Strategy::Hybrid, Runtime::Threaded)
            .expect("threaded storage run must succeed");
        assert_report_matches(
            &reference,
            &threaded,
            &format!("storage threaded x{num_threads}"),
        );
        assert_eq!(
            lockstep.stats, threaded.stats,
            "storage runs must exchange identical traffic at {num_threads} threads"
        );
    }
}

/// The per-datacenter `BlockReport` control messages actually flow: a
/// storage run carries exactly `n` more control messages per iteration
/// than the zero-capacity run of the same schedule needs for its
/// bookkeeping (dead batteries report nothing).
#[test]
fn storage_runs_ship_one_block_report_per_datacenter_per_iteration() {
    let with_batteries = storage_instance();
    let n = with_batteries.n_datacenters();
    let zero = {
        let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
        let plain = instances.first().expect("at least one instance").clone();
        plain
            .clone()
            .with_storage(StorageFleet::new(0.0, 1.0).initial_params(n))
            .expect("zero-capacity storage must validate")
    };
    let runner = DistributedAdmg::new(AdmgSettings::default());
    for (instance, reports_per_iter) in [(&with_batteries, n), (&zero, 0)] {
        let report = runner
            .run(instance, Strategy::Hybrid, Runtime::Lockstep)
            .expect("lockstep run must succeed");
        // Per iteration the control plane carries: one residual report per
        // node, one continue/stop broadcast per node, and one BlockReport
        // per storage-active datacenter.
        let m = instance.m_frontends();
        let per_iter = 2 * (m + n) + reports_per_iter;
        assert_eq!(
            report.stats.control_messages,
            per_iter * report.iterations,
            "unexpected control traffic for reports_per_iter = {reports_per_iter}"
        );
    }
}

/// The socket engine runs the same 5-block schedule bitwise, at both ends
/// of the co-hosting spectrum (1 and 4 worker processes) — the run-config
/// frame carries the storage section and the schedule echo across the
/// process boundary.
#[test]
fn storage_schedule_agrees_bitwise_across_socket_process_counts() {
    let instance = storage_instance();
    let settings = AdmgSettings::default();
    let reference = reference_run(&instance, settings);
    let runner = DistributedAdmg::new(settings);
    let lockstep = runner
        .run(&instance, Strategy::Hybrid, Runtime::Lockstep)
        .expect("lockstep storage run must succeed");
    for processes in [1usize, 4] {
        let options = SocketOptions::new(env!("CARGO_BIN_EXE_ufc-node")).with_processes(processes);
        let socket = runner
            .run_sockets(&instance, Strategy::Hybrid, &options)
            .expect("socket storage run must succeed");
        let label = format!("storage sockets x{processes}");
        assert_report_matches(&reference, &socket, &label);
        assert_eq!(
            lockstep.stats, socket.stats,
            "{label}: socket and lockstep storage runs must exchange identical traffic"
        );
    }
}

/// Zero-capacity batteries bind the 5-block schedule but pin `d = +0.0`
/// everywhere, reproducing the spatial-only solution bit for bit on every
/// engine — at 1 and 4 threads in-thread, and 1 and 4 socket processes.
#[test]
fn zero_capacity_storage_is_bitwise_spatial_only_on_every_engine() {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    let plain = instances.first().expect("at least one instance").clone();
    let n = plain.n_datacenters();
    let zero = plain
        .clone()
        .with_storage(StorageFleet::new(0.0, 1.0).initial_params(n))
        .expect("zero-capacity storage must validate");
    assert!(BlockSchedule::for_instance(&zero).has_storage());

    for num_threads in [1usize, 4] {
        let settings = AdmgSettings {
            num_threads,
            ..AdmgSettings::default()
        };
        // The reference is the PLAIN instance: attaching dead batteries
        // must change nothing about the solution.
        let reference = reference_run(&plain, settings);
        let runner = DistributedAdmg::new(settings);
        for runtime in [Runtime::Lockstep, Runtime::Threaded] {
            let report = runner
                .run(&zero, Strategy::Hybrid, runtime)
                .expect("zero-capacity run must succeed");
            assert_report_matches(
                &reference,
                &report,
                &format!("zero-capacity {runtime:?} x{num_threads}"),
            );
            assert!(
                report
                    .point
                    .d
                    .iter()
                    .all(|&v| v.to_bits() == 0.0f64.to_bits()),
                "dead batteries must hold d at +0.0 exactly"
            );
        }
    }

    let settings = AdmgSettings::default();
    let reference = reference_run(&plain, settings);
    let runner = DistributedAdmg::new(settings);
    for processes in [1usize, 4] {
        let options = SocketOptions::new(env!("CARGO_BIN_EXE_ufc-node")).with_processes(processes);
        let socket = runner
            .run_sockets(&zero, Strategy::Hybrid, &options)
            .expect("zero-capacity socket run must succeed");
        assert_report_matches(
            &reference,
            &socket,
            &format!("zero-capacity sockets x{processes}"),
        );
    }
}
