//! Cross-engine invariant of the unified iteration driver: the in-process
//! solver, the lockstep engine, the supervised threaded engine, and both
//! engines under a trivial fault plan ([`FaultPlan::none`]) all run the
//! SAME iterates — bitwise, at any thread count — because every one of
//! them is a `Transport` sequenced by `ufc_core::engine::drive` over the
//! same block kernels.

use ufc_core::{AdmgSettings, AdmgSolver, Strategy};
use ufc_distsim::{
    CorruptionConfig, DistRunReport, DistributedAdmg, FaultPlan, Runtime, SocketOptions,
};
use ufc_experiments::solver_bench::admg_scaling;
use ufc_experiments::DEFAULT_SEED;
use ufc_model::{UfcBreakdown, UfcInstance};

/// Bit-pattern view of every breakdown field, so equality failures are
/// exact (no tolerance hides a divergent engine).
fn breakdown_bits(b: &UfcBreakdown) -> Vec<u64> {
    vec![
        b.utility_dollars.to_bits(),
        b.energy_cost_dollars.to_bits(),
        b.carbon_cost_dollars.to_bits(),
        b.carbon_tons.to_bits(),
        b.average_latency_s.to_bits(),
        b.fuel_cell_mwh.to_bits(),
        b.grid_mwh.to_bits(),
        b.fuel_cell_utilization.to_bits(),
        b.queueing_cost_dollars.to_bits(),
        b.ufc().to_bits(),
    ]
}

fn point_bits(lambda: &[Vec<f64>], mu: &[f64], nu: &[f64]) -> Vec<u64> {
    lambda
        .iter()
        .flatten()
        .chain(mu.iter())
        .chain(nu.iter())
        .map(|v| v.to_bits())
        .collect()
}

fn assert_report_matches(reference: &ReferenceRun, report: &DistRunReport, label: &str) {
    assert_eq!(
        reference.iterations, report.iterations,
        "{label}: iteration count diverged from the in-process solver"
    );
    assert!(
        report.converged,
        "{label}: engine failed to converge where the in-process solver did"
    );
    assert_eq!(
        reference.point,
        point_bits(&report.point.lambda, &report.point.mu, &report.point.nu),
        "{label}: operating point diverged bitwise"
    );
    assert_eq!(
        reference.breakdown,
        breakdown_bits(&report.breakdown),
        "{label}: UFC breakdown diverged bitwise"
    );
}

struct ReferenceRun {
    iterations: usize,
    point: Vec<u64>,
    breakdown: Vec<u64>,
}

fn reference_run(instance: &UfcInstance, settings: AdmgSettings) -> ReferenceRun {
    let solution = AdmgSolver::new(settings)
        .solve(instance, Strategy::Hybrid)
        .expect("in-process reference solve must succeed");
    assert!(
        solution.converged,
        "reference solve must converge within the iteration cap"
    );
    ReferenceRun {
        iterations: solution.iterations,
        point: point_bits(
            &solution.point.lambda,
            &solution.point.mu,
            &solution.point.nu,
        ),
        breakdown: breakdown_bits(&solution.breakdown),
    }
}

/// One engine sweep at a fixed thread count: in-process vs lockstep vs
/// threaded vs both fault-aware paths under `FaultPlan::none()`.
fn sweep_engines(num_threads: usize) {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    let instance = instances
        .first()
        .expect("scaling workload yields at least one instance");
    let settings = AdmgSettings {
        num_threads,
        ..AdmgSettings::default()
    };
    let reference = reference_run(instance, settings);
    let runner = DistributedAdmg::new(settings);

    let lockstep = runner
        .run(instance, Strategy::Hybrid, Runtime::Lockstep)
        .expect("lockstep run must succeed");
    assert_report_matches(&reference, &lockstep, "lockstep");
    assert!(
        lockstep.fault.is_none(),
        "clean lockstep run must not carry a fault report"
    );

    let threaded = runner
        .run(instance, Strategy::Hybrid, Runtime::Threaded)
        .expect("threaded run must succeed");
    assert_report_matches(&reference, &threaded, "threaded");
    assert_eq!(
        lockstep.stats, threaded.stats,
        "lockstep and threaded runs must exchange identical traffic"
    );

    for runtime in [Runtime::Lockstep, Runtime::Threaded] {
        let faulty = runner
            .run_faulty(instance, Strategy::Hybrid, runtime, FaultPlan::none())
            .expect("trivial-plan run must succeed");
        assert_report_matches(&reference, &faulty, "trivial fault plan");
        assert_eq!(
            lockstep.stats, faulty.stats,
            "a trivial fault plan must add no traffic ({runtime:?})"
        );
    }

    // Rate-0 corruption with checksums off must be indistinguishable from
    // a plain run: same iterates, same traffic, same wall-clock estimate.
    // This pins the "off by default costs nothing" contract of the codec.
    for runtime in [Runtime::Lockstep, Runtime::Threaded] {
        let corrupt = runner
            .run_corrupt(
                instance,
                Strategy::Hybrid,
                runtime,
                CorruptionConfig::new(0.0, DEFAULT_SEED),
            )
            .expect("rate-0 corrupt run must succeed");
        assert_report_matches(&reference, &corrupt, "rate-0 corruption");
        assert_eq!(
            lockstep.stats, corrupt.stats,
            "rate-0 corruption without checksums must add no traffic ({runtime:?})"
        );
        assert_eq!(
            lockstep.estimated_wan_seconds.to_bits(),
            corrupt.estimated_wan_seconds.to_bits(),
            "rate-0 corruption must not perturb the WAN-time estimate ({runtime:?})"
        );
        let integrity = corrupt
            .integrity
            .expect("an armed corruption channel reports integrity counters");
        assert!(
            integrity.is_zero(),
            "a rate-0 channel must count nothing ({runtime:?}): {integrity:?}"
        );
    }
}

/// The multi-process socket engine joins the agreement: real `ufc-node`
/// OS processes over loopback TCP, at both extremes of the co-hosting
/// spectrum (everything in one worker process, and nodes spread over
/// four), reproduce the in-process iterates bitwise with exactly the
/// lockstep engine's traffic.
#[test]
fn socket_engine_agrees_bitwise_across_process_counts() {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    let instance = instances
        .first()
        .expect("scaling workload yields at least one instance");
    let settings = AdmgSettings::default();
    let reference = reference_run(instance, settings);
    let runner = DistributedAdmg::new(settings);
    let lockstep = runner
        .run(instance, Strategy::Hybrid, Runtime::Lockstep)
        .expect("lockstep run must succeed");

    for processes in [1usize, 4] {
        let options = SocketOptions::new(env!("CARGO_BIN_EXE_ufc-node")).with_processes(processes);
        let socket = runner
            .run_sockets(instance, Strategy::Hybrid, &options)
            .expect("socket run must succeed");
        let label = format!("sockets x{processes}");
        assert_report_matches(&reference, &socket, &label);
        assert_eq!(
            lockstep.stats, socket.stats,
            "{label}: socket and lockstep runs must exchange identical traffic"
        );
        assert!(
            socket.fault.is_none(),
            "{label}: clean socket run must not carry a fault report"
        );
        assert!(
            socket.integrity.is_none(),
            "{label}: clean socket run must not carry integrity counters"
        );
    }
}

#[test]
fn engines_agree_bitwise_single_threaded() {
    sweep_engines(1);
}

#[test]
fn engines_agree_bitwise_multi_threaded() {
    sweep_engines(4);
}
