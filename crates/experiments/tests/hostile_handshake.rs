//! Hostile-network handshake hardening: the socket engine's acceptor is
//! poked with truncated, malformed, downgraded, and forged handshakes
//! over real TCP connections while an authenticated run is in flight. No
//! hostile peer may reach the iteration loop, the acceptor must keep
//! serving honest workers, and the authenticated run must still reproduce
//! the lockstep solution bit-for-bit.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use ufc_core::{AdmgSettings, CoreError, Strategy};
use ufc_distsim::message::crc32;
use ufc_distsim::wire::{frame, WIRE_MAGIC};
use ufc_distsim::{AuthKey, BindConfig, DistributedAdmg, Runtime, SocketOptions};
use ufc_experiments::solver_bench::admg_scaling;
use ufc_experiments::DEFAULT_SEED;
use ufc_model::UfcInstance;

fn worker_options() -> SocketOptions {
    SocketOptions::new(env!("CARGO_BIN_EXE_ufc-node"))
}

fn workload() -> UfcInstance {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    instances
        .into_iter()
        .next()
        .expect("scaling workload yields at least one instance")
}

fn test_key() -> AuthKey {
    AuthKey::new([0x5A; 32])
}

fn point_bits(report: &ufc_distsim::DistRunReport) -> Vec<u64> {
    report
        .point
        .lambda
        .iter()
        .flatten()
        .chain(report.point.mu.iter())
        .chain(report.point.nu.iter())
        .map(|v| v.to_bits())
        .collect()
}

/// Reserves a free loopback port by binding an ephemeral listener and
/// dropping it, so the coordinator can be pointed at a known address.
fn free_port() -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let port = listener.local_addr().expect("local addr").port();
    drop(listener);
    port
}

/// Hand-assembles a checksummed wire payload `[magic, kind, body, crc32]`
/// exactly as `WireFrame::encode_payload` would, so the hostile peer can
/// speak well-formed framing without access to the crate internals.
fn forged_payload(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = vec![WIRE_MAGIC, kind];
    payload.extend_from_slice(body);
    let crc = crc32(&payload);
    payload.extend_from_slice(&crc.to_le_bytes());
    payload
}

/// A well-formed plain `Hello` — under authentication this is a protocol
/// downgrade and must be rejected even with a plausible-looking session.
fn forged_hello(session: u64) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&session.to_le_bytes());
    body.extend_from_slice(&0u32.to_le_bytes()); // process
    body.extend_from_slice(&0u32.to_le_bytes()); // incarnation
    frame(&forged_payload(0, &body))
}

/// A well-formed `AuthHello` whose MAC was not produced by the shared key
/// (a wrong-key peer, or a replay against a fresh nonce).
fn forged_auth_hello(session: u64, mac: [u8; 32]) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&session.to_le_bytes());
    body.extend_from_slice(&0u32.to_le_bytes()); // process
    body.extend_from_slice(&0u32.to_le_bytes()); // incarnation
    body.extend_from_slice(&mac);
    frame(&forged_payload(6, &body))
}

fn connect(addr: &str) -> TcpStream {
    for _ in 0..200 {
        if let Ok(stream) = TcpStream::connect(addr) {
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("read timeout");
            return stream;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("coordinator never started listening on {addr}");
}

/// Five hostile peers attack the acceptor over real TCP — garbage before
/// the magic, an oversized length prefix, a truncated `Hello`, a protocol
/// downgrade, and a forged/replayed `AuthHello` — while honest
/// authenticated workers run the protocol on the same listener. Every
/// attack dies before the iteration loop and the run still matches
/// lockstep bitwise.
#[test]
fn acceptor_survives_hostile_peers_while_serving_honest_workers() {
    let instance = workload();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let clean = runner
        .run(&instance, Strategy::Hybrid, Runtime::Lockstep)
        .expect("clean lockstep run must converge");

    let addr = format!("127.0.0.1:{}", free_port());
    let options = worker_options()
        .with_bind(BindConfig::new(addr.clone()))
        .with_auth(test_key());
    let run = {
        let instance = instance.clone();
        std::thread::spawn(move || runner.run_sockets(&instance, Strategy::Hybrid, &options))
    };

    // 1. Garbage before the magic: bytes that never form a frame.
    let mut stream = connect(&addr);
    stream.write_all(&[0xDE; 64]).expect("write garbage");
    drop(stream);

    // 2. Oversized length prefix: claims a frame far past the cap.
    let mut stream = connect(&addr);
    stream
        .write_all(&u32::MAX.to_le_bytes())
        .expect("write oversized prefix");
    stream.write_all(&[0u8; 16]).expect("write stub body");
    drop(stream);

    // 3. Truncated `Hello`: a valid frame cut off mid-payload, then EOF.
    let mut stream = connect(&addr);
    let hello = forged_hello(0);
    stream
        .write_all(&hello[..hello.len() / 2])
        .expect("write truncated hello");
    drop(stream);

    // 4. Downgrade: a well-formed plain `Hello` where the key demands the
    //    challenge–response exchange.
    let mut stream = connect(&addr);
    stream.write_all(&forged_hello(0)).expect("write downgrade");
    drop(stream);

    // 5. Forged `AuthHello`: read the challenge (proving the acceptor
    //    engaged), answer with a MAC the shared key never produced, and
    //    replay the same bytes against a second fresh nonce.
    let mut stream = connect(&addr);
    let mut challenge = [0u8; 8];
    stream
        .read_exact(&mut challenge)
        .expect("acceptor must send a challenge to an authenticated peer");
    let forged = forged_auth_hello(0, [0xAB; 32]);
    stream.write_all(&forged).expect("write forged auth hello");
    drop(stream);
    let mut stream = connect(&addr);
    stream.write_all(&forged).expect("replay forged auth hello");
    drop(stream);

    let report = run
        .join()
        .expect("run thread must not panic")
        .expect("honest authenticated run must survive the hostile peers");
    assert!(report.converged);
    assert_eq!(clean.iterations, report.iterations);
    assert_eq!(
        point_bits(&clean),
        point_bits(&report),
        "hostile peers must not perturb the operating point"
    );
    assert_eq!(
        clean.breakdown.ufc().to_bits(),
        report.breakdown.ufc().to_bits(),
        "hostile peers must not perturb the UFC"
    );
}

/// The authenticated handshake is a transparent layer: with the shared
/// key on both sides, runs at one process and at four co-hosted processes
/// reproduce the lockstep solution bit-for-bit.
#[test]
fn authenticated_runs_match_lockstep_at_one_and_four_processes() {
    let instance = workload();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let clean = runner
        .run(&instance, Strategy::Hybrid, Runtime::Lockstep)
        .expect("clean lockstep run must converge");
    for processes in [1, 4] {
        let options = worker_options()
            .with_processes(processes)
            .with_auth(test_key());
        let report = runner
            .run_sockets(&instance, Strategy::Hybrid, &options)
            .unwrap_or_else(|e| panic!("authenticated run at {processes} processes: {e}"));
        assert!(report.converged);
        assert_eq!(
            point_bits(&clean),
            point_bits(&report),
            "{processes} processes: point must match lockstep bitwise"
        );
        assert_eq!(
            clean.breakdown.ufc().to_bits(),
            report.breakdown.ufc().to_bits(),
            "{processes} processes: UFC must match lockstep bitwise"
        );
    }
}

/// Exposing the listener beyond loopback without a shared key is refused
/// up front with a typed configuration error — an unauthenticated remote
/// bind never starts listening.
#[test]
fn non_loopback_bind_without_key_is_rejected() {
    let instance = workload();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let options = worker_options().with_bind(BindConfig::new("0.0.0.0:0"));
    let err = runner
        .run_sockets(&instance, Strategy::Hybrid, &options)
        .expect_err("remote bind without a key must be refused");
    match err {
        CoreError::InvalidConfig { context } => {
            assert!(
                context.contains("auth"),
                "error must point at the missing key, got {context:?}"
            );
        }
        other => panic!("expected a typed InvalidConfig, got {other:?}"),
    }
}
