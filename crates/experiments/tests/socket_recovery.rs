//! Crash recovery outside the simulator: the socket engine's worker
//! processes are killed with real `SIGKILL`s mid-iteration and TCP
//! connections are torn down for a partition window, and the
//! checkpoint-restarted run must still land on the clean operating point
//! bit-for-bit. The faults here are delivered by the operating system —
//! the process table and the socket layer, not an in-process script — so
//! this is the paper protocol's recovery story under its real failure
//! model.

use std::time::Duration;

use ufc_core::{AdmgSettings, CoreError, Strategy};
use ufc_distsim::{DistributedAdmg, FaultPlan, NodeId, Runtime, SocketOptions};
use ufc_experiments::sockets::recovery_fault_plan;
use ufc_experiments::solver_bench::admg_scaling;
use ufc_experiments::DEFAULT_SEED;
use ufc_model::UfcInstance;

fn worker_options() -> SocketOptions {
    SocketOptions::new(env!("CARGO_BIN_EXE_ufc-node"))
}

fn workload() -> UfcInstance {
    let instances = admg_scaling(DEFAULT_SEED, 1).expect("scaling workload must build");
    instances
        .into_iter()
        .next()
        .expect("scaling workload yields at least one instance")
}

fn point_bits(report: &ufc_distsim::DistRunReport) -> Vec<u64> {
    report
        .point
        .lambda
        .iter()
        .flatten()
        .chain(report.point.mu.iter())
        .chain(report.point.nu.iter())
        .map(|v| v.to_bits())
        .collect()
}

/// A worker SIGKILL'd mid-iteration is declared dead by the deadline
/// ladder, respawned, restored from the last verified checkpoint, and
/// replayed — and the recovered run reproduces the clean iterates
/// exactly, down to the last bit of the operating point.
#[test]
fn sigkilled_workers_recover_bit_identically() {
    let instance = workload();
    let settings = AdmgSettings::default();
    let runner = DistributedAdmg::new(settings);
    let clean = runner
        .run(&instance, Strategy::Hybrid, Runtime::Lockstep)
        .expect("clean lockstep run must succeed");

    let recovered = runner
        .run_sockets_faulty(
            &instance,
            Strategy::Hybrid,
            &worker_options(),
            recovery_fault_plan(),
        )
        .expect("every scripted crash has a recovery budget, so the run must succeed");

    assert_eq!(
        clean.iterations, recovered.iterations,
        "recovery must not change the iteration count"
    );
    assert!(recovered.converged, "recovered run must converge");
    assert_eq!(
        point_bits(&clean),
        point_bits(&recovered),
        "recovered operating point must match the clean run bitwise"
    );
    assert_eq!(
        clean.breakdown.ufc().to_bits(),
        recovered.breakdown.ufc().to_bits(),
        "recovered UFC must match the clean run bitwise"
    );

    let fault = recovered.fault.expect("faulty run reports fault counters");
    assert_eq!(
        fault.crashes_observed, 2,
        "both scripted SIGKILLs must fire and resolve"
    );
    assert!(
        fault.checkpoints_taken > 0,
        "recovery requires checkpoints to restart from"
    );
    assert!(
        fault.recomputed_iterations > 0,
        "restart must replay iterations past the checkpoint"
    );
    assert_eq!(
        fault.ufc_delta_vs_clean, 0.0,
        "full recovery must cost nothing in UFC"
    );
    assert!(fault.evicted.is_empty(), "no datacenter should be evicted");

    let integrity = recovered
        .integrity
        .expect("socket recovery reports integrity counters");
    assert_eq!(
        integrity.dead_node_declarations, 2,
        "the ladder must declare exactly the two SIGKILL'd nodes dead"
    );
    assert!(
        integrity.reconnects >= 2,
        "the partition window must tear down and re-establish both sides"
    );
}

/// An unrecoverable front-end crash (no recovery budget) is fatal with a
/// typed error — the coordinator must not hang on the dead process or
/// panic, and must name the node that died.
#[test]
fn unrecoverable_frontend_crash_fails_typed() {
    let instance = workload();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let plan = FaultPlan::new()
        .with_phase_timeout(Duration::from_millis(25))
        .crash_at(NodeId::Frontend(0), 3);
    let err = runner
        .run_sockets_faulty(&instance, Strategy::Hybrid, &worker_options(), plan)
        .expect_err("a permanent front-end crash must be fatal");
    match err {
        CoreError::NodeFailure { node, .. } => {
            assert!(
                node.contains("frontend[0]"),
                "error must name the dead front-end, got {node:?}"
            );
        }
        other => panic!("expected a typed NodeFailure, got {other:?}"),
    }
}

/// Process-level fault injection demands the one-process-per-node split:
/// a kill plan combined with co-hosting is rejected up front with a
/// typed configuration error instead of killing an unrelated node.
#[test]
fn kill_plans_require_one_process_per_node() {
    let instance = workload();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    let options = worker_options().with_processes(4);
    let plan = FaultPlan::new().crash_and_recover(NodeId::Datacenter(0), 3, 1);
    let err = runner
        .run_sockets_faulty(&instance, Strategy::Hybrid, &options, plan)
        .expect_err("co-hosted kill plans must be rejected");
    assert!(
        matches!(err, CoreError::InvalidConfig { .. }),
        "expected a typed InvalidConfig, got {err:?}"
    );
}
