//! Shared fixtures for the UFC criterion benches.
//!
//! The benches in `benches/` regenerate every table and figure of the paper
//! (`tables_and_figures`), measure the substrate solvers (`solvers`), chart
//! how the distributed algorithm scales with the number of front-ends
//! (`admg_scaling`), and quantify the design choices called out in
//! DESIGN.md §7 (`ablations`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ufc_model::scenario::{ScenarioBuilder, WeeklyScenario};
use ufc_model::{EmissionCostFn, UfcInstance};

/// Seed shared by all benches so figures match EXPERIMENTS.md.
pub const BENCH_SEED: u64 = 2012;

/// A short scenario (the benches' unit of work): `hours` of the
/// paper-default setup.
///
/// # Panics
///
/// Panics if the builder rejects the configuration (cannot happen for the
/// defaults).
#[must_use]
pub fn scenario(hours: usize) -> WeeklyScenario {
    ScenarioBuilder::paper_default()
        .seed(BENCH_SEED)
        .hours(hours)
        .build()
        .expect("paper-default scenario must build")
}

/// A single paper-scale instance (M = 10, N = 4) at a busy hour.
#[must_use]
pub fn paper_instance() -> UfcInstance {
    scenario(16).instances.swap_remove(15)
}

/// A synthetic instance with `m` front-ends and `n` datacenters for the
/// scaling benches. Latency/price/carbon values cycle through plausible
/// ranges; capacity comfortably covers arrivals.
///
/// # Panics
///
/// Panics if `m == 0 || n == 0`.
#[must_use]
pub fn synthetic_instance(m: usize, n: usize) -> UfcInstance {
    assert!(m > 0 && n > 0, "need at least one of each node kind");
    let arrivals: Vec<f64> = (0..m).map(|i| 0.8 + 0.1 * (i % 5) as f64).collect();
    let total: f64 = arrivals.iter().sum();
    let cap = 1.5 * total / n as f64;
    let capacities = vec![cap; n];
    let alpha: Vec<f64> = capacities.iter().map(|s| s * 0.12).collect();
    let beta = vec![0.12; n];
    let mu_max: Vec<f64> = capacities.iter().map(|s| s * 0.24).collect();
    let prices: Vec<f64> = (0..n).map(|j| 25.0 + 15.0 * (j % 4) as f64).collect();
    let carbon: Vec<f64> = (0..n).map(|j| 0.3 + 0.1 * (j % 3) as f64).collect();
    let latency: Vec<Vec<f64>> = (0..m)
        .map(|i| {
            (0..n)
                .map(|j| 0.004 + 0.003 * ((i + 2 * j) % 7) as f64)
                .collect()
        })
        .collect();
    UfcInstance::new(
        arrivals,
        capacities,
        alpha,
        beta,
        mu_max,
        prices,
        80.0,
        carbon,
        latency,
        10.0,
        vec![EmissionCostFn::Linear { rate: 25.0 }; n],
        1.0,
    )
    .expect("synthetic instance must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(scenario(2).hours(), 2);
        let inst = paper_instance();
        assert_eq!(inst.m_frontends(), 10);
        assert_eq!(inst.n_datacenters(), 4);
        let s = synthetic_instance(25, 6);
        assert_eq!(s.m_frontends(), 25);
        assert!(s.total_capacity() > s.total_arrivals());
    }
}
