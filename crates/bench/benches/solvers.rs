//! Substrate solver micro-benchmarks: the dense factorizations and the
//! three QP paths that power every ADM-G iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ufc_linalg::{Cholesky, Ldlt, Lu, Matrix};
use ufc_opt::projection::{project_capped_simplex, project_simplex};
use ufc_opt::{ActiveSetQp, AdmmQp, Fista, QuadObjective};

fn spd(n: usize) -> Matrix {
    // Diagonally dominant SPD with off-diagonal structure.
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            4.0 + (i % 3) as f64
        } else {
            1.0 / (1.0 + (i as f64 - j as f64).abs())
        }
    })
}

fn bench_factorizations(c: &mut Criterion) {
    let mut g = c.benchmark_group("factorizations");
    for n in [8usize, 32, 96] {
        let a = spd(n);
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        g.bench_with_input(BenchmarkId::new("cholesky_solve", n), &n, |b, _| {
            b.iter(|| {
                let f = Cholesky::factor(black_box(&a)).unwrap();
                black_box(f.solve(black_box(&rhs)).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("ldlt_solve", n), &n, |b, _| {
            b.iter(|| {
                let f = Ldlt::factor(black_box(&a)).unwrap();
                black_box(f.solve(black_box(&rhs)).unwrap())
            })
        });
        g.bench_with_input(BenchmarkId::new("lu_solve", n), &n, |b, _| {
            b.iter(|| {
                let f = Lu::factor(black_box(&a)).unwrap();
                black_box(f.solve(black_box(&rhs)).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_projections(c: &mut Criterion) {
    let mut g = c.benchmark_group("projections");
    for n in [4usize, 10, 100, 1000] {
        let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 17) as f64 / 7.0 - 1.0).collect();
        g.bench_with_input(BenchmarkId::new("simplex", n), &n, |b, _| {
            b.iter(|| black_box(project_simplex(black_box(&x), 1.0)))
        });
        g.bench_with_input(BenchmarkId::new("capped_simplex", n), &n, |b, _| {
            b.iter(|| black_box(project_capped_simplex(black_box(&x), 1.0)))
        });
    }
    g.finish();
}

/// The λ-sub-problem shape at growing datacenter counts: ρI + γLLᵀ over a
/// simplex — exactly what every front-end solves every iteration.
fn lambda_shaped_problem(n: usize) -> (QuadObjective, f64) {
    let arrival = 2.0;
    let latencies: Vec<f64> = (0..n).map(|j| 0.005 + 0.002 * (j % 9) as f64).collect();
    let c: Vec<f64> = (0..n).map(|j| 0.1 * ((j % 5) as f64 - 2.0)).collect();
    let obj = QuadObjective::diag_rank1(vec![1.0; n], 2.0 * 1e4 / arrival, latencies, c, 0.0);
    (obj, arrival)
}

fn bench_qp_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("lambda_subproblem");
    for n in [4usize, 10, 40] {
        let (obj, arrival) = lambda_shaped_problem(n);
        let a_eq = Matrix::from_fn(1, n, |_, _| 1.0);
        let a_in = Matrix::from_fn(n, n, |i, j| if i == j { -1.0 } else { 0.0 });
        let start = vec![arrival / n as f64; n];
        g.bench_with_input(BenchmarkId::new("active_set", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    ActiveSetQp::default()
                        .solve(
                            black_box(&obj),
                            &a_eq,
                            &[arrival],
                            &a_in,
                            &vec![0.0; n],
                            start.clone(),
                        )
                        .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("fista", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    Fista::new(100_000, 1e-9)
                        .minimize(
                            black_box(&obj),
                            |x| project_simplex(x, arrival),
                            start.clone(),
                        )
                        .unwrap(),
                )
            })
        });
        // ADMM path: Σx = arrival as an equality row plus x ≥ 0 bounds.
        let p = obj.dense_hessian();
        let q = obj.linear().to_vec();
        let mut a = Matrix::zeros(n + 1, n);
        for j in 0..n {
            a[(0, j)] = 1.0;
            a[(1 + j, j)] = 1.0;
        }
        let mut l = vec![0.0; n + 1];
        let mut u = vec![f64::INFINITY; n + 1];
        l[0] = arrival;
        u[0] = arrival;
        g.bench_with_input(BenchmarkId::new("admm_qp", n), &n, |b, _| {
            b.iter(|| black_box(AdmmQp::default().solve(&p, &q, &a, &l, &u).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    solvers,
    bench_factorizations,
    bench_projections,
    bench_qp_paths
);
criterion_main!(solvers);
