//! One bench per paper table/figure — each target literally re-runs the
//! experiment function that regenerates the artifact (on shortened horizons
//! so a full criterion pass stays tractable) and reports the headline
//! numbers once per target so benchmark logs double as a reproduction
//! record.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ufc_core::AdmgSettings;
use ufc_experiments::{convergence, fig3, sweep, table1, weekly, DEFAULT_SEED};

/// Hours used by the per-figure benches (a day keeps each iteration around
/// a second; `repro` runs the full 168-hour versions).
const BENCH_HOURS: usize = 24;

fn bench_table1(c: &mut Criterion) {
    let t = table1::run(DEFAULT_SEED);
    println!(
        "[table1] Dallas grid/fuel/hybrid = {:.0}/{:.0}/{:.0} $; San Jose = {:.0}/{:.0}/{:.0} $",
        t.sites[0].grid,
        t.sites[0].fuel_cell,
        t.sites[0].hybrid,
        t.sites[1].grid,
        t.sites[1].fuel_cell,
        t.sites[1].hybrid,
    );
    c.bench_function("table1_single_dc_costs", |b| {
        b.iter(|| black_box(table1::run(black_box(DEFAULT_SEED))))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let f = fig3::run(DEFAULT_SEED, 168).unwrap();
    println!(
        "[fig3] mean prices {:?} $/MWh, mean carbon {:?} g/kWh",
        f.mean_prices()
            .iter()
            .map(|v| v.round())
            .collect::<Vec<_>>(),
        f.mean_carbon()
            .iter()
            .map(|v| v.round())
            .collect::<Vec<_>>(),
    );
    c.bench_function("fig3_trace_generation", |b| {
        b.iter(|| black_box(fig3::run(black_box(DEFAULT_SEED), black_box(168)).unwrap()))
    });
}

fn bench_weekly_figures(c: &mut Criterion) {
    // Figs. 4–8 share the weekly engine; run it once for the report, then
    // benchmark the engine itself.
    let r = weekly::run(DEFAULT_SEED, BENCH_HOURS, AdmgSettings::default()).unwrap();
    println!(
        "[fig4] avg I_hg = {:.1}%, avg I_hf = {:.1}%, avg I_fg = {:.1}%",
        100.0 * r.mean_of(|h| h.i_hg),
        100.0 * r.mean_of(|h| h.i_hf),
        100.0 * r.mean_of(|h| h.i_fg),
    );
    println!(
        "[fig5] latency hybrid/grid/fuel = {:.1}/{:.1}/{:.1} ms",
        1e3 * r.mean_of(|h| h.latency_s[0]),
        1e3 * r.mean_of(|h| h.latency_s[1]),
        1e3 * r.mean_of(|h| h.latency_s[2]),
    );
    println!(
        "[fig6] hourly energy cost hybrid/grid/fuel = {:.0}/{:.0}/{:.0} $",
        r.mean_of(|h| h.energy_cost[0]),
        r.mean_of(|h| h.energy_cost[1]),
        r.mean_of(|h| h.energy_cost[2]),
    );
    println!(
        "[fig7] hourly carbon cost hybrid/grid/fuel = {:.1}/{:.1}/{:.1} $",
        r.mean_of(|h| h.carbon_cost[0]),
        r.mean_of(|h| h.carbon_cost[1]),
        r.mean_of(|h| h.carbon_cost[2]),
    );
    println!(
        "[fig8] avg fuel-cell utilization = {:.1}%",
        100.0 * r.mean_of(|h| h.utilization)
    );
    let cdf = convergence::from_counts(r.iteration_counts());
    println!(
        "[fig11] iterations min/max = {}/{}, {:.0}% within 100",
        cdf.min(),
        cdf.max(),
        100.0 * cdf.fraction_within(100)
    );

    let mut g = c.benchmark_group("weekly_engine");
    g.sample_size(10);
    g.bench_function("figs4_to_8_and_11", |b| {
        b.iter(|| {
            black_box(
                weekly::run(
                    black_box(DEFAULT_SEED),
                    black_box(BENCH_HOURS),
                    AdmgSettings::default(),
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let probe = [27.0, 80.0, 120.0];
    let s =
        sweep::sweep_fuel_cell_price(DEFAULT_SEED, BENCH_HOURS, AdmgSettings::default(), &probe)
            .unwrap();
    for p in &s.points {
        println!(
            "[fig9] p0 = {:>3.0} $/MWh → improvement {:.1}%, utilization {:.1}%",
            p.value,
            100.0 * p.avg_improvement,
            100.0 * p.avg_utilization
        );
    }
    let mut g = c.benchmark_group("fig9_p0_sweep");
    g.sample_size(10);
    g.bench_function("three_point_day", |b| {
        b.iter(|| {
            black_box(
                sweep::sweep_fuel_cell_price(
                    black_box(DEFAULT_SEED),
                    black_box(BENCH_HOURS),
                    AdmgSettings::default(),
                    &probe,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let probe = [25.0, 80.0, 140.0];
    let s = sweep::sweep_carbon_tax(DEFAULT_SEED, BENCH_HOURS, AdmgSettings::default(), &probe)
        .unwrap();
    for p in &s.points {
        println!(
            "[fig10] tax = {:>3.0} $/ton → improvement {:.1}%, utilization {:.1}%",
            p.value,
            100.0 * p.avg_improvement,
            100.0 * p.avg_utilization
        );
    }
    let mut g = c.benchmark_group("fig10_tax_sweep");
    g.sample_size(10);
    g.bench_function("three_point_day", |b| {
        b.iter(|| {
            black_box(
                sweep::sweep_carbon_tax(
                    black_box(DEFAULT_SEED),
                    black_box(BENCH_HOURS),
                    AdmgSettings::default(),
                    &probe,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    tables_and_figures,
    bench_table1,
    bench_fig3,
    bench_weekly_figures,
    bench_fig9,
    bench_fig10
);
criterion_main!(tables_and_figures);
