//! Scaling study: how the distributed ADM-G algorithm behaves as the
//! deployment grows — the paper's motivation for a distributed solution
//! ("tens of datacenters, hundreds of thousands of front-ends").
//!
//! Measures wall-clock per solve for growing front-end counts with both
//! sub-problem backends, and the message volume of the distributed
//! protocol at paper scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ufc_bench::{paper_instance, synthetic_instance};
use ufc_core::{AdmgSettings, AdmgSolver, Strategy, SubproblemMethod};
use ufc_distsim::{DistributedAdmg, Runtime};

fn bench_frontend_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("admg_frontend_scaling");
    g.sample_size(10);
    // The exact active-set path refactorizes a dense KKT per working-set
    // change, so it is benchmarked at the scales it is recommended for
    // (M ≤ 40); FISTA carries the large-M story.
    for m in [10usize, 40] {
        let inst = synthetic_instance(m, 4);
        let solver =
            AdmgSolver::new(AdmgSettings::default().with_method(SubproblemMethod::ActiveSet));
        g.bench_with_input(BenchmarkId::new("active_set", m), &m, |b, _| {
            b.iter(|| black_box(solver.solve(black_box(&inst), Strategy::Hybrid).unwrap()))
        });
    }
    for m in [10usize, 40, 160] {
        let inst = synthetic_instance(m, 4);
        let solver = AdmgSolver::new(AdmgSettings::default().with_method(SubproblemMethod::Fista));
        g.bench_with_input(BenchmarkId::new("fista", m), &m, |b, _| {
            b.iter(|| black_box(solver.solve(black_box(&inst), Strategy::Hybrid).unwrap()))
        });
    }
    g.finish();
}

fn bench_datacenter_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("admg_datacenter_scaling");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        let inst = synthetic_instance(20, n);
        let solver = AdmgSolver::new(AdmgSettings::default());
        g.bench_with_input(BenchmarkId::new("active_set", n), &n, |b, _| {
            b.iter(|| black_box(solver.solve(black_box(&inst), Strategy::Hybrid).unwrap()))
        });
    }
    g.finish();
}

fn bench_distributed_runtimes(c: &mut Criterion) {
    let inst = paper_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    // Report the protocol cost once.
    let report = runner
        .run(&inst, Strategy::Hybrid, Runtime::Lockstep)
        .unwrap();
    println!(
        "[distsim] paper scale: {} iterations, {} data + {} control messages, \
         {:.1} KiB, est. WAN wall-clock {:.2} s",
        report.iterations,
        report.stats.data_messages,
        report.stats.control_messages,
        report.stats.total_bytes as f64 / 1024.0,
        report.estimated_wan_seconds,
    );
    let mut g = c.benchmark_group("distributed_runtime");
    g.sample_size(10);
    g.bench_function("lockstep_paper_scale", |b| {
        b.iter(|| {
            black_box(
                runner
                    .run(black_box(&inst), Strategy::Hybrid, Runtime::Lockstep)
                    .unwrap(),
            )
        })
    });
    g.bench_function("threaded_paper_scale", |b| {
        b.iter(|| {
            black_box(
                runner
                    .run(black_box(&inst), Strategy::Hybrid, Runtime::Threaded)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_lossy_runtime(c: &mut Criterion) {
    use ufc_distsim::loss::LossConfig;
    let inst = paper_instance();
    let runner = DistributedAdmg::new(AdmgSettings::default());
    for p in [0.0, 0.1, 0.3] {
        let report = runner
            .run_lossy(&inst, Strategy::Hybrid, LossConfig::new(p, 7))
            .unwrap();
        println!(
            "[distsim] loss p = {p}: {} retransmissions, est. WAN wall-clock {:.2} s",
            report.retransmissions, report.estimated_wan_seconds,
        );
    }
    let mut g = c.benchmark_group("lossy_runtime");
    g.sample_size(10);
    for p in [0.0, 0.3] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                black_box(
                    runner
                        .run_lossy(black_box(&inst), Strategy::Hybrid, LossConfig::new(p, 7))
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    admg_scaling,
    bench_frontend_scaling,
    bench_datacenter_scaling,
    bench_distributed_runtimes,
    bench_lossy_runtime
);
criterion_main!(admg_scaling);
