//! Ablations of the design choices DESIGN.md calls out: the penalty ρ, the
//! back-substitution relaxation ε, the literal-paper hyper-parameters, the
//! emission-cost shape, and the centralized backends. Each target prints
//! the iteration counts it observed, so the bench log doubles as an
//! ablation table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ufc_bench::paper_instance;
use ufc_core::{centralized, AdmgSettings, AdmgSolver, Strategy};
use ufc_model::EmissionCostFn;

fn bench_rho(c: &mut Criterion) {
    let inst = paper_instance();
    let mut g = c.benchmark_group("ablation_rho");
    g.sample_size(10);
    for rho in [0.3, 1.0, 2.0] {
        let solver = AdmgSolver::new(AdmgSettings::default().with_rho(rho));
        let iters = solver.solve(&inst, Strategy::Hybrid).unwrap().iterations;
        println!("[ablation] rho = {rho}: {iters} iterations");
        g.bench_with_input(BenchmarkId::from_parameter(rho), &rho, |b, _| {
            b.iter(|| black_box(solver.solve(black_box(&inst), Strategy::Hybrid).unwrap()))
        });
    }
    g.finish();
}

fn bench_epsilon(c: &mut Criterion) {
    let inst = paper_instance();
    let mut g = c.benchmark_group("ablation_epsilon");
    g.sample_size(10);
    for eps in [0.6, 0.9, 1.0] {
        let solver = AdmgSolver::new(AdmgSettings::default().with_epsilon(eps));
        let iters = solver.solve(&inst, Strategy::Hybrid).unwrap().iterations;
        println!("[ablation] epsilon = {eps}: {iters} iterations");
        g.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, _| {
            b.iter(|| black_box(solver.solve(black_box(&inst), Strategy::Hybrid).unwrap()))
        });
    }
    g.finish();
}

fn bench_emission_shapes(c: &mut Criterion) {
    let base = paper_instance();
    let shapes: [(&str, EmissionCostFn); 3] = [
        ("linear", EmissionCostFn::linear(25.0).unwrap()),
        ("quadratic", EmissionCostFn::quadratic(10.0, 8.0).unwrap()),
        (
            "stepped",
            EmissionCostFn::stepped(vec![1.0, 3.0], vec![10.0, 50.0, 150.0]).unwrap(),
        ),
    ];
    let mut g = c.benchmark_group("ablation_emission_cost");
    g.sample_size(10);
    let solver = AdmgSolver::new(AdmgSettings::default());
    for (label, cost) in shapes {
        let mut inst = base.clone();
        inst.emission_cost = vec![cost; inst.n_datacenters()];
        let iters = solver.solve(&inst, Strategy::Hybrid).unwrap().iterations;
        println!("[ablation] V_j = {label}: {iters} iterations");
        g.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| black_box(solver.solve(black_box(&inst), Strategy::Hybrid).unwrap()))
        });
    }
    g.finish();
}

fn bench_centralized_backends(c: &mut Criterion) {
    let inst = paper_instance();
    let mut g = c.benchmark_group("centralized_backends");
    g.sample_size(10);
    g.bench_function("admm_qp", |b| {
        b.iter(|| {
            black_box(
                centralized::solve(
                    black_box(&inst),
                    Strategy::Hybrid,
                    centralized::Backend::Admm,
                )
                .unwrap(),
            )
        })
    });
    // Distributed-vs-centralized wall-clock at the same accuracy target.
    let solver = AdmgSolver::new(AdmgSettings::default());
    g.bench_function("distributed_admg", |b| {
        b.iter(|| black_box(solver.solve(black_box(&inst), Strategy::Hybrid).unwrap()))
    });
    g.finish();
}

fn bench_warm_start(c: &mut Criterion) {
    let inst = paper_instance();
    let solver = AdmgSolver::new(AdmgSettings::default());
    let cold = solver.solve(&inst, Strategy::Hybrid).unwrap();
    // Perturb the instance slightly (next-hour-like price move) and compare
    // cold vs warm-started solves.
    let mut next = inst.clone();
    for p in &mut next.grid_price {
        *p *= 1.05;
    }
    let warm_iters = solver
        .solve_warm(&next, Strategy::Hybrid, cold.state.clone())
        .unwrap()
        .iterations;
    let cold_iters = solver.solve(&next, Strategy::Hybrid).unwrap().iterations;
    println!("[ablation] warm start: {warm_iters} vs cold {cold_iters} iterations");
    let mut g = c.benchmark_group("ablation_warm_start");
    g.sample_size(10);
    g.bench_function("cold", |b| {
        b.iter(|| black_box(solver.solve(black_box(&next), Strategy::Hybrid).unwrap()))
    });
    g.bench_function("warm", |b| {
        b.iter(|| {
            black_box(
                solver
                    .solve_warm(black_box(&next), Strategy::Hybrid, cold.state.clone())
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_right_sizing(c: &mut Criterion) {
    use ufc_core::right_sizing::{solve_with_right_sizing, RightSizingOptions};
    // An off-peak instance (most servers idle) shows the extension's value.
    let mut inst = paper_instance();
    for a in &mut inst.arrivals {
        *a *= 0.3;
    }
    let out = solve_with_right_sizing(
        &inst,
        Strategy::Hybrid,
        AdmgSettings::default(),
        RightSizingOptions::default(),
    )
    .unwrap();
    println!(
        "[ablation] right-sizing: UFC gain {:.2} $ in {} rounds (active servers {:?})",
        out.ufc_gain(),
        out.rounds,
        out.active_servers_k
            .iter()
            .map(|v| (v * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    let mut g = c.benchmark_group("right_sizing");
    g.sample_size(10);
    g.bench_function("solve_shrink_fixed_point", |b| {
        b.iter(|| {
            black_box(
                solve_with_right_sizing(
                    black_box(&inst),
                    Strategy::Hybrid,
                    AdmgSettings::default(),
                    RightSizingOptions::default(),
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    bench_rho,
    bench_epsilon,
    bench_emission_shapes,
    bench_centralized_backends,
    bench_warm_start,
    bench_right_sizing
);
criterion_main!(ablations);
