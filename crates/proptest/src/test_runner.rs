//! Deterministic runner state: per-test RNG stream and case-count config.

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 48 keeps the offline suite fast while
        // still exercising each property across a spread of inputs.
        ProptestConfig { cases: 48 }
    }
}

/// SplitMix64 stream seeded from the test's fully qualified name, so every
/// run of a given test sees the same input sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from a test name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty integer range");
        lo + self.next_u64() % (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_names_decorrelate() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("y");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_draws_in_range() {
        let mut r = TestRng::from_name("unit");
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
