//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates.io mirror, so this
//! workspace vendors a minimal, dependency-free re-implementation of the
//! slice of proptest's API that our test suites use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * numeric-range, tuple and [`strategy::Just`] strategies,
//! * [`collection::vec`] with fixed or ranged sizes.
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. Inputs are drawn from a deterministic per-test stream
//! (seeded from the test's module path and name), so failures reproduce
//! exactly across runs without a regression file.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: a fixed length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)` — vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + (rng.next_u64() as usize) % span.max(1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `proptest::prelude` glob import used by all test files.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert a condition inside a `proptest!` body; panics with the formatted
/// message on failure (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)+) => {
        assert!($($tokens)+)
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)+) => {
        assert_eq!($($tokens)+)
    };
}

/// Define property tests. Each `fn name(pat in strategy, ..) { body }` item
/// becomes a test that samples its inputs `config.cases` times from a
/// deterministic stream seeded by the test's full path.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let _ = case;
                $(let $pat = $crate::strategy::Strategy::sample(&$strategy, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
