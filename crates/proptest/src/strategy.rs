//! Value-generation strategies: ranges, tuples, `Just`, map/flat-map.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from the deterministic stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to build a second-stage strategy.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(*self.start() as u64, *self.end() as u64 + 1) as $t
            }
        }
    )+};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = TestRng::from_name("f64");
        let s = -5.0f64..5.0;
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((-5.0..5.0).contains(&v));
        }
    }

    #[test]
    fn inclusive_usize_range_hits_both_ends() {
        let mut rng = TestRng::from_name("usize");
        let s = 1usize..=3;
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..=3).contains(&v));
            seen[v] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn flat_map_threads_first_stage_value() {
        let mut rng = TestRng::from_name("flat");
        let s = (2usize..=4).prop_flat_map(|n| (Just(n), collection::vec(0.0f64..1.0, n)));
        for _ in 0..50 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = TestRng::from_name("vec");
        let s = collection::vec(0.0f64..1.0, 1..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
