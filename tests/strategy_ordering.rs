//! The paper's headline qualitative claims, checked end-to-end over a
//! multi-day window: Hybrid dominates; fuel cells shorten latency; the
//! current price/tax regime keeps fuel cells under-utilized.

use ufc_core::AdmgSettings;
use ufc_experiments::weekly::{self, WeeklyResults};

fn results() -> &'static WeeklyResults {
    use std::sync::OnceLock;
    static CELL: OnceLock<WeeklyResults> = OnceLock::new();
    // Two days (48 h) balances coverage against test runtime.
    CELL.get_or_init(|| weekly::run(2012, 48, AdmgSettings::default()).unwrap())
}

#[test]
fn hybrid_never_loses() {
    // Paper Fig. 4 insight (3): Hybrid "never reduces the UFC".
    for h in &results().hours {
        assert!(h.i_hg >= -1e-3, "hour {}: I_hg = {}", h.hour, h.i_hg);
        assert!(h.i_hf >= -1e-3, "hour {}: I_hf = {}", h.hour, h.i_hf);
    }
}

#[test]
fn fuel_cell_only_sometimes_loses_badly() {
    // Paper Fig. 4 insight (1): Fuel-cell-only can cut UFC substantially
    // during electricity off-peak hours.
    let worst = results()
        .hours
        .iter()
        .map(|h| h.i_fg)
        .fold(f64::INFINITY, f64::min);
    assert!(
        worst < -0.10,
        "worst I_fg only {worst}; expected a real loss"
    );
}

#[test]
fn load_following_shrinks_latency() {
    // Paper Fig. 5: Fuel cell ≈ Hybrid < Grid in average latency.
    let r = results();
    let hybrid = r.mean_of(|h| h.latency_s[0]);
    let grid = r.mean_of(|h| h.latency_s[1]);
    let fuel = r.mean_of(|h| h.latency_s[2]);
    assert!(fuel < grid, "fuel {fuel} !< grid {grid}");
    assert!(hybrid < grid, "hybrid {hybrid} !< grid {grid}");
    // "Near" = strictly nearer to fuel-cell than to grid. The midpoint
    // bound is robust to the exact synthetic-trace stream, unlike a tighter
    // calibrated constant.
    assert!(
        (hybrid - fuel).abs() < 0.5 * (grid - fuel).abs() + 1e-9,
        "hybrid ({hybrid}) should sit near fuel-cell ({fuel}), far from grid ({grid})"
    );
}

#[test]
fn current_regime_underuses_fuel_cells() {
    // Paper Fig. 8: average utilization ≈ 16%, never ≥ 70%.
    let r = results();
    let avg = r.mean_of(|h| h.utilization);
    assert!(
        avg < 0.45,
        "average utilization {avg} too high for p0=80, tax=25"
    );
    assert!(avg > 0.01, "fuel cells completely idle; calibration broken");
    for h in &r.hours {
        assert!(
            h.utilization < 0.8,
            "hour {}: utilization {}",
            h.hour,
            h.utilization
        );
    }
}

#[test]
fn energy_cost_ordering_matches_fig6() {
    let r = results();
    let hybrid = r.mean_of(|h| h.energy_cost[0]);
    let grid = r.mean_of(|h| h.energy_cost[1]);
    let fuel = r.mean_of(|h| h.energy_cost[2]);
    assert!(
        fuel > grid,
        "fuel-cell-only must be most expensive at p0 = 80"
    );
    assert!(hybrid <= grid + 1e-6);
    // Paper: hybrid cuts ≈ 60% versus fuel-cell-only.
    assert!(hybrid < 0.75 * fuel, "hybrid {hybrid} vs fuel {fuel}");
}
