//! End-to-end workspace integration: traces → scenario → solver →
//! evaluation → experiment summaries, across crate boundaries.

use ufc_core::{centralized, AdmgSettings, AdmgSolver, Strategy};
use ufc_experiments::{convergence, table1, weekly};
use ufc_model::scenario::ScenarioBuilder;
use ufc_model::{evaluate, EmissionCostFn};

#[test]
fn full_pipeline_one_day() {
    // Build a day from the trace substrate.
    let scenario = ScenarioBuilder::paper_default()
        .seed(99)
        .hours(24)
        .build()
        .unwrap();
    assert_eq!(scenario.hours(), 24);

    // Solve a peak hour three ways and cross-check against the centralized QP.
    let inst = &scenario.instances[15];
    let solver = AdmgSolver::new(AdmgSettings::default());
    let hybrid = solver.solve(inst, Strategy::Hybrid).unwrap();
    assert!(hybrid.converged);
    let central = centralized::solve(inst, Strategy::Hybrid, centralized::Backend::Admm).unwrap();
    let gap =
        (central.breakdown.ufc() - hybrid.breakdown.ufc()).abs() / central.breakdown.ufc().abs();
    assert!(gap < 5e-3, "optimality gap {gap}");

    // The solver's reported breakdown is reproducible through the public
    // evaluation API.
    let re = evaluate(inst, &hybrid.point).unwrap();
    assert!((re.ufc() - hybrid.breakdown.ufc()).abs() < 1e-9);

    // Weekly summary machinery consumes the same scenario.
    let results = weekly::run_on(&scenario, AdmgSettings::default()).unwrap();
    assert_eq!(results.hours.len(), 24);
    let cdf = convergence::from_counts(results.iteration_counts());
    assert!(cdf.min() >= 1);
    assert!(cdf.fraction_within(cdf.max()) == 1.0);
}

#[test]
fn table1_and_weekly_tell_the_same_story() {
    // Table I says hybrid arbitrage beats pure strategies at the single-DC
    // level; the weekly geo-distributed run must agree in aggregate.
    let t = table1::run(5);
    for s in &t.sites {
        assert!(s.hybrid <= s.grid.min(s.fuel_cell) + 1e-9);
    }
    let results = weekly::run(5, 12, AdmgSettings::default()).unwrap();
    assert!(results.mean_of(|h| h.i_hg) >= -1e-6);
    assert!(results.mean_of(|h| h.i_hf) >= -1e-6);
}

#[test]
fn emission_cost_variants_run_end_to_end() {
    for cost in [
        EmissionCostFn::linear(25.0).unwrap(),
        EmissionCostFn::quadratic(10.0, 8.0).unwrap(),
        EmissionCostFn::stepped(vec![1.0, 3.0], vec![10.0, 50.0, 150.0]).unwrap(),
    ] {
        let scenario = ScenarioBuilder::paper_default()
            .hours(1)
            .emission_cost(cost.clone())
            .build()
            .unwrap();
        let sol = AdmgSolver::new(AdmgSettings::default())
            .solve(&scenario.instances[0], Strategy::Hybrid)
            .unwrap();
        assert!(sol.converged, "ADM-G failed to converge under {cost:?}");
        assert!(sol.point.feasibility_residual(&scenario.instances[0]) < 1e-6);
    }
}
