//! Deterministic replay of the checked-in fuzz corpus.
//!
//! Every `.case` file under `tests/corpus/` is a minimal reproducer of a
//! bug the differential fuzzer once found (or a hand-written degenerate
//! corner worth pinning). This test re-solves each one across every
//! engine and oracle on every `cargo test`, so a fuzz finding can never
//! regress silently. Add new findings by dropping their shrunk `.case`
//! file in the corpus directory — no code change needed.

use std::path::PathBuf;

use ufc_experiments::fuzz::{check_case, decode_case, CaseOutcome};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_is_nonempty() {
    assert!(
        !corpus_files().is_empty(),
        "the checked-in corpus should contain at least the hand-written seeds"
    );
}

#[test]
fn every_corpus_case_replays_clean() {
    // Cargo builds crate binaries for integration tests, so the socket
    // legs run against the real multi-process worker.
    let worker = PathBuf::from(env!("CARGO_BIN_EXE_ufc-node"));
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let case =
            decode_case(&text).unwrap_or_else(|e| panic!("{name}: malformed corpus file: {e}"));
        match check_case(&case, Some(&worker)) {
            Ok(outcome) => {
                let expected = if case.expect_reject {
                    CaseOutcome::Rejected
                } else {
                    CaseOutcome::Solved
                };
                assert_eq!(outcome, expected, "{name}: outcome drifted");
            }
            Err(f) => panic!("{name}: [{}] {}", f.kind, f.message),
        }
    }
}

#[test]
fn corpus_files_round_trip_through_the_codec() {
    use ufc_experiments::fuzz::encode_case;
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let case = decode_case(&text).unwrap();
        let re = decode_case(&encode_case(&case, "round-trip")).unwrap();
        assert_eq!(case, re, "{name}: encode/decode not a fixed point");
    }
}
