//! Workspace-level check that the three execution paths — centralized QP,
//! in-memory ADM-G, and the message-passing protocol — agree on the same
//! instances, across all strategies.

use ufc_core::{centralized, AdmgSettings, AdmgSolver, Strategy};
use ufc_distsim::{DistributedAdmg, Runtime};
use ufc_model::scenario::ScenarioBuilder;

#[test]
fn three_paths_one_answer() {
    let scenario = ScenarioBuilder::paper_default()
        .seed(11)
        .hours(2)
        .build()
        .unwrap();
    let settings = AdmgSettings::default();
    let solver = AdmgSolver::new(settings);
    let dist = DistributedAdmg::new(settings);

    for inst in &scenario.instances {
        for strategy in [Strategy::Hybrid, Strategy::GridOnly] {
            let mem = solver.solve(inst, strategy).unwrap();
            let net = dist.run(inst, strategy, Runtime::Lockstep).unwrap();
            let central = centralized::solve(inst, strategy, centralized::Backend::Admm).unwrap();

            let scale = central.breakdown.ufc().abs().max(1.0);
            assert!(
                (mem.breakdown.ufc() - central.breakdown.ufc()).abs() / scale < 5e-3,
                "{strategy:?}: ADM-G {} vs centralized {}",
                mem.breakdown.ufc(),
                central.breakdown.ufc()
            );
            assert!(
                (mem.breakdown.ufc() - net.breakdown.ufc()).abs() / scale < 1e-9,
                "{strategy:?}: in-memory and distributed disagree"
            );
            assert_eq!(mem.iterations, net.iterations);
        }
    }
}

#[test]
fn fuel_cell_strategy_distributed_matches_memory() {
    // FuelCellOnly has no centralized-QP comparison here (ν ≡ 0 makes it a
    // pure routing problem), but distributed and in-memory must still match.
    let scenario = ScenarioBuilder::paper_default()
        .seed(13)
        .hours(2)
        .build()
        .unwrap();
    let settings = AdmgSettings::default();
    let solver = AdmgSolver::new(settings);
    let dist = DistributedAdmg::new(settings);
    for inst in &scenario.instances {
        let mem = solver.solve(inst, Strategy::FuelCellOnly).unwrap();
        let net = dist
            .run(inst, Strategy::FuelCellOnly, Runtime::Threaded)
            .unwrap();
        assert_eq!(mem.iterations, net.iterations);
        assert!((mem.breakdown.ufc() - net.breakdown.ufc()).abs() < 1e-6);
        assert!(net.point.nu.iter().all(|&v| v.abs() < 1e-9));
    }
}
